"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in environments without the ``wheel`` package
or network access (``pip install -e . --no-build-isolation --no-use-pep517``
falls back to ``setup.py develop``, which needs this shim).
"""

from setuptools import setup

setup()

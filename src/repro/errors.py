"""Exception hierarchy for the GMine reproduction.

Every error raised by the library derives from :class:`GMineError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations


class GMineError(Exception):
    """Base class for every error raised by this library."""


class GraphError(GMineError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A vertex id was referenced that is not present in the graph."""

    def __init__(self, node):
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable.
        return f"node not found in graph: {self.node!r}"


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, u, v):
        super().__init__((u, v))
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return f"edge not found in graph: ({self.u!r}, {self.v!r})"


class GraphFormatError(GraphError):
    """A graph file or serialized payload could not be parsed."""


class PartitionError(GMineError):
    """Base class for errors raised by the partitioning subsystem."""


class InvalidPartitionError(PartitionError):
    """A partition vector violates an invariant (cover, range, balance)."""


class GTreeError(GMineError):
    """Base class for errors raised by the G-Tree core."""


class GTreeStructureError(GTreeError):
    """The G-Tree structure violates one of its invariants."""


class NavigationError(GTreeError):
    """An interactive navigation request could not be satisfied."""


class StorageError(GMineError):
    """Base class for errors raised by the storage subsystem."""


class PageError(StorageError):
    """A page could not be read, written, or validated."""


class CorruptStoreError(StorageError):
    """A persisted G-Tree file failed checksum or structural validation."""


class MiningError(GMineError):
    """Base class for errors raised by the mining subsystem."""


class ExtractionError(MiningError):
    """Connection-subgraph extraction could not produce a valid result."""


class ConvergenceError(MiningError):
    """An iterative solver failed to converge within its iteration budget."""


class VisualizationError(GMineError):
    """Base class for errors raised by the visualization subsystem."""


class LayoutError(VisualizationError):
    """A layout algorithm received invalid input or failed to converge."""


class DatasetError(GMineError):
    """A dataset could not be generated, parsed, or validated."""


class CLIError(GMineError):
    """A command-line invocation was invalid."""


class ServiceError(GMineError):
    """Base class for errors raised by the query-service subsystem."""


class SessionNotFoundError(ServiceError):
    """A session id was presented that the service has never issued."""


class SessionExpiredError(ServiceError):
    """A session existed but its TTL elapsed before it was resumed."""


class UnknownOperationError(ServiceError):
    """A query request named an operation the service does not expose."""


class DatasetNotFoundError(ServiceError):
    """A request named a dataset the service has not registered."""


class DatasetReadOnlyError(ServiceError):
    """A write was attempted on a dataset that cannot be edited in place.

    Store-backed datasets are served by a read-only pager: the write path
    for them is rebuild-the-file + ``/v1/datasets/<name>/reload``.
    """


class EditConflictError(ServiceError):
    """An edit script could not be applied to the current dataset state."""


class InvalidArgumentError(ServiceError):
    """An operation argument failed the registry's schema validation."""


class QueryParseError(InvalidArgumentError):
    """A GPath query failed to tokenize, parse, or type-check.

    Carries the offending source text and a half-open character span
    ``(start, end)`` so front-ends can point at the exact token.  The
    span attributes are optional: clients re-raising from a wire error
    construct the exception from its message alone.
    """

    def __init__(self, message, source=None, start=None, end=None):
        super().__init__(message)
        self.source = source
        self.start = start
        self.end = end

    @property
    def span(self):
        if self.start is None:
            return None
        return (self.start, self.end)

    def wire_details(self):
        """Structured payload for the wire-level ``details`` field."""
        details = {}
        if self.span is not None:
            details["span"] = [self.start, self.end]
        if self.source is not None:
            details["source"] = self.source
        return details or None


class ProtocolError(ServiceError):
    """A wire envelope was malformed or spoke an unsupported protocol."""


class StaleCursorError(ProtocolError):
    """A stream cursor outlived the dataset content it was issued under."""


class AuthRequiredError(ServiceError):
    """A front-end request lacked (or carried an invalid) bearer token."""


class RateLimitedError(ServiceError):
    """A front-end request exceeded the configured request rate."""


class DeadlineExceededError(ServiceError):
    """A request's deadline budget elapsed before (or during) compute.

    Raised both by admission control (the cost model predicts the plan
    cannot finish in budget) and by in-flight abandonment (the plan ran
    past its deadline; the result is discarded).
    """


class WorkerDeadlineCancelled(DeadlineExceededError):
    """A pool/shard worker cancelled overdue work before running it.

    The parent propagates ``deadline_at`` (absolute wall-clock) into the
    worker task; a task that only reaches the front of the worker's queue
    after that instant raises this instead of computing a result nobody
    will use.  Counted separately (``resilience.deadline.worker_cancelled``
    in ``/v1/stats``) from parent-side abandonment, which leaves the
    worker running.
    """


class OverloadedError(ServiceError):
    """The server shed this request under load; retry after backoff.

    ``retry_after`` (seconds) is a hint for clients and travels on the
    wire in the error ``details`` so typed client exceptions carry it.
    """

    def __init__(self, message, retry_after=None):
        super().__init__(message)
        self.retry_after = retry_after

    def wire_details(self):
        """Structured payload for the wire-level ``details`` field."""
        if self.retry_after is None:
            return None
        return {"retry_after": self.retry_after}


class CircuitOpenError(OverloadedError):
    """A circuit breaker is open; the protected venue was not attempted."""

"""The sharded execution backend: scatter-gather over G-Tree partitions.

One single-worker process pool per shard (the process stands in for a
host; the seams — picklable plans, warm state keyed by fingerprint,
shared-memory manifests — are exactly what a TCP transport would carry).
A :class:`~repro.shard.planner.ShardPlanner` splits each warmed dataset
along the root's community subtrees; routing then follows the
:class:`~repro.api.registry.MergeSpec` declared on the op:

* **point-to-point** — a plan scoped to one shard-owned community (or a
  multi-community GPath scope one shard owns entirely) ships to exactly
  that shard and the answer returns whole: zero merge cost, and
  byte-identical to the parent's answer by the order-preserving slice
  construction (``Graph.induced_ordered``).
* **scatter** — a widest-scope power-iteration RWR runs its driver loop
  in the parent while every matvec round fans out to the shards' row
  slices of the transition matrix; gathering the row blocks reconstructs
  the monolithic product bit-for-bit (CSR products accumulate per row),
  so the merged result is byte-identical by construction, with the
  cross-shard edge table accounted for inside the row slices themselves
  (each slice keeps *all* columns, so cross-shard mass flows exactly as
  in the monolithic matrix).
* **parent** — everything else (cross-shard scopes, exact solver,
  non-mergeable ops) runs locally, same as before.

Failure discipline: a shard failure mid-route falls back to one whole
local execution — never a partial merge — except deadline errors, which
propagate typed.  Killed shard workers trip a per-backend circuit
breaker and the pool is rebuilt lazily; lost warm state re-warms once
before falling back.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..api.plans import ComputePlan
from ..api.registry import MergeSpec
from ..errors import (
    DeadlineExceededError,
    ServiceError,
    WorkerDeadlineCancelled,
)
from ..query.plan import Expand, Seed
from ..service.executors import (
    DEFAULT_BACKEND_WORKERS,
    DatasetExecSpec,
    ExecutionBackend,
    _pick_mp_context,
    deadline_wall_clock,
)
from ..service.resilience import CircuitBreaker, Deadline
from .planner import ShardPlan, ShardPlanner
from .rwr import scatter_rwr
from .worker import ShardStateError, _shard_drop, _shard_execute, _shard_matvec, _shard_warm

logger = logging.getLogger(__name__)

#: How long a blocking shard warm may take before it is abandoned.
WARM_TIMEOUT_SECONDS = 120.0


@dataclass
class _ShardedDataset:
    """Parent-side record of one warmed (planned + shipped) dataset."""

    name: str
    fingerprint: str
    plan: ShardPlan
    #: shard id -> parent-side CSR row slice ``W[rows_s, :]`` (kept for
    #: re-warm after a pool rebuild; also the publish source).
    matrices: Dict[int, Any] = field(default_factory=dict)
    #: shard id -> np.ndarray of parent row positions (scatter gather).
    rows: Dict[int, Any] = field(default_factory=dict)
    #: parent VertexIndex (scatter driver needs node_at / membership).
    index: Any = None
    #: live SharedMatrixSegments to release on retire.
    segments: List[Any] = field(default_factory=list)
    #: shard id -> last warm report from the worker.
    reports: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    matvec_ready: bool = False

    @property
    def shard_count(self) -> int:
        return len(self.plan.shards)

    def release(self) -> None:
        for segment in self.segments:
            try:
                segment.release()
            except Exception:  # pragma: no cover - release best-effort
                pass
        self.segments.clear()


def _chain(node) -> List[Any]:
    """A plan chain root-to-seed as a list."""
    out = []
    while node is not None:
        out.append(node)
        node = getattr(node, "child", None)
    return out


class ShardedBackend(ExecutionBackend):
    """Fan compute plans out to per-shard worker processes (scatter-gather)."""

    name = "sharded"

    def __init__(
        self,
        shards: int = DEFAULT_BACKEND_WORKERS,
        mp_context=None,
        breaker: Any = "default",
        cost_model=None,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise ServiceError(f"sharded backend needs >= 1 shard, got {shards}")
        self.shards = shards
        self.cost_model = cost_model
        if breaker == "default":
            breaker = CircuitBreaker(
                name="shard-pools", failure_threshold=3, reset_timeout=10.0
            )
        self.breaker = breaker
        self._mp_context = mp_context or _pick_mp_context()
        self._pools: Dict[int, ProcessPoolExecutor] = {}
        self._pool_lock = threading.Lock()
        #: fingerprint -> warmed dataset record.
        self._datasets: Dict[str, _ShardedDataset] = {}
        #: dataset name -> fingerprint currently warmed under that name.
        self._generations: Dict[str, str] = {}
        self._datasets_lock = threading.Lock()
        self._routes: Counter = Counter()
        self._shard_executed: Counter = Counter()

    # ------------------------------------------------------------------ #
    # pools
    # ------------------------------------------------------------------ #
    def _pool(self, shard_id: int) -> ProcessPoolExecutor:
        with self._pool_lock:
            pool = self._pools.get(shard_id)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=1, mp_context=self._mp_context
                )
                self._pools[shard_id] = pool
            return pool

    def _rebuild_pool(self, shard_id: int) -> None:
        with self._pool_lock:
            broken = self._pools.pop(shard_id, None)
        if broken is not None:
            broken.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # warm: plan the split and ship slices
    # ------------------------------------------------------------------ #
    def warm(self, spec: DatasetExecSpec, handle: Any = None) -> None:
        """Plan the shard split for ``handle`` and ship every slice.

        Blocking (unlike the process backend's best-effort hint): routing
        correctness depends on knowing which shards actually hold state,
        so registration pays the ship cost up front.  Any failure leaves
        the dataset unsharded — every plan then runs in the parent, which
        is always correct.
        """
        if handle is None or getattr(handle, "tree", None) is None:
            return
        with self._datasets_lock:
            if spec.fingerprint in self._datasets:
                return
        try:
            state = self._build_state(spec, handle)
        except Exception as error:
            logger.warning(
                "shard planning failed for dataset %s (%s); serving unsharded",
                spec.name, error,
            )
            return
        try:
            self._ship_state(state)
        except Exception as error:
            logger.warning(
                "shard warm failed for dataset %s (%s); serving unsharded",
                spec.name, error,
            )
            state.release()
            return
        with self._datasets_lock:
            previous_fp = self._generations.get(spec.name)
            self._generations[spec.name] = spec.fingerprint
            self._datasets[spec.fingerprint] = state
            retired = (
                self._datasets.pop(previous_fp, None)
                if previous_fp and previous_fp != spec.fingerprint
                else None
            )
        if retired is not None:
            self._drop_state(retired)

    def _build_state(self, spec: DatasetExecSpec, handle: Any) -> _ShardedDataset:
        graph = getattr(handle, "graph", None)
        prepared = handle.prepared_graph() if graph is not None else None
        index = prepared.index if prepared is not None else None
        plan = ShardPlanner(self.shards).plan(
            handle.tree, graph, spec.fingerprint, index=index
        )
        state = _ShardedDataset(
            name=spec.name, fingerprint=spec.fingerprint, plan=plan, index=index
        )
        if plan.scatter_capable and prepared is not None:
            transition = prepared.transition
            for shard in plan.shards:
                rows = np.asarray(shard.rows, dtype=np.int64)
                state.rows[shard.shard_id] = rows
                state.matrices[shard.shard_id] = transition[rows, :]
        return state

    def _warm_payload(self, state: _ShardedDataset, shard_id: int) -> Dict[str, Any]:
        shard = state.plan.shards[shard_id]
        payload: Dict[str, Any] = {
            "fingerprint": state.fingerprint,
            "shard_id": shard_id,
            "tree": shard.tree,
            "graph": shard.graph,
        }
        matrix = state.matrices.get(shard_id)
        if matrix is not None:
            manifest = self._publish_matrix(state, matrix)
            if manifest is not None:
                payload["matrix_manifest"] = manifest
            else:
                payload["matrix"] = matrix
        return payload

    def _publish_matrix(self, state: _ShardedDataset, matrix) -> Optional[Any]:
        """Publish one row slice to shared memory (fast path, never required)."""
        try:
            from ..graph.shm import SharedMatrixSegment, shared_memory_available

            if not shared_memory_available():
                return None
            segment = SharedMatrixSegment.publish(matrix)
        except Exception:
            logger.warning("per-shard segment publish failed; shipping pickled",
                           exc_info=True)
            return None
        state.segments.append(segment)
        return segment.manifest

    def _ship_state(self, state: _ShardedDataset) -> None:
        futures = {
            shard.shard_id: self._pool(shard.shard_id).submit(
                _shard_warm, self._warm_payload(state, shard.shard_id)
            )
            for shard in state.plan.shards
        }
        for shard_id, future in futures.items():
            report = future.result(timeout=WARM_TIMEOUT_SECONDS)
            state.reports[shard_id] = report
        state.matvec_ready = state.plan.scatter_capable and all(
            state.reports.get(s.shard_id, {}).get("matvec_ready")
            for s in state.plan.shards
        )

    def _rewarm_shard(self, state: _ShardedDataset, shard_id: int) -> None:
        """Re-ship one slice after a pool rebuild lost the worker state."""
        future = self._pool(shard_id).submit(
            _shard_warm, self._warm_payload(state, shard_id)
        )
        state.reports[shard_id] = future.result(timeout=WARM_TIMEOUT_SECONDS)

    def _drop_state(self, state: _ShardedDataset) -> None:
        for shard in state.plan.shards:
            try:
                self._pool(shard.shard_id).submit(
                    _shard_drop, state.fingerprint, shard.shard_id
                )
            except Exception:  # pragma: no cover - pool already gone
                pass
        state.release()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _route(self, state: Optional[_ShardedDataset], plan: ComputePlan):
        """``(kind, shard_id)`` where kind ∈ route/scatter/parent."""
        if state is None:
            return ("parent", None)
        merge = self._merge_spec(plan.operation)
        if merge is None:
            return ("parent", None)
        if plan.scope is not None:
            owner = state.plan.owner_of(plan.scope)
            if owner is None:
                return ("parent", None)
            return ("route", owner)
        communities = plan.arg_dict.get("communities")
        if communities:
            return self._route_communities(state, plan, communities)
        if (
            merge.kind == "scatter"
            and plan.kernel == "rwr"
            and plan.arg_dict.get("solver") == "power"
            and state.matvec_ready
        ):
            return ("scatter", None)
        return ("parent", None)

    def _route_communities(self, state, plan: ComputePlan, communities):
        """Multi-community GPath scope: point-to-point iff one shard owns it.

        The extra guards keep the worker's evaluation literally identical
        to the parent's: no ``Expand`` (BFS could escape the shard), an
        explicit seed (both venues must take ``_induce``'s rebuild path),
        and a seed strictly smaller than the shard (so the worker cannot
        take the same-graph fast path the parent would not take).
        """
        if plan.kernel != "path":
            return ("parent", None)
        owner = state.plan.single_owner(communities)
        if owner is None:
            return ("parent", None)
        chain = _chain(plan.arg_dict.get("plan"))
        if any(isinstance(node, Expand) for node in chain):
            return ("parent", None)
        base = chain[-1] if chain else None
        if not isinstance(base, Seed) or base.vertices is None:
            return ("parent", None)
        if len(base.vertices) >= len(state.plan.shards[owner].members):
            return ("parent", None)
        return ("route", owner)

    @staticmethod
    def _merge_spec(operation: str) -> Optional[MergeSpec]:
        from ..api.ops import DEFAULT_REGISTRY

        spec = DEFAULT_REGISTRY.get(operation)
        return None if spec is None else spec.merge

    # ------------------------------------------------------------------ #
    # run
    # ------------------------------------------------------------------ #
    def run(self, spec, plan, local, deadline=None):
        self._admit(deadline)
        with self._datasets_lock:
            state = self._datasets.get(spec.fingerprint)
        kind, shard_id = self._route(state, plan)
        started = time.perf_counter()
        if kind == "route":
            value = self._run_routed(state, shard_id, plan, local, deadline)
        elif kind == "scatter":
            value = self._run_scatter(state, plan, local, deadline)
        else:
            self._routes["parent"] += 1
            self._count(executed=1)
            value = local()
            self._finish(deadline)
        if self.cost_model is not None:
            venue = f"sharded:{kind}" if shard_id is None else f"shard:{shard_id}"
            self.cost_model.observe(
                plan.operation, venue, time.perf_counter() - started
            )
        return value

    def _run_routed(self, state, shard_id, plan, local, deadline):
        """Point-to-point: the owning shard computes the whole answer."""
        if self.breaker is not None and not self.breaker.allow():
            self._routes["parent_fallback"] += 1
            self._count(executed=1, fallbacks=1)
            value = local()
            self._finish(deadline)
            return value
        deadline_at = deadline_wall_clock(deadline)
        for attempt in (0, 1):
            pool = self._pool(shard_id)
            try:
                # submit itself raises BrokenProcessPool once the pool's
                # management thread has noticed a dead worker — it must sit
                # under the same handler as result().
                future = pool.submit(
                    _shard_execute, state.fingerprint, shard_id, plan, deadline_at
                )
                if deadline is not None:
                    future.add_done_callback(self._note_worker_cancelled)
                value = future.result(
                    timeout=None if deadline is None
                    else max(0.0, deadline.remaining())
                )
            except FuturesTimeoutError:
                self._abandon(deadline)
            except WorkerDeadlineCancelled:
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            except ShardStateError:
                # Pool rebuilt since warm (or a raced generation): re-ship
                # this slice once, then give up to the parent.
                if attempt == 0:
                    try:
                        self._rewarm_shard(state, shard_id)
                        continue
                    except Exception:
                        logger.warning("shard %d re-warm failed", shard_id,
                                       exc_info=True)
                break
            except BrokenProcessPool:
                # Killed worker: quarantine-worthy venue failure.  Rebuild
                # lazily and serve this request from the parent — the
                # caller sees a correct answer, never a torn one.
                self._rebuild_pool(shard_id)
                if self.breaker is not None:
                    self.breaker.record_failure()
                break
            except BaseException:
                # The plan failed *in* the shard with a typed error — the
                # venue worked, the answer is the error (same contract as
                # the process backend).
                if self.breaker is not None:
                    self.breaker.record_success()
                self._routes["single_shard"] += 1
                self._shard_executed[shard_id] += 1
                self._count(executed=1, shipped=1, errors=1)
                raise
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                self._routes["single_shard"] += 1
                self._shard_executed[shard_id] += 1
                self._count(executed=1, shipped=1)
                self._finish(deadline)
                return value
        self._routes["parent_fallback"] += 1
        self._count(executed=1, fallbacks=1, errors=1)
        value = local()
        self._finish(deadline)
        return value

    def _run_scatter(self, state, plan, local, deadline):
        """Widest-scope RWR: parent drives, shards matvec their row blocks."""
        if self.breaker is not None and not self.breaker.allow():
            self._routes["parent_fallback"] += 1
            self._count(executed=1, fallbacks=1)
            value = local()
            self._finish(deadline)
            return value
        args = plan.arg_dict
        try:
            value = scatter_rwr(
                state.index,
                self._scatter_matvec(state, deadline),
                args["sources"],
                restart_probability=args["restart_probability"],
            )
        except DeadlineExceededError:
            raise
        except BrokenProcessPool:
            for shard in state.plan.shards:
                self._rebuild_pool(shard.shard_id)
            if self.breaker is not None:
                self.breaker.record_failure()
            self._routes["parent_fallback"] += 1
            self._count(executed=1, fallbacks=1, errors=1)
            value = local()
            self._finish(deadline)
            return value
        except _ScatterTransportError:
            # A shard failed mid-iteration (lost state, timeout, transport).
            # One whole local execution replaces the distributed one — the
            # caller never sees a partially merged vector.
            self._routes["parent_fallback"] += 1
            self._count(executed=1, fallbacks=1, errors=1)
            value = local()
            self._finish(deadline)
            return value
        # Typed kernel errors (ConvergenceError, bad sources) raise through:
        # they are the same answer the monolithic kernel would give.
        if self.breaker is not None:
            self.breaker.record_success()
        self._routes["scatter"] += 1
        for shard in state.plan.shards:
            self._shard_executed[shard.shard_id] += 1
        self._count(executed=1, shipped=1)
        self._finish(deadline)
        return value

    def _scatter_matvec(self, state: _ShardedDataset, deadline: Optional[Deadline]):
        """The per-round fan-out closure ``scatter_rwr`` iterates with."""

        def matvec(rank: np.ndarray) -> np.ndarray:
            if deadline is not None and deadline.expired:
                self._abandon(deadline)
            deadline_at = deadline_wall_clock(deadline)
            futures = {
                shard.shard_id: self._pool(shard.shard_id).submit(
                    _shard_matvec, state.fingerprint, shard.shard_id,
                    rank, deadline_at,
                )
                for shard in state.plan.shards
            }
            product = np.empty_like(rank)
            for shard_id, future in futures.items():
                try:
                    partial = future.result(
                        timeout=None if deadline is None
                        else max(0.0, deadline.remaining())
                    )
                except WorkerDeadlineCancelled:
                    self._count(deadline_worker_cancelled=1)
                    raise
                except (DeadlineExceededError, BrokenProcessPool):
                    raise
                except FuturesTimeoutError:
                    self._abandon(deadline)
                except BaseException as error:
                    raise _ScatterTransportError(str(error)) from error
                product[state.rows[shard_id], :] = partial
            return product

        return matvec

    def _note_worker_cancelled(self, future) -> None:
        if future.cancelled():
            return
        try:
            error = future.exception()
        except BaseException:  # pragma: no cover - shutdown race
            return
        if isinstance(error, WorkerDeadlineCancelled):
            self._count(deadline_worker_cancelled=1)

    # ------------------------------------------------------------------ #
    # lifecycle + stats
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._datasets_lock:
            states = list(self._datasets.values())
            self._datasets.clear()
            self._generations.clear()
        for state in states:
            state.release()
        with self._pool_lock:
            pools, self._pools = dict(self._pools), {}
        for pool in pools.values():
            pool.shutdown(wait=True)
        if self.cost_model is not None:
            self.cost_model.close()

    def stats(self) -> Dict[str, Any]:
        payload = super().stats()
        payload["shards"] = self.shards
        with self._datasets_lock:
            payload["datasets"] = {
                state.name: dict(
                    state.plan.describe(),
                    matvec_ready=state.matvec_ready,
                    # Worker pid per warmed shard — lets an operator (or a
                    # chaos drill) target one shard worker and watch the
                    # parent_fallback/heal counters respond.
                    workers={
                        str(shard): report.get("pid")
                        for shard, report in sorted(state.reports.items())
                    },
                )
                for state in self._datasets.values()
            }
        with self._stats_lock:
            payload["routed"] = {
                key: self._routes.get(key, 0)
                for key in ("single_shard", "scatter", "parent", "parent_fallback")
            }
            payload["per_shard"] = {
                str(shard): count
                for shard, count in sorted(self._shard_executed.items())
            }
        if self.breaker is not None:
            payload["breaker"] = self.breaker.describe()
        if self.cost_model is not None:
            payload["cost_model"] = self.cost_model.describe()
        return payload


class _ScatterTransportError(ServiceError):
    """Internal: a scatter round lost a shard; fall back to local, whole."""

"""Shard planning: split one dataset along G-Tree community subtrees.

The paper's hierarchy is the shard key.  Each of the root's child
subtrees is a self-contained partition (own members, own leaf subgraphs,
own Merkle sub-fingerprint), so a :class:`ShardPlanner` assigns whole
subtrees to shards, builds a valid *slice* G-Tree per shard (the root
cloned down to its owned children, subtree nodes shared structurally),
induces each shard's vertex slice of the original graph, and keeps the
edges that cross shards in a parent-level :class:`CrossShardEdge` table —
exactly the split the G-Tree's own connectivity edges describe one level
down.

Byte-parity contract.  Shard graphs are built with
:meth:`~repro.graph.graph.Graph.induced_ordered`, whose iteration orders
(``nodes()``, per-node neighbours, ``edges()``) are the parent graph's
sequences filtered to the kept set.  Consequently, for any vertex set
``S`` fully inside one shard, ``shard_graph.subgraph(S)`` and
``root_graph.subgraph(S)`` perform identical insertions in identical
order and yield bit-identical results — which is what lets a sharded
backend route community-scoped plans point-to-point and return the
worker's answer unmerged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.gtree import GTree, GTreeNode
from ..errors import ServiceError
from ..graph.graph import Graph


class ShardPlanError(ServiceError):
    """The dataset cannot be split along its G-Tree (e.g. leaf-only root)."""


@dataclass(frozen=True)
class CrossShardEdge:
    """Aggregate of the original-graph edges between two shards."""

    shard_a: int
    shard_b: int
    edge_count: int
    total_weight: float


@dataclass(frozen=True)
class ShardSlice:
    """One shard's share of the dataset.

    ``tree`` is a valid G-Tree whose root is a clone of the dataset root
    restricted to the owned child subtrees; subtree nodes are copies that
    share the ORIGINAL leaf subgraph objects (slices are read-only), and
    leaves without one get their subgraph materialised at plan time so
    the shard worker never re-induces it per request.
    ``graph`` is the order-preserving induced slice of the full graph.
    ``rows`` are the shard members' positions in the parent
    ``VertexIndex`` (sorted), when an index was supplied — the row block
    this shard owns in scatter-gather matvecs.
    """

    shard_id: int
    tree: GTree
    graph: Optional[Graph]
    labels: Tuple[str, ...]
    node_ids: Tuple[int, ...]
    members: Tuple[object, ...]
    rows: Optional[Tuple[int, ...]] = None


@dataclass
class ShardPlan:
    """The full placement: slices, owner maps, and the cross-shard table."""

    fingerprint: str
    shards: Tuple[ShardSlice, ...]
    owner_by_label: Dict[str, int]
    owner_by_node_id: Dict[int, int]
    cross_edges: Tuple[CrossShardEdge, ...]
    #: True when every shard has a row block and the blocks exactly
    #: partition ``[0, n)`` of the parent vertex index — the precondition
    #: for exact scatter-gather matvecs.
    scatter_capable: bool = False
    num_vertices: int = 0

    def owner_of(self, scope) -> Optional[int]:
        """Shard that wholly owns a community scope (label or node id).

        ``None`` for the root scope, for unknown refs, and for the root
        label itself — those never route point-to-point.
        """
        if scope is None:
            return None
        if isinstance(scope, int) and not isinstance(scope, bool):
            return self.owner_by_node_id.get(scope)
        return self.owner_by_label.get(str(scope))

    def single_owner(self, labels: Sequence[str]) -> Optional[int]:
        """The one shard owning *every* label, or ``None``."""
        owners = {self.owner_by_label.get(str(label)) for label in labels}
        if len(owners) == 1:
            return owners.pop()
        return None

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for /v1/stats."""
        return {
            "fingerprint": self.fingerprint,
            "shards": [
                {
                    "shard": s.shard_id,
                    "subtrees": len(s.tree.root.children),
                    "communities": len(s.labels),
                    "members": len(s.members),
                }
                for s in self.shards
            ],
            "cross_edges": sum(e.edge_count for e in self.cross_edges),
            "scatter_capable": self.scatter_capable,
        }


def _subtree_nodes(tree: GTree, node: GTreeNode) -> List[GTreeNode]:
    """``node`` and its descendants in deterministic preorder."""
    result = []
    stack = [node]
    while stack:
        current = stack.pop()
        result.append(current)
        stack.extend(reversed(tree.children(current.node_id)))
    return result


def _clone_node(node: GTreeNode, graph: Optional[Graph]) -> GTreeNode:
    # Structural copy sharing the original (immutable-by-convention) leaf
    # subgraph object: pickling the slice ships it to the shard worker
    # with every internal dict order intact.  A leaf that carries no
    # subgraph gets one materialised here, at plan time, with the same
    # ``graph.subgraph(members, name=label)`` call the engine would make
    # per request — so the shard worker serves the leaf directly (as a
    # store-backed worker would) instead of re-inducing it on every plan,
    # and the bytes stay identical to the unsharded answer.
    subgraph = node.subgraph
    if subgraph is None and node.is_leaf and graph is not None:
        subgraph = graph.subgraph(node.members, name=node.label)
    return GTreeNode(
        node_id=node.node_id,
        label=node.label,
        level=node.level,
        parent_id=node.parent_id,
        children=list(node.children),
        members=list(node.members),
        connectivity=list(node.connectivity),
        subgraph=subgraph,
    )


class ShardPlanner:
    """Greedy balanced placement of root subtrees onto ``shards`` shards."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ShardPlanError(
                f"shard count must be a positive integer, got {shards}"
            )
        self.shards = shards

    def plan(
        self,
        tree: GTree,
        graph: Optional[Graph],
        fingerprint: str,
        index=None,
    ) -> ShardPlan:
        """Split ``tree``/``graph`` into at most ``self.shards`` slices.

        ``index`` is the parent :class:`~repro.graph.matrix.VertexIndex`
        (when a prepared graph exists); it supplies the per-shard row
        blocks that make exact scatter matvecs possible.
        """
        root = tree.root
        subtrees = tree.children(root.node_id)
        if not subtrees:
            raise ShardPlanError(
                f"dataset tree {tree.name!r} has no community subtrees to "
                "shard on (root is a leaf)"
            )
        count = max(1, min(self.shards, len(subtrees)))

        # Largest-first onto the least-loaded shard; ties break to the
        # lowest shard id, so placement is deterministic.
        loads = [0] * count
        assignment: Dict[int, int] = {}
        for node in sorted(subtrees, key=lambda n: (-len(n.members), n.node_id)):
            shard = min(range(count), key=lambda s: (loads[s], s))
            assignment[node.node_id] = shard
            loads[shard] += len(node.members)

        slices = []
        owner_by_label: Dict[str, int] = {}
        owner_by_node_id: Dict[int, int] = {}
        vertex_owner: Dict[object, int] = {}
        for shard_id in range(count):
            owned = [
                child for child in subtrees
                if assignment[child.node_id] == shard_id
            ]
            slice_tree = GTree(name=f"{tree.name}::shard{shard_id}")
            slice_root = GTreeNode(
                node_id=root.node_id,
                label=root.label,
                level=root.level,
                parent_id=None,
                children=[child.node_id for child in owned],
                members=[m for child in owned for m in child.members],
                connectivity=[
                    edge for edge in root.connectivity
                    if edge.source in assignment
                    and edge.target in assignment
                    and assignment[edge.source] == shard_id
                    and assignment[edge.target] == shard_id
                ],
                subgraph=root.subgraph if root.is_leaf else None,
            )
            slice_tree.add_node(slice_root)
            labels: List[str] = []
            node_ids: List[int] = []
            for child in owned:
                for node in _subtree_nodes(tree, child):
                    clone = _clone_node(node, graph)
                    slice_tree.add_node(clone)
                    if clone.is_leaf:
                        slice_tree.register_leaf_members(clone)
                    labels.append(node.label)
                    node_ids.append(node.node_id)
                    owner_by_label[node.label] = shard_id
                    owner_by_node_id[node.node_id] = shard_id
            slice_tree.assert_valid()
            members = tuple(slice_root.members)
            for member in members:
                vertex_owner[member] = shard_id
            shard_graph = None
            if graph is not None:
                shard_graph = graph.induced_ordered(
                    members, name=f"{graph.name}::shard{shard_id}"
                )
            rows = None
            if index is not None and graph is not None:
                try:
                    rows = tuple(sorted(
                        index.index_of(member) for member in members
                    ))
                except Exception:
                    rows = None
            slices.append(ShardSlice(
                shard_id=shard_id,
                tree=slice_tree,
                graph=shard_graph,
                labels=tuple(labels),
                node_ids=tuple(node_ids),
                members=members,
                rows=rows,
            ))

        cross = self._cross_edges(graph, vertex_owner, count)
        num_vertices = len(index) if index is not None else (
            graph.num_nodes if graph is not None else 0
        )
        scatter = self._scatter_capable(slices, num_vertices)
        return ShardPlan(
            fingerprint=fingerprint,
            shards=tuple(slices),
            owner_by_label=owner_by_label,
            owner_by_node_id=owner_by_node_id,
            cross_edges=cross,
            scatter_capable=scatter,
            num_vertices=num_vertices,
        )

    @staticmethod
    def _cross_edges(
        graph: Optional[Graph],
        vertex_owner: Dict[object, int],
        count: int,
    ) -> Tuple[CrossShardEdge, ...]:
        if graph is None or count < 2:
            return ()
        table: Dict[Tuple[int, int], List[float]] = {}
        for u, v, weight in graph.edges():
            a = vertex_owner.get(u)
            b = vertex_owner.get(v)
            if a is None or b is None or a == b:
                continue
            key = (min(a, b), max(a, b))
            entry = table.setdefault(key, [0, 0.0])
            entry[0] += 1
            entry[1] += weight
        return tuple(
            CrossShardEdge(
                shard_a=a, shard_b=b,
                edge_count=int(entry[0]), total_weight=float(entry[1]),
            )
            for (a, b), entry in sorted(table.items())
        )

    @staticmethod
    def _scatter_capable(slices, num_vertices: int) -> bool:
        if num_vertices <= 0:
            return False
        seen: List[int] = []
        for s in slices:
            if s.rows is None:
                return False
            seen.extend(s.rows)
        # Exact partition of [0, n): every parent row owned exactly once.
        return sorted(seen) == list(range(num_vertices))

"""Scatter-gather RWR: the blocked power iteration with a pluggable matvec.

:func:`scatter_rwr` is a line-for-line mirror of the single-column path
through :func:`repro.mining.rwr._power_block_chunk` — same restart-vector
construction, same update/delta/convergence expressions, same
normalisation and the same strict :class:`ConvergenceError` — except the
``transition @ rank`` product is supplied by a caller-provided callable.

Why this is *exactly* the monolithic result and not an approximation:
CSR matrix–dense products accumulate each output row independently, in
the row's stored-nonzero order.  Slicing the transition matrix into row
blocks ``W[rows_s, :]`` preserves each row's stored order, so a shard's
partial product is bitwise the corresponding rows of the full product,
and scattering the partials back into place reconstructs ``W @ rank``
bit-for-bit.  Every remaining arithmetic step then runs in the parent
with the very same expressions as the unsharded kernel, so the final
scores are byte-identical by construction (CI-gated, not just asserted).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConvergenceError
from ..graph.matrix import VertexIndex, restart_vector
from ..mining.rwr import RWRResult, _check_sources, _validate_restart

#: ``(rank_block) -> product_block`` supplying ``transition @ rank``.
Matvec = Callable[[np.ndarray], np.ndarray]


def scatter_rwr(
    index: VertexIndex,
    matvec: Matvec,
    sources: Sequence,
    restart_probability: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 500,
) -> RWRResult:
    """Steady-state RWR for one source set through a distributed matvec.

    Mirrors ``steady_state_rwr(..., solver="power")`` exactly: canonical
    source ordering, k=1 blocked iteration, strict convergence, and the
    final L1 renormalisation.
    """
    _validate_restart(restart_probability)
    canonical_sources = sorted(set(sources), key=repr)
    _check_sources(None, index, canonical_sources)

    n = len(index)
    k = 1
    c = restart_probability
    q_block = np.zeros((n, k))
    q_block[:, 0] = restart_vector(index, canonical_sources)
    rank = q_block.copy()
    restart_block = c * q_block
    iterations = [0] * k
    converged = [False] * k

    active = list(range(k))
    step = 0
    while active and step < max_iter:
        step += 1
        product = matvec(rank)
        still_active = []
        for column in active:
            updated = (1.0 - c) * product[:, column] + restart_block[:, column]
            delta = np.abs(updated - rank[:, column]).sum()
            rank[:, column] = updated
            iterations[column] = step
            if delta < tol:
                converged[column] = True
            else:
                still_active.append(column)
        active = still_active

    if active:
        raise ConvergenceError(
            f"RWR did not converge within {max_iter} iterations "
            f"(tol={tol}) for {len(active)} of {k} source sets"
        )

    final = np.ascontiguousarray(rank[:, 0])
    total = final.sum()
    if total > 0:
        final = final / total
    scores = {index.node_at(i): float(final[i]) for i in range(n)}
    return RWRResult(
        scores=scores,
        iterations=iterations[0],
        converged=converged[0],
        restart_probability=c,
    )

"""Top-level task functions executed inside shard worker processes.

Each shard is one single-process pool; these functions are the only code
the parent ever submits to it.  Worker-resident state lives in the
module-level ``_SHARD_STATE`` map, keyed by ``(fingerprint, shard_id)``
so a pool can serve several dataset generations and several logical
shards without cross-talk (mirroring the process backend's
``_WORKER_DATASETS``).

Deadline discipline: every task takes an optional absolute
``deadline_at`` (wall-clock seconds).  A task that starts after that
instant raises :class:`~repro.errors.WorkerDeadlineCancelled` instead of
computing — the in-worker half of deadline propagation (the parent half
is admission + abandonment).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..api.ops import OpContext
from ..api.plans import ComputePlan, run_plan
from ..core.engine import GMineEngine
from ..errors import ServiceError, WorkerDeadlineCancelled


class ShardStateError(ServiceError):
    """The worker has no state for this (fingerprint, shard) — re-warm.

    Raised when a rebuilt pool (post-crash) receives work before the
    parent re-warmed it, or when a dataset generation was never shipped
    here.  The parent treats it as retryable: re-warm once, then fall
    back to local execution.
    """


@dataclass
class _ShardContext:
    """Everything one warmed shard holds: slice dataset + matvec operand."""

    fingerprint: str
    shard_id: int
    op_context: OpContext
    matrix: Any = None          # csr row slice W[rows_s, :], or None
    segment: Any = None         # SharedMatrixSegment keeping the mapping alive


#: (fingerprint, shard_id) -> warmed context, in this worker process.
_SHARD_STATE: Dict[Tuple[str, int], _ShardContext] = {}


def _check_deadline(deadline_at: Optional[float], label: str) -> None:
    if deadline_at is not None and time.time() >= deadline_at:
        raise WorkerDeadlineCancelled(
            f"deadline expired before the shard worker started {label}; "
            "cancelled in the worker"
        )


def _shard_warm(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Install one shard slice in this worker.

    ``payload`` carries the slice tree and graph (pickled whole — the
    default dict pickling preserves every iteration order, which the
    byte-parity contract depends on) plus the matvec operand: either a
    shared-memory manifest to attach zero-copy or, as a fallback, the
    pickled CSR row slice itself.
    """
    fingerprint = payload["fingerprint"]
    shard_id = payload["shard_id"]
    engine = GMineEngine(tree=payload["tree"], graph=payload["graph"])
    matrix = payload.get("matrix")
    segment = None
    manifest = payload.get("matrix_manifest")
    if manifest is not None:
        from ..graph.shm import SHM_STATS, SharedMatrixSegment

        try:
            segment = SharedMatrixSegment.attach(manifest)
            matrix = segment.matrix
        except Exception:
            SHM_STATS.fallback()
            segment = None
    previous = _SHARD_STATE.get((fingerprint, shard_id))
    if previous is not None and previous.segment is not None:
        previous.segment.release()
    _SHARD_STATE[(fingerprint, shard_id)] = _ShardContext(
        fingerprint=fingerprint,
        shard_id=shard_id,
        op_context=OpContext(engine=engine, prepared_provider=None),
        matrix=matrix,
        segment=segment,
    )
    return {
        "fingerprint": fingerprint,
        "shard": shard_id,
        "pid": os.getpid(),
        "matvec_ready": matrix is not None,
        "shm_attached": segment is not None,
    }


def _shard_context(fingerprint: str, shard_id: int) -> _ShardContext:
    try:
        return _SHARD_STATE[(fingerprint, shard_id)]
    except KeyError:
        raise ShardStateError(
            f"shard worker pid {os.getpid()} holds no state for shard "
            f"{shard_id} of dataset {fingerprint[:12]}…; re-warm required"
        ) from None


def _shard_execute(
    fingerprint: str,
    shard_id: int,
    plan: ComputePlan,
    deadline_at: Optional[float] = None,
) -> Any:
    """Run one routed plan entirely on this shard's slice."""
    _check_deadline(deadline_at, f"plan {plan.operation!r}")
    ctx = _shard_context(fingerprint, shard_id).op_context
    return run_plan(plan, ctx.community_subgraph, ctx.prepared_for)


def _shard_matvec(
    fingerprint: str,
    shard_id: int,
    rank,
    deadline_at: Optional[float] = None,
):
    """One scatter step: this shard's row block of ``W @ rank``."""
    _check_deadline(deadline_at, "a scatter matvec")
    state = _shard_context(fingerprint, shard_id)
    if state.matrix is None:
        raise ShardStateError(
            f"shard {shard_id} of dataset {fingerprint[:12]}… was warmed "
            "without a matvec operand"
        )
    return state.matrix @ rank


def _shard_drop(fingerprint: str, shard_id: int) -> bool:
    """Release one warmed slice (dataset retired or re-warmed elsewhere)."""
    state = _SHARD_STATE.pop((fingerprint, shard_id), None)
    if state is not None and state.segment is not None:
        state.segment.release()
    return state is not None

"""Sharded execution: G-Tree-aligned dataset splits and scatter-gather.

The G-Tree's top-level communities are a natural shard key (GMine §4:
partitions minimise cross-community edges), so each shard holds a slice
tree (root + one bundle of community subtrees), the order-preserving
induced subgraph for its members, and — when every vertex lands in
exactly one shard — its row block of the transition matrix for exact
distributed RWR.  See ``backend.ShardedBackend`` for the routing rules
and the byte-parity argument.
"""

from .backend import ShardedBackend
from .planner import (
    CrossShardEdge,
    ShardPlan,
    ShardPlanError,
    ShardPlanner,
    ShardSlice,
)
from .rwr import scatter_rwr
from .worker import ShardStateError

__all__ = [
    "CrossShardEdge",
    "ShardPlan",
    "ShardPlanError",
    "ShardPlanner",
    "ShardSlice",
    "ShardStateError",
    "ShardedBackend",
    "scatter_rwr",
]

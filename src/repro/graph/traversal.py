"""Graph traversals shared by the mining and core subsystems.

Breadth-first and depth-first primitives, shortest paths on weighted graphs,
and hop-distance utilities.  The paper's "number of hops" metric and the
connection-subgraph path assembly both sit on these.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import NodeNotFoundError
from .graph import Graph, NodeId


def bfs_order(graph: Graph, source: NodeId) -> Iterator[NodeId]:
    """Yield vertices in breadth-first order from ``source``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        yield node
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)


def bfs_distances(
    graph: Graph, source: NodeId, max_depth: Optional[int] = None
) -> Dict[NodeId, int]:
    """Return hop distances from ``source`` to every reachable vertex.

    ``max_depth`` truncates the search; vertices further away are omitted.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def bfs_tree(graph: Graph, source: NodeId) -> Dict[NodeId, Optional[NodeId]]:
    """Return a BFS parent map (``parent[source] is None``)."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    parents: Dict[NodeId, Optional[NodeId]] = {source: None}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def dfs_order(graph: Graph, source: NodeId) -> Iterator[NodeId]:
    """Yield vertices in (iterative) depth-first preorder from ``source``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen = set()
    stack = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        # Push neighbours in reverse insertion order for stable output.
        stack.extend(reversed(list(graph.neighbors(node))))


def shortest_path_hops(
    graph: Graph, source: NodeId, target: NodeId
) -> Optional[List[NodeId]]:
    """Return the fewest-hops path from ``source`` to ``target`` (or None)."""
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    parents = {source: None}
    if source == target:
        return [source]
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in parents:
                continue
            parents[neighbor] = node
            if neighbor == target:
                return _reconstruct(parents, target)
            queue.append(neighbor)
    return None


def dijkstra(
    graph: Graph,
    source: NodeId,
    weight_fn=None,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]]]:
    """Return ``(distance, parent)`` maps for weighted shortest paths.

    ``weight_fn(u, v, w)`` can override the traversal cost; by default the
    stored edge weight is used directly (must be non-negative).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distance: Dict[NodeId, float] = {source: 0.0}
    parent: Dict[NodeId, Optional[NodeId]] = {source: None}
    counter = 0  # tie-breaker so heterogeneous node ids never get compared
    heap: List[Tuple[float, int, NodeId]] = [(0.0, counter, source)]
    done = set()
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbor in graph.neighbors(node):
            raw = graph.edge_weight(node, neighbor)
            cost = weight_fn(node, neighbor, raw) if weight_fn else raw
            candidate = dist + cost
            if neighbor not in distance or candidate < distance[neighbor]:
                distance[neighbor] = candidate
                parent[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distance, parent


def shortest_weighted_path(
    graph: Graph, source: NodeId, target: NodeId, weight_fn=None
) -> Optional[List[NodeId]]:
    """Return the min-cost path between two vertices, or None if unreachable."""
    distance, parent = dijkstra(graph, source, weight_fn=weight_fn)
    if target not in distance:
        if not graph.has_node(target):
            raise NodeNotFoundError(target)
        return None
    return _reconstruct(parent, target)


def eccentricity(graph: Graph, source: NodeId) -> int:
    """Return the maximum hop distance from ``source`` to any reachable vertex."""
    distances = bfs_distances(graph, source)
    return max(distances.values()) if distances else 0


def _reconstruct(
    parents: Dict[NodeId, Optional[NodeId]], target: NodeId
) -> List[NodeId]:
    """Walk a parent map back from ``target`` to the root."""
    path = [target]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()
    return path

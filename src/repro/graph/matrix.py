"""Bridges between :class:`~repro.graph.graph.Graph` and sparse matrices.

Numeric kernels — random walk with restart, spectral partitioning, PageRank —
operate on ``scipy.sparse`` matrices.  This module centralises the (graph,
matrix, index) conversions so every kernel shares one deterministic vertex
ordering and one normalisation convention.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..errors import GraphError
from .graph import Graph, NodeId


class VertexIndex:
    """A bidirectional mapping between vertex ids and contiguous indices.

    The ordering is the graph's insertion order, which makes every matrix
    built from the same graph use the same rows and keeps results
    reproducible across runs.
    """

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        self._order: List[NodeId] = list(nodes)
        self._index: Dict[NodeId, int] = {
            node: position for position, node in enumerate(self._order)
        }
        if len(self._index) != len(self._order):
            raise GraphError("duplicate vertex ids passed to VertexIndex")

    @classmethod
    def from_graph(cls, graph: Graph) -> "VertexIndex":
        """Build the index from a graph's insertion order."""
        return cls(list(graph.nodes()))

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def index_of(self, node: NodeId) -> int:
        """Return the matrix row/column of ``node``."""
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"vertex {node!r} is not in the index") from None

    def node_at(self, position: int) -> NodeId:
        """Return the vertex id stored at matrix position ``position``."""
        return self._order[position]

    def nodes(self) -> List[NodeId]:
        """Return the vertex ids in matrix order (a copy)."""
        return list(self._order)

    def to_indices(self, nodes: Sequence[NodeId]) -> List[int]:
        """Map a sequence of vertex ids to matrix positions."""
        return [self.index_of(node) for node in nodes]

    def to_nodes(self, indices: Sequence[int]) -> List[NodeId]:
        """Map a sequence of matrix positions back to vertex ids."""
        return [self._order[i] for i in indices]


def adjacency_matrix(
    graph: Graph, index: VertexIndex | None = None, dtype=np.float64
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return ``(A, index)`` where ``A`` is the symmetric weighted adjacency.

    Self loops appear once on the diagonal.
    """
    if index is None:
        index = VertexIndex.from_graph(graph)
    n = len(index)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for u, v, w in graph.edges():
        i, j = index.index_of(u), index.index_of(v)
        rows.append(i)
        cols.append(j)
        vals.append(w)
        if i != j:
            rows.append(j)
            cols.append(i)
            vals.append(w)
    matrix = sparse.csr_matrix(
        (np.asarray(vals, dtype=dtype), (rows, cols)), shape=(n, n)
    )
    return matrix, index


def degree_vector(adjacency: sparse.spmatrix) -> np.ndarray:
    """Return the weighted degree (row-sum) vector of an adjacency matrix."""
    return np.asarray(adjacency.sum(axis=1)).ravel()


def transition_matrix(
    graph: Graph, index: VertexIndex | None = None
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return the column-stochastic transition matrix ``W`` and its index.

    ``W[i, j]`` is the probability of stepping to vertex ``i`` from vertex
    ``j`` (column-normalised), the convention used by random walk with
    restart: ``p' = (1 - c) W p + c q``.  Columns of isolated vertices are
    left all-zero; RWR treats them as absorbing into the restart vector.
    """
    adjacency, index = adjacency_matrix(graph, index)
    degrees = degree_vector(adjacency)
    with np.errstate(divide="ignore"):
        inverse = np.where(degrees > 0, 1.0 / degrees, 0.0)
    # Column-normalise: divide column j by degree(j).
    scaling = sparse.diags(inverse)
    transition = (adjacency @ scaling).tocsr()
    return transition, index


def normalized_laplacian(
    graph: Graph, index: VertexIndex | None = None
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return the symmetric normalised Laplacian ``I - D^-1/2 A D^-1/2``."""
    adjacency, index = adjacency_matrix(graph, index)
    degrees = degree_vector(adjacency)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    half = sparse.diags(inv_sqrt)
    n = adjacency.shape[0]
    laplacian = sparse.identity(n, format="csr") - (half @ adjacency @ half)
    return laplacian.tocsr(), index


def combinatorial_laplacian(
    graph: Graph, index: VertexIndex | None = None
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return the combinatorial Laplacian ``D - A``."""
    adjacency, index = adjacency_matrix(graph, index)
    degrees = degree_vector(adjacency)
    laplacian = sparse.diags(degrees) - adjacency
    return laplacian.tocsr(), index


def restart_vector(
    index: VertexIndex, sources: Sequence[NodeId], dtype=np.float64
) -> np.ndarray:
    """Return a probability vector uniform over ``sources`` and zero elsewhere."""
    if not sources:
        raise GraphError("restart_vector requires at least one source node")
    vector = np.zeros(len(index), dtype=dtype)
    for node in sources:
        vector[index.index_of(node)] += 1.0
    vector /= vector.sum()
    return vector

"""Bridges between :class:`~repro.graph.graph.Graph` and sparse matrices.

Numeric kernels — random walk with restart, spectral partitioning, PageRank —
operate on ``scipy.sparse`` matrices.  This module centralises the (graph,
matrix, index) conversions so every kernel shares one deterministic vertex
ordering and one normalisation convention.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..errors import GraphError
from .graph import Graph, NodeId


class VertexIndex:
    """A bidirectional mapping between vertex ids and contiguous indices.

    The ordering is the graph's insertion order, which makes every matrix
    built from the same graph use the same rows and keeps results
    reproducible across runs.
    """

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        self._order: List[NodeId] = list(nodes)
        self._index: Dict[NodeId, int] = {
            node: position for position, node in enumerate(self._order)
        }
        if len(self._index) != len(self._order):
            raise GraphError("duplicate vertex ids passed to VertexIndex")

    @classmethod
    def from_graph(cls, graph: Graph) -> "VertexIndex":
        """Build the index from a graph's insertion order."""
        return cls(list(graph.nodes()))

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def index_of(self, node: NodeId) -> int:
        """Return the matrix row/column of ``node``."""
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"vertex {node!r} is not in the index") from None

    def node_at(self, position: int) -> NodeId:
        """Return the vertex id stored at matrix position ``position``."""
        return self._order[position]

    def nodes(self) -> List[NodeId]:
        """Return the vertex ids in matrix order (a copy)."""
        return list(self._order)

    def to_indices(self, nodes: Sequence[NodeId]) -> List[int]:
        """Map a sequence of vertex ids to matrix positions."""
        return [self.index_of(node) for node in nodes]

    def to_nodes(self, indices: Sequence[int]) -> List[NodeId]:
        """Map a sequence of matrix positions back to vertex ids."""
        return [self._order[i] for i in indices]


def adjacency_matrix(
    graph: Graph, index: VertexIndex | None = None, dtype=np.float64
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return ``(A, index)`` where ``A`` is the symmetric weighted adjacency.

    Self loops appear once on the diagonal.
    """
    if index is None:
        index = VertexIndex.from_graph(graph)
    n = len(index)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for u, v, w in graph.edges():
        i, j = index.index_of(u), index.index_of(v)
        rows.append(i)
        cols.append(j)
        vals.append(w)
        if i != j:
            rows.append(j)
            cols.append(i)
            vals.append(w)
    matrix = sparse.csr_matrix(
        (np.asarray(vals, dtype=dtype), (rows, cols)), shape=(n, n)
    )
    return matrix, index


def degree_vector(adjacency: sparse.spmatrix) -> np.ndarray:
    """Return the weighted degree (row-sum) vector of an adjacency matrix."""
    return np.asarray(adjacency.sum(axis=1)).ravel()


def _column_stochastic(
    adjacency: sparse.spmatrix, degrees: np.ndarray
) -> sparse.csr_matrix:
    """Column-normalise an adjacency matrix into the RWR transition ``W``.

    Shared by :func:`transition_matrix` (cold path) and
    :class:`PreparedGraph` (warm path) so both produce bit-identical
    matrices — the service's byte-parity guarantees depend on it.
    """
    with np.errstate(divide="ignore"):
        inverse = np.where(degrees > 0, 1.0 / degrees, 0.0)
    # Column-normalise: divide column j by degree(j).
    scaling = sparse.diags(inverse)
    return (adjacency @ scaling).tocsr()


def pagerank_operator(
    matrix: sparse.spmatrix,
) -> Tuple[sparse.spmatrix, np.ndarray]:
    """``(transition, dangling mask)`` exactly as PageRank derives them.

    PageRank normalises by *column* sums of its matrix (out-weight) —
    which for a symmetric adjacency equals the degree vector only up to
    float summation order, so this derivation is its own helper rather
    than reusing :func:`_column_stochastic`.  Shared by the cold path
    (:func:`repro.mining.pagerank._pagerank_from_matrix`) and the warm
    one (:meth:`PreparedGraph.pagerank_view`) so the two can never drift
    off bit-parity.
    """
    out_weight = np.asarray(matrix.sum(axis=0)).ravel()
    with np.errstate(divide="ignore"):
        inv_out = np.where(out_weight > 0, 1.0 / out_weight, 0.0)
    return matrix @ sparse.diags(inv_out), out_weight == 0


def transition_matrix(
    graph: Graph, index: VertexIndex | None = None
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return the column-stochastic transition matrix ``W`` and its index.

    ``W[i, j]`` is the probability of stepping to vertex ``i`` from vertex
    ``j`` (column-normalised), the convention used by random walk with
    restart: ``p' = (1 - c) W p + c q``.  Columns of isolated vertices are
    left all-zero; RWR treats them as absorbing into the restart vector.
    """
    adjacency, index = adjacency_matrix(graph, index)
    degrees = degree_vector(adjacency)
    return _column_stochastic(adjacency, degrees), index


def normalized_laplacian(
    graph: Graph, index: VertexIndex | None = None
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return the symmetric normalised Laplacian ``I - D^-1/2 A D^-1/2``."""
    adjacency, index = adjacency_matrix(graph, index)
    degrees = degree_vector(adjacency)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    half = sparse.diags(inv_sqrt)
    n = adjacency.shape[0]
    laplacian = sparse.identity(n, format="csr") - (half @ adjacency @ half)
    return laplacian.tocsr(), index


def combinatorial_laplacian(
    graph: Graph, index: VertexIndex | None = None
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return the combinatorial Laplacian ``D - A``."""
    adjacency, index = adjacency_matrix(graph, index)
    degrees = degree_vector(adjacency)
    laplacian = sparse.diags(degrees) - adjacency
    return laplacian.tocsr(), index


def restart_vector(
    index: VertexIndex, sources: Sequence[NodeId], dtype=np.float64
) -> np.ndarray:
    """Return a probability vector uniform over ``sources`` and zero elsewhere."""
    if not sources:
        raise GraphError("restart_vector requires at least one source node")
    vector = np.zeros(len(index), dtype=dtype)
    positions = np.fromiter(
        (index.index_of(node) for node in sources), dtype=np.intp,
        count=len(sources),
    )
    # Unbuffered accumulation: repeated sources add once per occurrence,
    # exactly like the per-source loop this replaces.
    np.add.at(vector, positions, 1.0)
    vector /= vector.sum()
    return vector


def exact_rwr_factor(transition_csc: sparse.csc_matrix, restart_probability: float):
    """Factorize the exact-RWR system ``I - (1 - c) W`` once (SuperLU).

    The factorization is the expensive part of :func:`repro.mining.rwr.
    rwr_exact`; with it in hand, each restart vector is one cheap
    triangular solve, and k vectors solve in a single batched call.
    ``splu`` is deterministic and ``factor.solve(b)`` is bit-identical to
    ``spsolve(system, b)`` column by column, so routing the exact solver
    through a cached factor changes cost only, never bytes.
    """
    from scipy.sparse.linalg import splu

    n = transition_csc.shape[0]
    system = (
        sparse.identity(n, format="csc", dtype=transition_csc.dtype)
        - (1.0 - restart_probability) * transition_csc
    )
    return splu(system.tocsc())


class PreparedGraph:
    """An immutable, kernel-ready sparse view of one :class:`Graph`.

    Every numeric kernel needs the same things rebuilt from the Python
    adjacency dicts on every call today: a :class:`VertexIndex`, the CSR
    adjacency, the degree vector, and (for walks) the column-stochastic
    transition matrix.  A ``PreparedGraph`` pays that O(E) conversion
    **once** and hands the kernels cheap derived views; the service layer
    caches one instance per dataset fingerprint, so every warm query skips
    the conversion entirely.

    Correctness bar: every view is produced by exactly the same code path
    the cold conversions use (:func:`adjacency_matrix`,
    :func:`degree_vector`, :func:`_column_stochastic`,
    :func:`restart_vector`), so a kernel fed a ``PreparedGraph`` returns
    **bit-identical** results to one fed the raw graph.

    Derived views are built lazily and memoised.  The benign race two
    kernel threads can hit (both build the same deterministic view; one
    assignment wins) is accepted on purpose — it keeps the instance free
    of locks and therefore picklable.
    """

    def __init__(
        self,
        index: VertexIndex,
        adjacency: sparse.csr_matrix,
        fingerprint: str | None = None,
    ) -> None:
        self.index = index
        self.adjacency = adjacency
        #: Dataset fingerprint this preparation belongs to (cache key tag);
        #: ``None`` for ad-hoc preparations outside the service layer.
        self.fingerprint = fingerprint
        self._degrees: np.ndarray | None = None
        self._transition: sparse.csr_matrix | None = None
        self._transition_csc: sparse.csc_matrix | None = None
        self._reverse_transition: sparse.csr_matrix | None = None
        self._pagerank_view: Tuple[sparse.csr_matrix, np.ndarray] | None = None
        #: restart probability -> SuperLU factor of ``I - (1 - c) W``.
        #: Bounded (services use one or two restart probabilities; ad-hoc
        #: sweeps should not pin O(n) factors).  SuperLU objects are not
        #: picklable, so :meth:`__getstate__` drops this cache.
        self._exact_factors: "OrderedDict[float, Any]" = OrderedDict()

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        index: VertexIndex | None = None,
        fingerprint: str | None = None,
    ) -> "PreparedGraph":
        """Prepare ``graph`` once: build the index and CSR adjacency."""
        adjacency, index = adjacency_matrix(graph, index)
        return cls(index=index, adjacency=adjacency, fingerprint=fingerprint)

    # ------------------------------------------------------------------ #
    # cheap derived views (lazy, memoised)
    # ------------------------------------------------------------------ #
    @property
    def degrees(self) -> np.ndarray:
        """Weighted degree vector (adjacency row sums)."""
        if self._degrees is None:
            self._degrees = degree_vector(self.adjacency)
        return self._degrees

    @property
    def transition(self) -> sparse.csr_matrix:
        """Column-stochastic RWR transition ``W`` (``W[i, j]``: j -> i)."""
        if self._transition is None:
            self._transition = _column_stochastic(self.adjacency, self.degrees)
        return self._transition

    @property
    def transition_csc(self) -> sparse.csc_matrix:
        """CSC view of :attr:`transition` (what the exact solver factorises)."""
        if self._transition_csc is None:
            self._transition_csc = self.transition.tocsc()
        return self._transition_csc

    @property
    def reverse_transition(self) -> sparse.csr_matrix:
        """Row-stochastic reverse-edge view ``W^T`` (CSR).

        For the undirected graphs GMine mines, ``W^T = D^{-1} A`` is the
        row-normalised walk operator — the matrix a *reverse* (incoming)
        walk steps by, which directed proximity queries iterate.
        """
        if self._reverse_transition is None:
            self._reverse_transition = self.transition.transpose().tocsr()
        return self._reverse_transition

    def pagerank_view(self) -> Tuple[sparse.csr_matrix, np.ndarray]:
        """Memoised :func:`pagerank_operator` over this adjacency."""
        if self._pagerank_view is None:
            self._pagerank_view = pagerank_operator(self.adjacency)
        return self._pagerank_view

    def restart_vector(self, sources: Sequence[NodeId]) -> np.ndarray:
        """Probability vector uniform over ``sources`` (see :func:`restart_vector`)."""
        return restart_vector(self.index, sources)

    #: How many exact-solver factorizations one preparation memoises.
    EXACT_FACTOR_CAPACITY = 4

    def exact_factor(self, restart_probability: float):
        """Memoised :func:`exact_rwr_factor` for this restart probability.

        The same benign-race policy as the other lazy views: two threads
        may both factorize (the result is deterministic, one assignment
        wins), keeping the instance lock-free.
        """
        key = float(restart_probability)
        factor = self._exact_factors.get(key)
        if factor is None:
            factor = exact_rwr_factor(self.transition_csc, key)
            while len(self._exact_factors) >= self.EXACT_FACTOR_CAPACITY:
                self._exact_factors.popitem(last=False)
            self._exact_factors[key] = factor
        return factor

    def __getstate__(self) -> Dict[str, Any]:
        # SuperLU factors hold C pointers and cannot pickle; workers
        # refactorize on first exact solve instead.
        state = self.__dict__.copy()
        state["_exact_factors"] = OrderedDict()
        return state

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.index

    def __repr__(self) -> str:
        tag = f" fingerprint={self.fingerprint[:12]}…" if self.fingerprint else ""
        return (
            f"<PreparedGraph with {len(self.index)} vertices, "
            f"{self.adjacency.nnz} stored entries{tag}>"
        )


def _release_view(view: "PreparedGraph") -> None:
    """Release a dropped view's external resources, if it holds any."""
    release = getattr(view, "release", None)
    if release is not None:
        try:
            release()
        except Exception:  # pragma: no cover - release must never propagate
            pass


class PreparedViewCache:
    """A bounded LRU of :class:`PreparedGraph` views keyed by fingerprint.

    The mutable-dataset write path swaps a fresh :class:`DatasetHandle`
    into the registry on every edit; preparations owned by the superseded
    handle would die with it even when the content they describe did not
    change.  Keying views by *content fingerprint* instead — the dataset's
    Merkle root for the widest scope, a community's sub-fingerprint for a
    partition view — makes survival automatic: a handle swapped in after
    an edit finds every untouched partition's preparation already warm,
    and the edited partitions simply miss (their sub-fingerprints changed)
    and rebuild on first use.

    ``get`` builds-on-miss under a per-cache lock, so two requests racing
    on the same cold fingerprint produce one preparation.  Hit/build
    counters feed ``/v1/stats`` — they are how the acceptance test for
    prepared-view survival observes reuse across an edit.

    Views that own external resources (shared-memory segments —
    :class:`~repro.graph.shm.SharedPreparedGraph`) expose ``release()``;
    the cache calls it whenever it drops a view (eviction, invalidation,
    :meth:`clear`), which is what makes the registry the single owner of
    segment lifecycle.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise GraphError(
                f"prepared view cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._views: "OrderedDict[str, PreparedGraph]" = OrderedDict()
        self.hits = 0
        self.builds = 0
        self.evictions = 0
        self.invalidated = 0

    def get(
        self, fingerprint: str, build: Callable[[], PreparedGraph]
    ) -> PreparedGraph:
        """Return the view for ``fingerprint``, building it at most once."""
        with self._lock:
            view = self._views.get(fingerprint)
            if view is not None:
                self.hits += 1
                self._views.move_to_end(fingerprint)
                return view
            view = build()
            self.builds += 1
            while len(self._views) >= self.capacity:
                _, evicted = self._views.popitem(last=False)
                self.evictions += 1
                _release_view(evicted)
            self._views[fingerprint] = view
            return view

    def peek(self, fingerprint: str) -> "PreparedGraph | None":
        """Return the cached view without building or touching recency."""
        with self._lock:
            return self._views.get(fingerprint)

    def invalidate(self, fingerprint: str) -> bool:
        """Drop the view for ``fingerprint``; ``True`` when one was held."""
        with self._lock:
            view = self._views.pop(fingerprint, None)
            if view is not None:
                self.invalidated += 1
            dropped = view is not None
        if view is not None:
            _release_view(view)
        return dropped

    def clear(self) -> int:
        """Drop (and release) every view; returns how many were held.

        Called at registry drain / service close so shared segments are
        unlinked deterministically rather than waiting on finalizers.
        """
        with self._lock:
            views = list(self._views.values())
            self._views.clear()
        for view in views:
            _release_view(view)
        return len(views)

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly counters (surfaced through ``/v1/stats``)."""
        with self._lock:
            return {
                "views": len(self._views),
                "capacity": self.capacity,
                "hits": self.hits,
                "builds": self.builds,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
            }

"""Graph input/output.

Supported formats:

* **edge list** — whitespace-separated ``u v [weight]`` lines, ``#`` comments.
  This is the interchange format used by SNAP and by most public graph
  dumps, including DBLP-derived co-authorship edge lists.
* **JSON** — a self-describing document carrying node attributes and edge
  weights; used by the examples and by the CLI for small graphs.
* **adjacency text** — one line per vertex: ``u: v1 v2 ...`` (debug aid).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..errors import GraphFormatError
from .graph import Graph, NodeId

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a ``u v weight`` edge list.

    Isolated vertices are recorded in a trailing comment block so that a
    round trip preserves the vertex set exactly.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# graph: {graph.name}\n")
            handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u}\t{v}\t{w:g}\n")
        isolated = [node for node in graph.nodes() if graph.degree(node) == 0]
        for node in isolated:
            handle.write(f"#node\t{node}\n")


def read_edge_list(
    path: PathLike, name: str = "", int_nodes: bool = True
) -> Graph:
    """Read an edge-list file produced by :func:`write_edge_list` (or SNAP).

    Parameters
    ----------
    int_nodes:
        When true (default) vertex tokens that look like integers are
        converted to ``int``; otherwise ids stay strings.
    """
    path = Path(path)
    graph = Graph(name=name or path.stem)

    def parse(token: str) -> NodeId:
        if int_nodes:
            try:
                return int(token)
            except ValueError:
                return token
        return token

    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#node\t") or line.startswith("#node "):
                parts = line.split(None, 1)
                if len(parts) == 2:
                    graph.add_node(parse(parts[1].strip()))
                continue
            if line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v [weight]', got {line!r}"
                )
            u, v = parse(parts[0]), parse(parts[1])
            weight = 1.0
            if len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad weight {parts[2]!r}"
                    ) from exc
            graph.add_edge(u, v, weight=weight, accumulate=graph.has_edge(u, v))
    return graph


def write_json(graph: Graph, path: PathLike, indent: Optional[int] = None) -> None:
    """Write ``graph`` (with node and edge attributes) as a JSON document."""
    document = graph_to_dict(graph)
    Path(path).write_text(json.dumps(document, indent=indent), encoding="utf-8")


def read_json(path: PathLike) -> Graph:
    """Read a JSON document produced by :func:`write_json`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"{path}: invalid JSON: {exc}") from exc
    return graph_from_dict(document)


def load_graph_auto(path: PathLike) -> Graph:
    """Load a graph file, dispatching on its suffix.

    ``.json`` files go through :func:`read_json`; anything else is treated
    as an edge list.  This is the one suffix-dispatch rule shared by the
    CLI, the dataset registry and process-backend workers — add new graph
    formats here and every loader picks them up.
    """
    file_path = Path(path)
    if file_path.suffix == ".json":
        return read_json(file_path)
    if file_path.suffix == ".csv":
        return read_csv_edges(file_path)
    return read_edge_list(file_path)


def read_csv_edges(path: PathLike, name: str = "") -> Graph:
    """Read a ``u,v[,weight]`` CSV edge list (header row optional).

    The first row is treated as a header when its third column (or, for
    two-column files, its second) does not parse as a number — which
    covers ``source,target,weight`` exports from spreadsheet tools
    without requiring any flag.  Duplicate pairs accumulate weight,
    matching :func:`read_edge_list` semantics.
    """
    path = Path(path)
    graph = Graph(name=name or path.stem)

    def parse_node(token: str) -> NodeId:
        token = token.strip()
        try:
            return int(token)
        except ValueError:
            return token

    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for lineno, row in enumerate(reader, start=1):
            cells = [cell.strip() for cell in row if cell.strip() != ""]
            if not cells or cells[0].startswith("#"):
                continue
            if len(cells) < 2 or len(cells) > 3:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u,v' or 'u,v,weight', "
                    f"got {row!r}"
                )
            weight = 1.0
            if len(cells) == 3:
                try:
                    weight = float(cells[2])
                except ValueError:
                    if lineno == 1:  # header row
                        continue
                    raise GraphFormatError(
                        f"{path}:{lineno}: weight {cells[2]!r} is not a number"
                    ) from None
            elif lineno == 1 and [c.lower() for c in cells] in (
                ["source", "target"], ["u", "v"],
            ):
                continue
            graph.add_edge(
                parse_node(cells[0]), parse_node(cells[1]),
                weight=weight, accumulate=True,
            )
    return graph


def graph_to_dict(graph: Graph) -> Dict:
    """Return a JSON-serialisable dict representation of ``graph``."""
    nodes = []
    for node in graph.nodes():
        entry: Dict = {"id": node}
        attrs = graph.node_attrs(node)
        if attrs:
            entry["attrs"] = attrs
        nodes.append(entry)
    edges = []
    for u, v, w in graph.edges():
        entry = {"source": u, "target": v, "weight": w}
        attrs = graph.edge_attrs(u, v)
        if attrs:
            entry["attrs"] = attrs
        edges.append(entry)
    return {
        "format": "gmine-graph",
        "version": 1,
        "name": graph.name,
        "directed": False,
        "nodes": nodes,
        "edges": edges,
    }


def graph_from_dict(document: Dict) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_dict` output."""
    if not isinstance(document, dict) or document.get("format") != "gmine-graph":
        raise GraphFormatError("document is not a gmine-graph JSON payload")
    graph = Graph(name=document.get("name", ""))
    for entry in document.get("nodes", []):
        if "id" not in entry:
            raise GraphFormatError(f"node entry missing 'id': {entry!r}")
        graph.add_node(_freeze(entry["id"]), **entry.get("attrs", {}))
    for entry in document.get("edges", []):
        if "source" not in entry or "target" not in entry:
            raise GraphFormatError(f"edge entry missing endpoints: {entry!r}")
        u = _freeze(entry["source"])
        v = _freeze(entry["target"])
        graph.add_edge(u, v, weight=float(entry.get("weight", 1.0)))
        attrs = entry.get("attrs")
        if attrs:
            graph.edge_attrs(u, v).update(attrs)
    return graph


def write_adjacency_text(graph: Graph, path: PathLike) -> None:
    """Write a human-readable adjacency listing (debug aid)."""
    lines: List[str] = [f"# {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges"]
    for node in graph.nodes():
        neighbors = " ".join(str(neighbor) for neighbor in sorted(
            graph.neighbors(node), key=repr))
        lines.append(f"{node}: {neighbors}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def _freeze(value):
    """JSON round-trips tuples as lists; restore hashability for node ids."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value

"""Zero-copy shared-memory residency for :class:`~repro.graph.matrix.PreparedGraph`.

The process backend's warm workers used to rebuild the CSR adjacency and
transition matrices from the adjacency dicts at warm time — an O(E)
conversion paid once *per worker per dataset*.  This module moves the
numeric buffers of a prepared graph into one
:mod:`multiprocessing.shared_memory` segment published by the parent:

* :meth:`SharedPreparedGraph.publish` copies the CSR ``indptr``/
  ``indices``/``data`` triples (adjacency and transition), the degree
  vector and the pickled vertex order into a single segment, once, and
  returns a prepared graph whose arrays are *views over that segment* —
  the parent itself holds no second copy;
* the instance pickles as a :class:`SharedGraphManifest` — segment name
  plus dtype/shape/offset rows — so shipping it to a worker costs a few
  hundred bytes;
* :meth:`SharedPreparedGraph.attach` maps the segment in the worker and
  wraps the same bytes with ``np.ndarray`` + ``csr_matrix`` views,
  zero-copy (only the small pickled vertex-id list is materialised).

Lifecycle is owned by the publishing process: the registry unlinks a
segment when the prepared view retires (eviction, invalidation, service
shutdown), and a ``weakref.finalize`` guard unlinks it even if the owner
is dropped without an explicit release.  Attaching processes only ever
``close()`` their mapping — on POSIX an unlinked segment stays alive
until the last attachment closes, so retiring a view never tears buffers
out from under an in-flight worker kernel.  Attachments stay registered
with the ``resource_tracker``: pool workers share the publisher's
tracker process, so the creation-time entry doubles as the crash net —
if the whole process family dies without a graceful release (SIGTERM,
SIGKILL), the tracker unlinks the segment at shutdown instead of leaking
it in ``/dev/shm``.  (Re-registering an already-tracked name is a no-op;
an attacher-side *unregister* — the usual bug-38119 workaround — would
erase the publisher's entry from the shared tracker and defeat exactly
that net.  Only same-family processes ever attach here: manifests travel
solely inside pickled exec specs to pool workers.)

Every view is marked read-only; a kernel that tried to mutate a shared
buffer would raise instead of corrupting every other process's matrices.
"""

from __future__ import annotations

import logging
import pickle
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np
from scipy import sparse

from ..errors import GraphError
from .matrix import PreparedGraph, VertexIndex

logger = logging.getLogger(__name__)

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Byte alignment of every array inside a segment (cache-line friendly,
#: and satisfies any dtype's alignment requirement).
SEGMENT_ALIGNMENT = 64


def shared_memory_available() -> bool:
    """Whether this platform can publish shared prepared graphs."""
    return _shared_memory is not None


def _align(offset: int) -> int:
    remainder = offset % SEGMENT_ALIGNMENT
    return offset if remainder == 0 else offset + (SEGMENT_ALIGNMENT - remainder)


# --------------------------------------------------------------------------- #
# cross-cutting counters (surfaced through /v1/stats and the bench gates)
# --------------------------------------------------------------------------- #
class _ShmCounters:
    """Per-process counters for segment lifecycle accounting.

    The parent's numbers (prepares, segment bytes, unlinks) prove the
    registry's lifecycle discipline; a worker's ``attaches`` counter —
    collected through the process backend's warm results — proves the
    zero-copy path actually served, which is exactly what the bench gate
    asserts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.prepares = 0  # segments published by this process
        self.attaches = 0  # segments attached by this process
        self.unlinks = 0
        self.detaches = 0
        self.attach_fallbacks = 0  # attach failed; caller rebuilt cold
        self.segment_bytes = 0  # bytes currently published (owner side)

    def published(self, nbytes: int) -> None:
        with self._lock:
            self.prepares += 1
            self.segment_bytes += nbytes

    def attached(self) -> None:
        with self._lock:
            self.attaches += 1

    def unlinked(self, nbytes: int) -> None:
        with self._lock:
            self.unlinks += 1
            self.segment_bytes -= nbytes

    def detached(self) -> None:
        with self._lock:
            self.detaches += 1

    def fallback(self) -> None:
        with self._lock:
            self.attach_fallbacks += 1

    def describe(self) -> Dict[str, int]:
        with self._lock:
            return {
                "prepares": self.prepares,
                "attaches": self.attaches,
                "unlinks": self.unlinks,
                "detaches": self.detaches,
                "attach_fallbacks": self.attach_fallbacks,
                "segment_bytes": self.segment_bytes,
            }


SHM_STATS = _ShmCounters()


def shm_stats() -> Dict[str, int]:
    """This process's shared-segment counters (JSON-friendly)."""
    return SHM_STATS.describe()


# --------------------------------------------------------------------------- #
# manifest: the picklable identity of one published segment
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedArraySpec:
    """Where one numeric array lives inside the segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedGraphManifest:
    """Everything a process needs to attach a published prepared graph.

    Entirely picklable — names, dtypes, offsets — never buffers.  This is
    what :class:`SharedPreparedGraph` pickles as, and what
    :class:`~repro.service.executors.DatasetExecSpec` carries to workers.
    """

    segment: str
    fingerprint: Optional[str]
    matrix_shape: Tuple[int, int]
    arrays: Tuple[SharedArraySpec, ...]
    nodes_offset: int
    nodes_length: int
    total_bytes: int

    def spec(self, key: str) -> SharedArraySpec:
        for entry in self.arrays:
            if entry.key == key:
                return entry
        raise GraphError(f"shared segment manifest has no array {key!r}")


def _read_only_view(buffer, spec: SharedArraySpec) -> np.ndarray:
    array = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=buffer, offset=spec.offset
    )
    array.flags.writeable = False
    return array


def _csr_from_views(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, shape
) -> sparse.csr_matrix:
    matrix = sparse.csr_matrix((data, indices, indptr), shape=shape, copy=False)
    # The buffers come from a canonical ``coo.tocsr()`` (sorted, duplicate
    # free); assert that invariant up front so no kernel ever triggers a
    # lazy ``sort_indices`` write into the read-only segment.
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True
    return matrix


def _csr_from_views_raw(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, shape
) -> sparse.csr_matrix:
    """CSR over shared views with *honest* flags (buffers shipped verbatim).

    Matrix segments carry whatever stored order the publisher's slice had
    — possibly unsorted.  Declaring it sorted would let an attaching
    kernel take a sorted-only code path over unsorted data; leaving the
    flags unset keeps every consumer on order-preserving paths (the only
    one the shard workers use is ``matrix @ rank``, which is one).
    """
    return sparse.csr_matrix((data, indices, indptr), shape=shape, copy=False)


def _csc_from_views(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, shape
) -> sparse.csc_matrix:
    matrix = sparse.csc_matrix((data, indices, indptr), shape=shape, copy=False)
    # Published from a canonical ``tocsc()`` — same invariant as the CSR
    # views: declare it so nothing writes into the read-only segment.
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True
    return matrix


def _release_segment(shm, owner: bool, nbytes: int, state: Dict[str, bool]) -> None:
    """Idempotent close(+unlink): shared by ``release`` and the finalizer."""
    if state.get("released"):
        return
    state["released"] = True
    if owner:
        try:
            # Defensive: unlink()'s own unregister must find its entry in
            # the shared tracker cache even if something external dropped
            # it (the cache is a set — re-adding an existing entry is a
            # no-op).
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(
                    getattr(shm, "_name", shm.name), "shared_memory"
                )
            except Exception:  # pragma: no cover - tracker variants
                pass
            shm.unlink()
            SHM_STATS.unlinked(nbytes)
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        except Exception:  # pragma: no cover - platform quirks
            logger.warning("failed to unlink shared segment %s", shm.name,
                           exc_info=True)
    try:
        shm.close()
    except BufferError:
        # Arrays over this mapping are still referenced somewhere; the
        # mapping lives until they die.  Unlinking above already removed
        # the name, so nothing leaks — this close is best-effort.
        pass
    if not owner:
        SHM_STATS.detached()


class SharedPreparedGraph(PreparedGraph):
    """A :class:`PreparedGraph` whose numeric buffers live in shared memory.

    Construction goes through :meth:`publish` (copy buffers into a fresh
    segment; this process owns its lifetime) or :meth:`attach` (map an
    existing segment zero-copy).  Pickling an instance serialises only the
    manifest: the receiving process re-attaches instead of copying —
    which is the whole point.
    """

    def __init__(
        self,
        index: VertexIndex,
        adjacency: sparse.csr_matrix,
        fingerprint: Optional[str],
        manifest: SharedGraphManifest,
        shm,
        owner: bool,
        degrees: Optional[np.ndarray] = None,
        transition: Optional[sparse.csr_matrix] = None,
        transition_csc: Optional[sparse.csc_matrix] = None,
        reverse_transition: Optional[sparse.csr_matrix] = None,
    ) -> None:
        super().__init__(index, adjacency, fingerprint=fingerprint)
        self._degrees = degrees
        self._transition = transition
        # Derived views (what the exact solver factorises / reverse walks
        # iterate) ride the same segment, so workers never rebuild them.
        self._transition_csc = transition_csc
        self._reverse_transition = reverse_transition
        self.manifest = manifest
        self._shm = shm
        self._owner = owner
        self._release_state: Dict[str, bool] = {"released": False}
        # Leak-proofing: if the owning registry drops this view without an
        # explicit release (crash path, test teardown), the finalizer still
        # unlinks the segment.  The callback closes over the SharedMemory
        # object and a tiny state dict, never over ``self``.
        self._finalizer = weakref.finalize(
            self, _release_segment, shm, owner, manifest.total_bytes,
            self._release_state,
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def publish(cls, prepared: PreparedGraph) -> "SharedPreparedGraph":
        """Copy one prepared graph's buffers into a fresh shared segment.

        The returned instance *replaces* the input for the publisher: its
        adjacency/degrees/transition are views over the segment, so the
        parent pays the copy once and holds no private duplicate.
        """
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise GraphError("shared memory is not available on this platform")
        adjacency = prepared.adjacency.tocsr()
        adjacency.sum_duplicates()
        adjacency.sort_indices()
        degrees = prepared.degrees
        transition = prepared.transition
        transition_csc = prepared.transition_csc
        reverse_transition = prepared.reverse_transition
        nodes_blob = pickle.dumps(
            prepared.index.nodes(), protocol=pickle.HIGHEST_PROTOCOL
        )
        sources: Dict[str, np.ndarray] = {
            "adj_data": adjacency.data,
            "adj_indices": adjacency.indices,
            "adj_indptr": adjacency.indptr,
            "degrees": degrees,
            "w_data": transition.data,
            "w_indices": transition.indices,
            "w_indptr": transition.indptr,
            # Derived views (PR 8 follow-up): the CSC the exact solver
            # factorises and the reverse-walk CSR, published once so every
            # attaching worker shares them zero-copy too.
            "wc_data": transition_csc.data,
            "wc_indices": transition_csc.indices,
            "wc_indptr": transition_csc.indptr,
            "wr_data": reverse_transition.data,
            "wr_indices": reverse_transition.indices,
            "wr_indptr": reverse_transition.indptr,
        }
        specs = []
        offset = 0
        for key, array in sources.items():
            array = np.ascontiguousarray(array)
            sources[key] = array
            offset = _align(offset)
            specs.append(
                SharedArraySpec(
                    key=key, dtype=array.dtype.str, shape=array.shape,
                    offset=offset,
                )
            )
            offset += array.nbytes
        nodes_offset = _align(offset)
        total = nodes_offset + len(nodes_blob)
        shm = _shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            for spec, array in zip(specs, sources.values()):
                target = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=shm.buf,
                    offset=spec.offset,
                )
                target[...] = array
            shm.buf[nodes_offset:nodes_offset + len(nodes_blob)] = nodes_blob
        except Exception:
            shm.close()
            shm.unlink()
            raise
        manifest = SharedGraphManifest(
            segment=shm.name,
            fingerprint=prepared.fingerprint,
            matrix_shape=tuple(adjacency.shape),
            arrays=tuple(specs),
            nodes_offset=nodes_offset,
            nodes_length=len(nodes_blob),
            total_bytes=total,
        )
        SHM_STATS.published(total)
        return cls._wrap(manifest, shm, owner=True, index=prepared.index)

    @classmethod
    def attach(cls, manifest: SharedGraphManifest) -> "SharedPreparedGraph":
        """Map an already-published segment zero-copy (worker side)."""
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise GraphError("shared memory is not available on this platform")
        try:
            shm = _shared_memory.SharedMemory(name=manifest.segment)
        except (FileNotFoundError, OSError) as error:
            raise GraphError(
                f"shared prepared segment {manifest.segment!r} is gone "
                f"(retired or never published here): {error}"
            ) from error
        # The open auto-registered with the (shared) resource tracker;
        # deliberately left tracked — see the module docstring.
        try:
            view = cls._wrap(manifest, shm, owner=False, index=None)
        except Exception:
            shm.close()
            raise
        SHM_STATS.attached()
        return view

    @classmethod
    def _wrap(
        cls,
        manifest: SharedGraphManifest,
        shm,
        owner: bool,
        index: Optional[VertexIndex],
    ) -> "SharedPreparedGraph":
        buffer = shm.buf
        arrays = {spec.key: _read_only_view(buffer, spec) for spec in manifest.arrays}
        if index is None:
            nodes = pickle.loads(
                bytes(
                    buffer[
                        manifest.nodes_offset:
                        manifest.nodes_offset + manifest.nodes_length
                    ]
                )
            )
            index = VertexIndex(nodes)
        adjacency = _csr_from_views(
            arrays["adj_data"], arrays["adj_indices"], arrays["adj_indptr"],
            manifest.matrix_shape,
        )
        transition = _csr_from_views(
            arrays["w_data"], arrays["w_indices"], arrays["w_indptr"],
            manifest.matrix_shape,
        )
        # Old manifests (pre derived-view publishing) lack these arrays;
        # the lazy PreparedGraph properties rebuild them locally then.
        transition_csc = None
        if "wc_data" in arrays:
            transition_csc = _csc_from_views(
                arrays["wc_data"], arrays["wc_indices"], arrays["wc_indptr"],
                manifest.matrix_shape,
            )
        reverse_transition = None
        if "wr_data" in arrays:
            reverse_transition = _csr_from_views(
                arrays["wr_data"], arrays["wr_indices"], arrays["wr_indptr"],
                manifest.matrix_shape,
            )
        return cls(
            index=index,
            adjacency=adjacency,
            fingerprint=manifest.fingerprint,
            manifest=manifest,
            shm=shm,
            owner=owner,
            degrees=arrays["degrees"],
            transition=transition,
            transition_csc=transition_csc,
            reverse_transition=reverse_transition,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def owner(self) -> bool:
        """Whether this process published (and must unlink) the segment."""
        return self._owner

    @property
    def released(self) -> bool:
        return self._release_state["released"]

    @property
    def segment_bytes(self) -> int:
        return self.manifest.total_bytes

    def release(self) -> None:
        """Retire the segment: unlink (owner) / close (attachment).

        Idempotent.  Called by the prepared-view cache on eviction and
        invalidation and by the registry at drain; attached processes call
        it when a warm dataset context is replaced.  Unlinking never tears
        a live attachment — POSIX keeps the memory until the last mapping
        closes.
        """
        self._finalizer()

    # ------------------------------------------------------------------ #
    # pickling: manifest only — the receiver attaches
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        return (SharedPreparedGraph.attach, (self.manifest,))

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"<SharedPreparedGraph {role} segment={self.manifest.segment} "
            f"{len(self.index)} vertices, {self.adjacency.nnz} stored entries, "
            f"{self.manifest.total_bytes} bytes>"
        )


def manifest_of(view: Any) -> Optional[SharedGraphManifest]:
    """The manifest of a live (unreleased) shared view, else ``None``."""
    if isinstance(view, SharedPreparedGraph) and not view.released:
        return view.manifest
    return None


# --------------------------------------------------------------------------- #
# generic single-matrix segments (per-shard transition row slices)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedMatrixManifest:
    """Picklable identity of one published CSR matrix segment."""

    segment: str
    shape: Tuple[int, int]
    arrays: Tuple[SharedArraySpec, ...]
    total_bytes: int


class SharedMatrixSegment:
    """One CSR matrix resident in shared memory.

    The sharded backend publishes each shard's row slice of the parent
    transition matrix (``W[rows_s, :]``) through one of these, so shard
    workers attach their matvec operand zero-copy instead of unpickling
    an O(nnz) payload per warm.  Same lifecycle discipline as
    :class:`SharedPreparedGraph`: the publisher owns unlink, attachments
    only close, and a ``weakref.finalize`` guard backstops both.
    """

    def __init__(self, matrix: sparse.csr_matrix, manifest: SharedMatrixManifest,
                 shm, owner: bool) -> None:
        self.matrix = matrix
        self.manifest = manifest
        self._shm = shm
        self._owner = owner
        self._release_state: Dict[str, bool] = {"released": False}
        self._finalizer = weakref.finalize(
            self, _release_segment, shm, owner, manifest.total_bytes,
            self._release_state,
        )

    @classmethod
    def publish(cls, matrix: sparse.csr_matrix) -> "SharedMatrixSegment":
        """Copy ``matrix``'s CSR buffers into a fresh segment, verbatim.

        Deliberately NO canonicalisation (``sort_indices`` would reorder
        each row's stored nonzeros — and the stored order is the byte
        parity contract: a shard matvec must accumulate every output row
        in exactly the order the parent's monolithic matrix would).  It
        also must not mutate the caller's matrix, which the parent keeps
        for re-warms.
        """
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise GraphError("shared memory is not available on this platform")
        if not sparse.isspmatrix_csr(matrix):
            matrix = matrix.tocsr()
        sources: Dict[str, np.ndarray] = {
            "data": matrix.data,
            "indices": matrix.indices,
            "indptr": matrix.indptr,
        }
        specs = []
        offset = 0
        for key, array in sources.items():
            array = np.ascontiguousarray(array)
            sources[key] = array
            offset = _align(offset)
            specs.append(SharedArraySpec(
                key=key, dtype=array.dtype.str, shape=array.shape,
                offset=offset,
            ))
            offset += array.nbytes
        shm = _shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            for spec, array in zip(specs, sources.values()):
                target = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=shm.buf,
                    offset=spec.offset,
                )
                target[...] = array
        except Exception:
            shm.close()
            shm.unlink()
            raise
        manifest = SharedMatrixManifest(
            segment=shm.name,
            shape=tuple(matrix.shape),
            arrays=tuple(specs),
            total_bytes=offset,
        )
        SHM_STATS.published(offset)
        views = {spec.key: _read_only_view(shm.buf, spec) for spec in specs}
        shared = _csr_from_views_raw(
            views["data"], views["indices"], views["indptr"], manifest.shape
        )
        return cls(shared, manifest, shm, owner=True)

    @classmethod
    def attach(cls, manifest: SharedMatrixManifest) -> "SharedMatrixSegment":
        """Map an already-published matrix segment zero-copy."""
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise GraphError("shared memory is not available on this platform")
        try:
            shm = _shared_memory.SharedMemory(name=manifest.segment)
        except (FileNotFoundError, OSError) as error:
            raise GraphError(
                f"shared matrix segment {manifest.segment!r} is gone "
                f"(retired or never published here): {error}"
            ) from error
        try:
            views = {
                spec.key: _read_only_view(shm.buf, spec)
                for spec in manifest.arrays
            }
            matrix = _csr_from_views_raw(
                views["data"], views["indices"], views["indptr"],
                manifest.shape,
            )
        except Exception:
            shm.close()
            raise
        SHM_STATS.attached()
        return cls(matrix, manifest, shm, owner=False)

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def released(self) -> bool:
        return self._release_state["released"]

    def release(self) -> None:
        """Retire the segment (idempotent; unlink for owner, close else)."""
        self._finalizer()

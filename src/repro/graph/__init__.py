"""Graph substrate: structures, generators, IO, traversal, validation.

This package is the foundation the rest of the GMine reproduction builds on.
The public surface re-exported here is what examples and downstream users
should import; submodules remain importable for finer-grained access.
"""

from .graph import DiGraph, Graph, NodeId, graph_from_adjacency, union
from .generators import (
    barabasi_albert,
    complete_graph,
    connected_caveman,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from .io import (
    graph_from_dict,
    graph_to_dict,
    load_graph_auto,
    read_edge_list,
    read_json,
    write_adjacency_text,
    write_edge_list,
    write_json,
)
from .matrix import (
    PreparedGraph,
    VertexIndex,
    adjacency_matrix,
    combinatorial_laplacian,
    degree_vector,
    exact_rwr_factor,
    normalized_laplacian,
    restart_vector,
    transition_matrix,
)
from .shm import (
    SharedGraphManifest,
    SharedPreparedGraph,
    shared_memory_available,
    shm_stats,
)
from .traversal import (
    bfs_distances,
    bfs_order,
    bfs_tree,
    dfs_order,
    dijkstra,
    eccentricity,
    shortest_path_hops,
    shortest_weighted_path,
)
from .validation import assert_valid_graph, graphs_equal, validate_digraph, validate_graph

__all__ = [
    "DiGraph",
    "Graph",
    "NodeId",
    "PreparedGraph",
    "SharedGraphManifest",
    "SharedPreparedGraph",
    "VertexIndex",
    "adjacency_matrix",
    "assert_valid_graph",
    "barabasi_albert",
    "bfs_distances",
    "bfs_order",
    "bfs_tree",
    "combinatorial_laplacian",
    "complete_graph",
    "connected_caveman",
    "cycle_graph",
    "degree_vector",
    "dfs_order",
    "dijkstra",
    "eccentricity",
    "erdos_renyi",
    "exact_rwr_factor",
    "graph_from_adjacency",
    "graph_from_dict",
    "graph_to_dict",
    "graphs_equal",
    "grid_2d",
    "load_graph_auto",
    "normalized_laplacian",
    "path_graph",
    "read_edge_list",
    "read_json",
    "restart_vector",
    "shared_memory_available",
    "shm_stats",
    "shortest_path_hops",
    "shortest_weighted_path",
    "star_graph",
    "stochastic_block_model",
    "transition_matrix",
    "union",
    "validate_digraph",
    "validate_graph",
    "watts_strogatz",
    "write_adjacency_text",
    "write_edge_list",
    "write_json",
]

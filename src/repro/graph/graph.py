"""Core undirected weighted graph structure.

GMine operates on large, sparse, undirected graphs (the DBLP co-authorship
network in the paper).  This module provides the in-memory substrate that
every other subsystem builds on: an adjacency-dictionary graph with

* integer-or-hashable vertex ids,
* optional per-node attribute dictionaries (author names, years, ...),
* weighted edges (collaboration counts),
* O(1) neighbour lookup and O(deg) neighbourhood iteration,
* cheap induced-subgraph construction (used for every G-Tree leaf).

The class intentionally mirrors a small subset of the :mod:`networkx` API
(``add_edge``, ``neighbors``, ``degree`` ...) so tests can cross-validate
against networkx, but it stores only what GMine needs and is considerably
lighter weight.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import EdgeNotFoundError, GraphError, NodeNotFoundError

NodeId = Hashable
EdgeTuple = Tuple[NodeId, NodeId]


class Graph:
    """An undirected, weighted graph stored as adjacency dictionaries.

    Parameters
    ----------
    name:
        Optional human-readable name carried through subgraphs and stores.

    Notes
    -----
    Self loops are allowed but rarely produced by the generators; parallel
    edges are not supported — adding an existing edge accumulates weight
    when ``accumulate=True`` (the DBLP convention: one co-authorship per
    shared paper) or overwrites the weight otherwise.
    """

    directed = False

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._adj: Dict[NodeId, Dict[NodeId, float]] = {}
        self._node_attrs: Dict[NodeId, Dict[str, Any]] = {}
        self._edge_attrs: Dict[EdgeTuple, Dict[str, Any]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: NodeId, **attrs: Any) -> None:
        """Add ``node`` to the graph, merging ``attrs`` into its attributes."""
        if node not in self._adj:
            self._adj[node] = {}
        if attrs:
            self._node_attrs.setdefault(node, {}).update(attrs)

    def add_nodes_from(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        weight: float = 1.0,
        accumulate: bool = False,
        **attrs: Any,
    ) -> None:
        """Add the undirected edge ``(u, v)``.

        Missing endpoints are created.  If the edge already exists the weight
        is replaced, or added to when ``accumulate`` is true.
        """
        self.add_node(u)
        self.add_node(v)
        existed = v in self._adj[u]
        if existed and accumulate:
            new_weight = self._adj[u][v] + weight
        else:
            new_weight = weight
        self._adj[u][v] = new_weight
        self._adj[v][u] = new_weight
        if not existed:
            self._num_edges += 1
        if attrs:
            self._edge_attrs.setdefault(self._edge_key(u, v), {}).update(attrs)

    def add_edges_from(
        self, edges: Iterable[Tuple], accumulate: bool = False
    ) -> None:
        """Add edges given as ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                self.add_edge(u, v, accumulate=accumulate)
            elif len(edge) == 3:
                u, v, w = edge
                self.add_edge(u, v, weight=float(w), accumulate=accumulate)
            else:
                raise GraphError(f"edge tuple must have 2 or 3 items, got {edge!r}")

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``(u, v)``; raise :class:`EdgeNotFoundError` if absent."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        if u != v:
            del self._adj[v][u]
        self._edge_attrs.pop(self._edge_key(u, v), None)
        self._num_edges -= 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        self._node_attrs.pop(node, None)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def has_node(self, node: NodeId) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return whether the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over the neighbours of ``node``."""
        try:
            return iter(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: NodeId) -> int:
        """Return the number of neighbours of ``node`` (self loops count once)."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def weighted_degree(self, node: NodeId) -> float:
        """Return the sum of incident edge weights of ``node``."""
        try:
            return float(sum(self._adj[node].values()))
        except KeyError:
            raise NodeNotFoundError(node) from None

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Return the weight of edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._adj[u][v]

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over the vertex ids."""
        return iter(self._adj)

    def content_digest(self) -> str:
        """Deterministic content hash of the graph: nodes, attrs, edges.

        Two graphs with the same vertex set, vertex/edge attributes and
        weighted edge multiset produce the same digest regardless of
        insertion order.  Used by the G-Tree fingerprint so the service
        result cache distinguishes trees whose hierarchy is identical but
        whose leaf subgraphs differ (e.g. an edge weight changed inside a
        community).
        """
        digest = hashlib.sha256()
        for node in sorted(self._adj, key=repr):
            attrs = self._node_attrs.get(node, {})
            digest.update(
                repr((node, sorted(attrs.items(), key=lambda kv: str(kv[0])))).encode("utf-8")
            )
        # Each undirected edge is hashed in a canonical orientation: edges()
        # yields whichever endpoint adjacency iteration reached first, and
        # that order is an artifact of insertion history — a copy of this
        # graph may yield (v, u) where this one yields (u, v).
        canonical = (
            (u, v, w) if repr(u) <= repr(v) else (v, u, w)
            for u, v, w in self.edges()
        )
        for u, v, w in sorted(canonical, key=lambda edge: (repr(edge[0]), repr(edge[1]))):
            attrs = self._edge_attrs.get(self._edge_key(u, v), {})
            digest.update(
                repr((u, v, float(w), sorted(attrs.items(), key=lambda kv: str(kv[0])))).encode("utf-8")
            )
        return digest.hexdigest()

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """Iterate over edges as ``(u, v, weight)``, each undirected edge once."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = self._edge_key(u, v)
                if key in seen:
                    continue
                seen.add(key)
                yield u, v, w

    def node_attrs(self, node: NodeId) -> Dict[str, Any]:
        """Return the (mutable) attribute dict of ``node``."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return self._node_attrs.setdefault(node, {})

    def edge_attrs(self, u: NodeId, v: NodeId) -> Dict[str, Any]:
        """Return the (mutable) attribute dict of edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._edge_attrs.setdefault(self._edge_key(u, v), {})

    def get_node_attr(self, node: NodeId, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` of ``node`` or ``default`` when missing."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return self._node_attrs.get(node, {}).get(key, default)

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def total_edge_weight(self) -> float:
        """Return the sum of all edge weights."""
        return float(sum(w for _, _, w in self.edges()))

    def density(self) -> float:
        """Return the edge density ``2m / (n (n - 1))`` (0 for n < 2)."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    # ------------------------------------------------------------------ #
    # derived structures
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: Iterable[NodeId], name: str = "") -> "Graph":
        """Return the induced subgraph on ``nodes`` as a new :class:`Graph`.

        Node and edge attributes of retained elements are shallow-copied.
        Unknown node ids are ignored, which lets callers pass community
        membership lists that may contain stale entries.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = Graph(name=name or f"{self.name}::subgraph")
        for node in keep:
            sub.add_node(node, **self._node_attrs.get(node, {}))
        for node in keep:
            for neighbor, weight in self._adj[node].items():
                if neighbor in keep and not sub.has_edge(node, neighbor):
                    sub.add_edge(node, neighbor, weight=weight)
                    attrs = self._edge_attrs.get(self._edge_key(node, neighbor))
                    if attrs:
                        sub.edge_attrs(node, neighbor).update(attrs)
        return sub

    def induced_ordered(self, nodes: Iterable[NodeId], name: str = "") -> "Graph":
        """Induced subgraph whose iteration orders mirror *this* graph's.

        :meth:`subgraph` rebuilds adjacency through ``add_edge``, so the
        result's per-node neighbour order is an artifact of the replay.
        Shard slices need something stronger: a slice whose ``nodes()``,
        ``neighbors()`` and ``edges()`` sequences are exactly this graph's
        own sequences filtered to the kept set.  With that property, any
        order-sensitive construction performed on the slice — a
        ``subgraph`` over community members, an ``edges()`` re-induction —
        reproduces what the same construction yields on the parent, which
        is what makes sharded execution byte-identical to unsharded.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = Graph(name=name or f"{self.name}::induced")
        for node, nbrs in self._adj.items():
            if node not in keep:
                continue
            sub._adj[node] = {v: w for v, w in nbrs.items() if v in keep}
            attrs = self._node_attrs.get(node)
            if attrs:
                sub._node_attrs[node] = dict(attrs)
        seen = set()
        for node, nbrs in sub._adj.items():
            for neighbor in nbrs:
                key = self._edge_key(node, neighbor)
                if key not in seen:
                    seen.add(key)
                    sub._num_edges += 1
                    attrs = self._edge_attrs.get(key)
                    if attrs:
                        sub._edge_attrs[key] = dict(attrs)
        return sub

    def copy(self) -> "Graph":
        """Return a deep-enough copy (adjacency rebuilt, attrs shallow-copied)."""
        clone = self.subgraph(self.nodes(), name=self.name)
        return clone

    def relabeled(self) -> Tuple["Graph", Dict[NodeId, int], List[NodeId]]:
        """Return ``(graph, mapping, inverse)`` with vertices relabelled 0..n-1.

        Many numeric kernels (partitioning, RWR) want contiguous integer ids;
        this helper produces them deterministically in insertion order.
        """
        inverse = list(self._adj)
        mapping = {node: index for index, node in enumerate(inverse)}
        relabeled = Graph(name=self.name)
        for node in inverse:
            relabeled.add_node(mapping[node], **self._node_attrs.get(node, {}))
        for u, v, w in self.edges():
            relabeled.add_edge(mapping[u], mapping[v], weight=w)
        return relabeled, mapping, inverse

    def adjacency_dict(self) -> Dict[NodeId, Dict[NodeId, float]]:
        """Return a copy of the adjacency structure (node -> neighbour -> weight)."""
        return {node: dict(nbrs) for node, nbrs in self._adj.items()}

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} with {self.num_nodes} nodes "
            f"and {self.num_edges} edges>"
        )

    @staticmethod
    def _edge_key(u: NodeId, v: NodeId) -> EdgeTuple:
        """Return a canonical (order-independent) key for an undirected edge."""
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            # Mixed/unorderable id types: fall back to repr ordering.
            return (u, v) if repr(u) <= repr(v) else (v, u)


class DiGraph:
    """A directed, weighted graph used for PageRank and strong components.

    The GMine paper computes strongly connected components and PageRank on
    demand for the subgraph under inspection; both need edge direction.  The
    co-authorship network itself is undirected, so :class:`DiGraph` is a thin
    companion — conversions in both directions are provided.
    """

    directed = True

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._succ: Dict[NodeId, Dict[NodeId, float]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, float]] = {}
        self._num_edges = 0

    def add_node(self, node: NodeId) -> None:
        """Add ``node`` (no-op if already present)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Add (or re-weight) the directed edge ``u -> v``."""
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._num_edges += 1
        self._succ[u][v] = weight
        self._pred[v][u] = weight

    def has_node(self, node: NodeId) -> bool:
        """Return whether ``node`` is present."""
        return node in self._succ

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return whether the directed edge ``u -> v`` exists."""
        return u in self._succ and v in self._succ[u]

    def successors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over out-neighbours of ``node``."""
        try:
            return iter(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over in-neighbours of ``node``."""
        try:
            return iter(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_degree(self, node: NodeId) -> int:
        """Return the number of out-neighbours of ``node``."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def in_degree(self, node: NodeId) -> int:
        """Return the number of in-neighbours of ``node``."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over vertex ids."""
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """Iterate over directed edges as ``(u, v, weight)``."""
        for u, nbrs in self._succ.items():
            for v, w in nbrs.items():
                yield u, v, w

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    def to_undirected(self) -> Graph:
        """Collapse direction; anti-parallel edges keep the larger weight."""
        graph = Graph(name=self.name)
        for node in self.nodes():
            graph.add_node(node)
        for u, v, w in self.edges():
            if graph.has_edge(u, v):
                graph.add_edge(u, v, weight=max(w, graph.edge_weight(u, v)))
            else:
                graph.add_edge(u, v, weight=w)
        return graph

    @classmethod
    def from_undirected(cls, graph: Graph) -> "DiGraph":
        """Return a digraph with both orientations of every undirected edge."""
        digraph = cls(name=graph.name)
        for node in graph.nodes():
            digraph.add_node(node)
        for u, v, w in graph.edges():
            digraph.add_edge(u, v, weight=w)
            digraph.add_edge(v, u, weight=w)
        return digraph

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._succ)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<DiGraph{label} with {self.num_nodes} nodes "
            f"and {self.num_edges} edges>"
        )


def graph_from_adjacency(
    adjacency: Mapping[NodeId, Mapping[NodeId, float]], name: str = ""
) -> Graph:
    """Build a :class:`Graph` from a node -> neighbour -> weight mapping."""
    graph = Graph(name=name)
    for node, nbrs in adjacency.items():
        graph.add_node(node)
        for neighbor, weight in nbrs.items():
            if not graph.has_edge(node, neighbor):
                graph.add_edge(node, neighbor, weight=weight)
    return graph


def union(graphs: Iterable[Graph], name: str = "union") -> Graph:
    """Return the union of several graphs (weights accumulate on shared edges)."""
    merged = Graph(name=name)
    for graph in graphs:
        for node in graph.nodes():
            merged.add_node(node, **graph.node_attrs(node))
        for u, v, w in graph.edges():
            merged.add_edge(u, v, weight=w, accumulate=merged.has_edge(u, v))
    return merged

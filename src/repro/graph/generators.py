"""Synthetic graph generators.

The GMine paper demonstrates on the DBLP co-authorship graph.  That snapshot
is not redistributable here, so the reproduction relies on synthetic graphs
whose structure exercises the same code paths: community structure for the
partitioner and the G-Tree, skewed degrees for the connection-subgraph
extractor, and arbitrary scale for the scalability benchmarks.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import GraphError
from .graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically."""
    return random.Random(seed if seed is not None else 0)


def erdos_renyi(n: int, p: float, seed: Optional[int] = None, name: str = "") -> Graph:
    """Return a G(n, p) random graph.

    Uses the skip-ahead geometric sampling trick so the cost is proportional
    to the number of generated edges rather than ``n**2``.
    """
    if n < 0:
        raise GraphError("erdos_renyi requires n >= 0")
    if not 0.0 <= p <= 1.0:
        raise GraphError("erdos_renyi requires 0 <= p <= 1")
    rng = _rng(seed)
    graph = Graph(name=name or f"er_{n}_{p}")
    graph.add_nodes_from(range(n))
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    # Geometric skipping over the upper-triangular edge list.
    import math

    log_q = math.log(1.0 - p)
    if log_q == 0.0:
        # p is so small that 1 - p rounds to 1.0; no edges are expected.
        return graph
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def barabasi_albert(
    n: int, m: int, seed: Optional[int] = None, name: str = ""
) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Every new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to their degree, giving the heavy-tailed degree
    distribution characteristic of co-authorship networks.
    """
    if m < 1 or n < m + 1:
        raise GraphError("barabasi_albert requires n >= m + 1 and m >= 1")
    rng = _rng(seed)
    graph = Graph(name=name or f"ba_{n}_{m}")
    # Start from a star on m + 1 vertices so every vertex has degree >= 1.
    graph.add_nodes_from(range(m + 1))
    repeated: List[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new, target)
            repeated.extend((new, target))
    return graph


def stochastic_block_model(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: Optional[int] = None,
    name: str = "",
) -> Tuple[Graph, List[int]]:
    """Return ``(graph, membership)`` drawn from a planted-partition SBM.

    ``membership[v]`` is the index of the block vertex ``v`` was planted in,
    which tests use as ground truth for the partitioner.
    """
    if not sizes:
        raise GraphError("stochastic_block_model requires at least one block")
    if not (0.0 <= p_in <= 1.0 and 0.0 <= p_out <= 1.0):
        raise GraphError("stochastic_block_model requires probabilities in [0, 1]")
    rng = _rng(seed)
    graph = Graph(name=name or "sbm")
    membership: List[int] = []
    for block, size in enumerate(sizes):
        membership.extend([block] * size)
    n = len(membership)
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if membership[u] == membership[v] else p_out
            if p > 0.0 and rng.random() < p:
                graph.add_edge(u, v)
    return graph, membership


def connected_caveman(
    num_cliques: int, clique_size: int, seed: Optional[int] = None, name: str = ""
) -> Graph:
    """Return a connected caveman graph: cliques chained in a ring.

    A textbook extreme of community structure — useful for asserting that the
    partitioner recovers an obviously right answer.
    """
    if num_cliques < 1 or clique_size < 2:
        raise GraphError("connected_caveman requires num_cliques >= 1, clique_size >= 2")
    graph = Graph(name=name or f"caveman_{num_cliques}_{clique_size}")
    n = num_cliques * clique_size
    graph.add_nodes_from(range(n))
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(base + i, base + j)
    # Rewire one edge per clique to the next clique to connect the ring.
    if num_cliques > 1:
        for c in range(num_cliques):
            u = c * clique_size
            v = ((c + 1) % num_cliques) * clique_size + 1
            graph.add_edge(u, v)
    return graph


def grid_2d(rows: int, cols: int, name: str = "") -> Graph:
    """Return a ``rows x cols`` 2-D grid graph (4-neighbourhood)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid_2d requires rows >= 1 and cols >= 1")
    graph = Graph(name=name or f"grid_{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_node(node)
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def path_graph(n: int, name: str = "") -> Graph:
    """Return the path graph on ``n`` vertices."""
    graph = Graph(name=name or f"path_{n}")
    graph.add_nodes_from(range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int, name: str = "") -> Graph:
    """Return the cycle graph on ``n`` vertices (n >= 3)."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    graph = path_graph(n, name=name or f"cycle_{n}")
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(n_leaves: int, name: str = "") -> Graph:
    """Return a star with hub ``0`` and ``n_leaves`` leaves."""
    graph = Graph(name=name or f"star_{n_leaves}")
    graph.add_node(0)
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(n: int, name: str = "") -> Graph:
    """Return the complete graph on ``n`` vertices."""
    graph = Graph(name=name or f"complete_{n}")
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def watts_strogatz(
    n: int, k: int, p: float, seed: Optional[int] = None, name: str = ""
) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    Each vertex is joined to its ``k`` nearest ring neighbours, then each
    edge is rewired with probability ``p``.
    """
    if k % 2 != 0 or k < 2:
        raise GraphError("watts_strogatz requires an even k >= 2")
    if n <= k:
        raise GraphError("watts_strogatz requires n > k")
    rng = _rng(seed)
    graph = Graph(name=name or f"ws_{n}_{k}_{p}")
    graph.add_nodes_from(range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(u, (u + offset) % n)
    if p <= 0.0:
        return graph
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p and graph.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not graph.has_edge(u, w)]
                if candidates:
                    graph.remove_edge(u, v)
                    graph.add_edge(u, rng.choice(candidates))
    return graph

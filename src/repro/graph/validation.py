"""Structural validation helpers for graphs.

These checks back the property-based tests and are also run by the CLI's
``gmine stats --validate`` before building a G-Tree, catching malformed
inputs (asymmetric adjacency, negative weights, dangling references) early
with actionable messages.
"""

from __future__ import annotations

from typing import List

from ..errors import GraphError
from .graph import DiGraph, Graph


def validate_graph(graph: Graph, allow_self_loops: bool = True) -> List[str]:
    """Return a list of human-readable problems found in ``graph``.

    An empty list means the graph passed every check.  Checks:

    * adjacency symmetry (u in adj[v] iff v in adj[u], same weight),
    * non-negative, finite edge weights,
    * edge count bookkeeping matches the adjacency structure,
    * optional self-loop prohibition.
    """
    problems: List[str] = []
    adjacency = graph.adjacency_dict()
    seen_edges = 0
    for u, nbrs in adjacency.items():
        for v, w in nbrs.items():
            if v not in adjacency:
                problems.append(f"edge ({u!r}, {v!r}) references unknown vertex {v!r}")
                continue
            if u not in adjacency[v]:
                problems.append(f"asymmetric edge: ({u!r}, {v!r}) present, reverse missing")
            elif adjacency[v][u] != w:
                problems.append(
                    f"asymmetric weight on ({u!r}, {v!r}): {w} vs {adjacency[v][u]}"
                )
            if w < 0:
                problems.append(f"negative weight {w} on edge ({u!r}, {v!r})")
            if w != w or w in (float("inf"), float("-inf")):
                problems.append(f"non-finite weight {w} on edge ({u!r}, {v!r})")
            if u == v:
                if not allow_self_loops:
                    problems.append(f"self loop on vertex {u!r}")
                seen_edges += 2  # counted once below when halving
            else:
                seen_edges += 1
    if seen_edges // 2 != graph.num_edges:
        problems.append(
            f"edge count mismatch: adjacency holds {seen_edges // 2}, "
            f"graph reports {graph.num_edges}"
        )
    return problems


def assert_valid_graph(graph: Graph, allow_self_loops: bool = True) -> None:
    """Raise :class:`GraphError` listing every problem found (if any)."""
    problems = validate_graph(graph, allow_self_loops=allow_self_loops)
    if problems:
        raise GraphError(
            "graph failed validation:\n  - " + "\n  - ".join(problems)
        )


def validate_digraph(digraph: DiGraph) -> List[str]:
    """Return problems found in a :class:`DiGraph` (successor/predecessor sync)."""
    problems: List[str] = []
    for u, v, w in digraph.edges():
        if not digraph.has_node(v):
            problems.append(f"edge ({u!r} -> {v!r}) references unknown vertex {v!r}")
            continue
        if u not in set(digraph.predecessors(v)):
            problems.append(f"edge ({u!r} -> {v!r}) missing from predecessor index")
    return problems


def graphs_equal(a: Graph, b: Graph, check_weights: bool = True) -> bool:
    """Return whether two graphs have identical vertex and edge sets.

    Attributes are ignored; weights are compared exactly when
    ``check_weights`` is true.
    """
    if set(a.nodes()) != set(b.nodes()):
        return False
    if a.num_edges != b.num_edges:
        return False
    for u, v, w in a.edges():
        if not b.has_edge(u, v):
            return False
        if check_weights and b.edge_weight(u, v) != w:
            return False
    return True

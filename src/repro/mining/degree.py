"""Degree statistics and distributions (a GMine details-on-demand metric)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph.graph import Graph, NodeId


def degree_sequence(graph: Graph) -> List[int]:
    """Return the (descending) degree sequence of the graph."""
    return sorted((graph.degree(node) for node in graph.nodes()), reverse=True)


def degree_distribution(graph: Graph) -> Dict[int, int]:
    """Return a histogram mapping degree -> number of vertices with that degree."""
    return dict(Counter(graph.degree(node) for node in graph.nodes()))


def degree_distribution_normalized(graph: Graph) -> Dict[int, float]:
    """Return the empirical degree probability mass function."""
    histogram = degree_distribution(graph)
    n = graph.num_nodes
    if n == 0:
        return {}
    return {degree: count / n for degree, count in histogram.items()}


def top_degree_nodes(graph: Graph, count: int = 10) -> List[Tuple[NodeId, int]]:
    """Return up to ``count`` highest-degree vertices as ``(node, degree)`` pairs."""
    ranked = sorted(
        ((node, graph.degree(node)) for node in graph.nodes()),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return ranked[:count]


@dataclass
class DegreeSummary:
    """Headline degree statistics shown in the GMine details pane."""

    num_nodes: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a flat dict (for JSON output and the CLI)."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "median_degree": self.median_degree,
        }


def degree_summary(graph: Graph) -> DegreeSummary:
    """Compute :class:`DegreeSummary` for ``graph`` (zeros for the empty graph)."""
    degrees = sorted(graph.degree(node) for node in graph.nodes())
    if not degrees:
        return DegreeSummary(0, 0, 0, 0, 0.0, 0.0)
    n = len(degrees)
    if n % 2 == 1:
        median = float(degrees[n // 2])
    else:
        median = (degrees[n // 2 - 1] + degrees[n // 2]) / 2.0
    return DegreeSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        min_degree=degrees[0],
        max_degree=degrees[-1],
        mean_degree=sum(degrees) / n,
        median_degree=median,
    )

"""Graph mining: RWR, connection-subgraph extraction, baselines, and metrics.

This package contains the paper's second headline idea (multi-source
connection subgraph extraction via random walk with restart and iterative
important-path discovery), the pairwise KDD'04 delivered-current baseline it
is contrasted with, and the five details-on-demand metrics the GMine UI
offers for a focused subgraph.
"""

from .components import (
    largest_component,
    number_strong_components,
    number_weak_components,
    strong_components,
    strong_components_of_undirected,
    weak_components,
)
from .connection_subgraph import (
    ExtractionResult,
    extract_connection_subgraph,
    extraction_summary,
)
from .degree import (
    DegreeSummary,
    degree_distribution,
    degree_distribution_normalized,
    degree_sequence,
    degree_summary,
    top_degree_nodes,
)
from .delivered_current import (
    DeliveredCurrentResult,
    compute_voltages,
    extract_delivered_current,
)
from .hops import (
    HopPlot,
    average_shortest_path_length,
    effective_diameter,
    exact_diameter,
    hop_histogram,
    hop_plot,
)
from .metrics_suite import SubgraphMetrics, compute_subgraph_metrics, metrics_signature
from .pagerank import pagerank, pagerank_digraph, top_pagerank_nodes
from .proximity import (
    adamic_adar,
    common_neighbors,
    jaccard_similarity,
    pairwise_proximity_matrix,
    proximity,
    rank_candidates_by_proximity,
    top_k_related,
)
from .rwr import (
    RWRResult,
    goodness_scores,
    meeting_probability,
    per_source_rwr,
    rwr_exact,
    rwr_exact_block,
    rwr_power_block,
    rwr_power_iteration,
    steady_state_rwr,
)

__all__ = [
    "DegreeSummary",
    "DeliveredCurrentResult",
    "ExtractionResult",
    "HopPlot",
    "RWRResult",
    "SubgraphMetrics",
    "adamic_adar",
    "average_shortest_path_length",
    "common_neighbors",
    "jaccard_similarity",
    "pairwise_proximity_matrix",
    "proximity",
    "rank_candidates_by_proximity",
    "top_k_related",
    "compute_subgraph_metrics",
    "compute_voltages",
    "degree_distribution",
    "degree_distribution_normalized",
    "degree_sequence",
    "degree_summary",
    "effective_diameter",
    "exact_diameter",
    "extract_connection_subgraph",
    "extract_delivered_current",
    "extraction_summary",
    "goodness_scores",
    "hop_histogram",
    "hop_plot",
    "largest_component",
    "meeting_probability",
    "metrics_signature",
    "number_strong_components",
    "number_weak_components",
    "pagerank",
    "pagerank_digraph",
    "per_source_rwr",
    "rwr_exact",
    "rwr_exact_block",
    "rwr_power_block",
    "rwr_power_iteration",
    "steady_state_rwr",
    "strong_components",
    "strong_components_of_undirected",
    "top_degree_nodes",
    "top_pagerank_nodes",
    "weak_components",
]

"""Random walk with restart (RWR) and the GMine goodness score.

The connection-subgraph extractor of the paper simulates one independent
random walk with restart per source node; the *goodness score* of a vertex
is the steady-state probability that the walkers "meet" there — operationally
the product (optionally normalised by degree) of the per-source steady-state
visit probabilities.

Two solvers are provided:

* :func:`rwr_power_iteration` — sparse power iteration, scales to the full
  synthetic DBLP graph;
* :func:`rwr_exact` — direct solve of ``(I - (1 - c) W) r = c q``, used to
  validate the iterative solver and in the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from ..errors import ConvergenceError, MiningError
from ..graph.graph import Graph, NodeId
from ..graph.matrix import VertexIndex, restart_vector, transition_matrix


def node_sort_key(node: NodeId):
    """A total, type-stable order over heterogeneous vertex ids.

    Integer ids compare numerically (2 before 10 — not the lexicographic
    ``"10" < "2"`` a plain ``repr`` sort would give), string ids compare
    lexicographically, and distinct id types never compare against each
    other directly (they are grouped by type name).  Every ranked payload
    that breaks score ties does so through this key, so the same scores
    produce the same ordering wherever they were computed — calling
    thread, kernel thread, or worker process — and cached, recomputed and
    process-shipped top-k lists stay byte-identical.
    """
    if isinstance(node, int) and not isinstance(node, bool):
        return (type(node).__name__, node, "")
    return (type(node).__name__, 0, repr(node))


@dataclass
class RWRResult:
    """Steady-state RWR distribution for one source set."""

    scores: Dict[NodeId, float]
    iterations: int
    converged: bool
    restart_probability: float

    def top(self, count: int = 10) -> List:
        """The ``count`` highest-probability ``(node, score)`` pairs.

        Ordered by descending score with ties broken deterministically by
        :func:`node_sort_key` — independent of ``scores`` insertion order,
        and therefore of which backend produced the result.
        """
        return sorted(
            self.scores.items(),
            key=lambda pair: (-pair[1], node_sort_key(pair[0])),
        )[:count]


def rwr_power_iteration(
    graph: Graph,
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 500,
    index: Optional[VertexIndex] = None,
    strict: bool = True,
) -> RWRResult:
    """Solve RWR by power iteration: ``r <- (1 - c) W r + c q``.

    Parameters
    ----------
    sources:
        Restart nodes (the walk teleports back to these with probability
        ``restart_probability`` each step).
    strict:
        When true a failure to converge raises :class:`ConvergenceError`;
        otherwise the last iterate is returned with ``converged=False``.
    """
    _validate_restart(restart_probability)
    if not sources:
        raise MiningError("rwr requires at least one source node")
    for source in sources:
        if not graph.has_node(source):
            raise MiningError(f"rwr source {source!r} is not in the graph")
    transition, index = transition_matrix(graph, index)
    q = restart_vector(index, sources)
    c = restart_probability
    rank = q.copy()
    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        updated = (1.0 - c) * (transition @ rank) + c * q
        delta = np.abs(updated - rank).sum()
        rank = updated
        if delta < tol:
            converged = True
            break
    if not converged and strict:
        raise ConvergenceError(
            f"RWR did not converge within {max_iter} iterations (tol={tol})"
        )
    # Columns of isolated/dangling vertices leak mass; a single final
    # renormalisation (matching rwr_exact) keeps the two solvers' fixed
    # points identical — renormalising inside the loop would converge to a
    # slightly different distribution whenever a source is dangling.
    total = rank.sum()
    if total > 0:
        rank = rank / total
    scores = {index.node_at(i): float(rank[i]) for i in range(len(index))}
    return RWRResult(
        scores=scores,
        iterations=iterations,
        converged=converged,
        restart_probability=c,
    )


def rwr_exact(
    graph: Graph,
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    index: Optional[VertexIndex] = None,
) -> RWRResult:
    """Solve RWR exactly: ``r = c (I - (1 - c) W)^{-1} q``.

    Cubic-ish in the worst case via sparse LU, so intended for validation and
    subgraph-sized problems rather than the full graph.
    """
    _validate_restart(restart_probability)
    if not sources:
        raise MiningError("rwr requires at least one source node")
    transition, index = transition_matrix(graph, index)
    n = len(index)
    q = restart_vector(index, sources)
    c = restart_probability
    system = sparse.identity(n, format="csc") - (1.0 - c) * transition.tocsc()
    solution = spsolve(system, c * q)
    solution = np.asarray(solution).ravel()
    total = solution.sum()
    if total > 0:
        solution = solution / total
    scores = {index.node_at(i): float(solution[i]) for i in range(n)}
    return RWRResult(scores=scores, iterations=0, converged=True,
                     restart_probability=c)


def steady_state_rwr(
    graph: Graph,
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    solver: str = "power",
    tol: float = 1e-10,
    max_iter: int = 500,
) -> RWRResult:
    """Canonical, cache-friendly entry point for one RWR steady state.

    A pure function of its arguments: the source set is deduplicated and
    order-normalised (the restart vector spreads mass uniformly over the
    set, so order never matters), and ``solver`` picks between
    :func:`rwr_power_iteration` (``"power"``) and :func:`rwr_exact`
    (``"exact"``).  The service layer keys its result cache on exactly
    these arguments.
    """
    canonical_sources = sorted(set(sources), key=repr)
    if solver == "exact":
        return rwr_exact(graph, canonical_sources, restart_probability)
    if solver == "power":
        return rwr_power_iteration(
            graph, canonical_sources, restart_probability, tol=tol, max_iter=max_iter
        )
    raise MiningError(f"unknown RWR solver {solver!r}; expected 'power' or 'exact'")


def per_source_rwr(
    graph: Graph,
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    solver: str = "power",
    tol: float = 1e-10,
    max_iter: int = 500,
) -> Dict[NodeId, RWRResult]:
    """Run one independent RWR per source node (as the paper prescribes)."""
    index = VertexIndex.from_graph(graph)
    results: Dict[NodeId, RWRResult] = {}
    for source in sources:
        if solver == "exact":
            results[source] = rwr_exact(
                graph, [source], restart_probability, index=index
            )
        else:
            results[source] = rwr_power_iteration(
                graph,
                [source],
                restart_probability,
                tol=tol,
                max_iter=max_iter,
                index=index,
            )
    return results


def goodness_scores(
    graph: Graph,
    per_source: Dict[NodeId, RWRResult],
    degree_normalized: bool = True,
) -> Dict[NodeId, float]:
    """Combine per-source RWR distributions into the GMine goodness score.

    The goodness of vertex ``v`` is the steady-state probability that the
    independent walkers meet at ``v``.  Because the walks are independent,
    the meeting probability is the product over sources of each walker's
    stationary probability of being at ``v``; dividing by degree (the
    stationary distribution of an unbiased walk) corrects for the fact that
    high-degree vertices are visited often by *any* walk, not specifically
    by walks from the sources.  Scores are returned in log-robust form:
    the geometric-mean product rescaled so the maximum is 1.0.
    """
    if not per_source:
        raise MiningError("goodness_scores requires at least one RWR result")
    nodes = list(graph.nodes())
    raw: Dict[NodeId, float] = {}
    num_sources = len(per_source)
    for node in nodes:
        log_sum = 0.0
        dead = False
        for result in per_source.values():
            probability = result.scores.get(node, 0.0)
            if probability <= 0.0:
                dead = True
                break
            log_sum += np.log(probability)
        if dead:
            raw[node] = 0.0
            continue
        value = float(np.exp(log_sum / num_sources))  # geometric mean
        if degree_normalized:
            degree = graph.weighted_degree(node)
            if degree > 0:
                value /= degree ** ((num_sources - 1) / num_sources) if num_sources > 1 else 1.0
        raw[node] = value
    peak = max(raw.values()) if raw else 0.0
    if peak <= 0.0:
        return raw
    return {node: value / peak for node, value in raw.items()}


def meeting_probability(
    graph: Graph,
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    solver: str = "power",
    degree_normalized: bool = True,
) -> Dict[NodeId, float]:
    """Convenience wrapper: per-source RWR followed by goodness combination."""
    per_source = per_source_rwr(
        graph, sources, restart_probability=restart_probability, solver=solver
    )
    return goodness_scores(graph, per_source, degree_normalized=degree_normalized)


def _validate_restart(restart_probability: float) -> None:
    """Restart probability must be a proper probability strictly inside (0, 1)."""
    if not 0.0 < restart_probability < 1.0:
        raise MiningError(
            f"restart probability must be in (0, 1), got {restart_probability}"
        )

"""Random walk with restart (RWR) and the GMine goodness score.

The connection-subgraph extractor of the paper simulates one independent
random walk with restart per source node; the *goodness score* of a vertex
is the steady-state probability that the walkers "meet" there — operationally
the product (optionally normalised by degree) of the per-source steady-state
visit probabilities.

Two solvers are provided:

* :func:`rwr_power_iteration` — sparse power iteration, scales to the full
  synthetic DBLP graph;
* :func:`rwr_exact` — direct solve of ``(I - (1 - c) W) r = c q``, used to
  validate the iterative solver and in the ablation benchmark.

Every solver accepts ``prepared=`` — a
:class:`~repro.graph.matrix.PreparedGraph` holding the CSR transition
matrix and vertex index built once per dataset — and skips the O(E)
graph-to-matrix conversion when it is given.  Multi-source workloads go
through :func:`rwr_power_block`, which iterates an ``n x k`` dense block so
``k`` restart vectors cost one sparse matmul per step instead of ``k``
independent solves; per-column convergence freezing keeps the blocked
results **bit-identical** to the per-source loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..errors import ConvergenceError, MiningError
from ..graph.graph import Graph, NodeId
from ..graph.matrix import (
    PreparedGraph,
    VertexIndex,
    exact_rwr_factor,
    restart_vector,
    transition_matrix,
)


def node_sort_key(node: NodeId):
    """A total, type-stable order over heterogeneous vertex ids.

    Integer ids compare numerically (2 before 10 — not the lexicographic
    ``"10" < "2"`` a plain ``repr`` sort would give), string ids compare
    lexicographically, and distinct id types never compare against each
    other directly (they are grouped by type name).  Every ranked payload
    that breaks score ties does so through this key, so the same scores
    produce the same ordering wherever they were computed — calling
    thread, kernel thread, or worker process — and cached, recomputed and
    process-shipped top-k lists stay byte-identical.
    """
    if isinstance(node, int) and not isinstance(node, bool):
        return (type(node).__name__, node, "")
    return (type(node).__name__, 0, repr(node))


@dataclass
class RWRResult:
    """Steady-state RWR distribution for one source set."""

    scores: Dict[NodeId, float]
    iterations: int
    converged: bool
    restart_probability: float

    def top(self, count: int = 10) -> List:
        """The ``count`` highest-probability ``(node, score)`` pairs.

        Ordered by descending score with ties broken deterministically by
        :func:`node_sort_key` — independent of ``scores`` insertion order,
        and therefore of which backend produced the result.
        """
        return sorted(
            self.scores.items(),
            key=lambda pair: (-pair[1], node_sort_key(pair[0])),
        )[:count]


def _resolve_operator(
    graph: Optional[Graph],
    index: Optional[VertexIndex],
    prepared: Optional[PreparedGraph],
) -> Tuple[sparse.csr_matrix, VertexIndex]:
    """Return ``(transition, index)``, converting the graph only when cold.

    A supplied :class:`PreparedGraph` wins: its cached transition matrix and
    index are used as-is (and an explicit ``index`` must be the prepared
    one, if given at all).  Otherwise the matrix is rebuilt from ``graph``
    exactly as before.
    """
    if prepared is not None:
        if index is not None and index is not prepared.index:
            raise MiningError(
                "rwr got both prepared= and a foreign index=; "
                "the prepared graph already fixes the vertex ordering"
            )
        return prepared.transition, prepared.index
    if graph is None:
        raise MiningError("rwr requires a graph when no prepared= is given")
    return transition_matrix(graph, index)


def _check_sources(
    graph: Optional[Graph],
    index: VertexIndex,
    sources: Sequence[NodeId],
) -> None:
    if not sources:
        raise MiningError("rwr requires at least one source node")
    for source in sources:
        known = graph.has_node(source) if graph is not None else source in index
        if not known:
            raise MiningError(f"rwr source {source!r} is not in the graph")


def rwr_power_iteration(
    graph: Optional[Graph],
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 500,
    index: Optional[VertexIndex] = None,
    strict: bool = True,
    prepared: Optional[PreparedGraph] = None,
) -> RWRResult:
    """Solve RWR by power iteration: ``r <- (1 - c) W r + c q``.

    Parameters
    ----------
    sources:
        Restart nodes (the walk teleports back to these with probability
        ``restart_probability`` each step).
    strict:
        When true a failure to converge raises :class:`ConvergenceError`;
        otherwise the last iterate is returned with ``converged=False``.
    prepared:
        A :class:`~repro.graph.matrix.PreparedGraph` for ``graph``; when
        given, the transition matrix is **not** rebuilt (``graph`` may even
        be ``None``).  Results are bit-identical either way.
    """
    _validate_restart(restart_probability)
    transition, index = _resolve_operator(graph, index, prepared)
    _check_sources(graph, index, sources)
    q = restart_vector(index, sources)
    c = restart_probability
    rank = q.copy()
    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        updated = (1.0 - c) * (transition @ rank) + c * q
        delta = np.abs(updated - rank).sum()
        rank = updated
        if delta < tol:
            converged = True
            break
    if not converged and strict:
        raise ConvergenceError(
            f"RWR did not converge within {max_iter} iterations (tol={tol})"
        )
    # Columns of isolated/dangling vertices leak mass; a single final
    # renormalisation (matching rwr_exact) keeps the two solvers' fixed
    # points identical — renormalising inside the loop would converge to a
    # slightly different distribution whenever a source is dangling.
    total = rank.sum()
    if total > 0:
        rank = rank / total
    scores = {index.node_at(i): float(rank[i]) for i in range(len(index))}
    return RWRResult(
        scores=scores,
        iterations=iterations,
        converged=converged,
        restart_probability=c,
    )


#: Maximum columns iterated as one dense block.  Bounds the transient
#: memory of :func:`rwr_power_block` at O(n * chunk) — a caller passing
#: hundreds of source sets on a large graph must not allocate an
#: n x k monster where the old per-source loop peaked at a few vectors.
#: Columns are independent, so chunking never changes a result.
BLOCK_COLUMN_CHUNK = 64


def rwr_power_block(
    graph: Optional[Graph],
    source_sets: Sequence[Sequence[NodeId]],
    restart_probability: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 500,
    index: Optional[VertexIndex] = None,
    strict: bool = True,
    prepared: Optional[PreparedGraph] = None,
    warm_starts: Optional[Sequence[Optional[Dict[NodeId, float]]]] = None,
) -> List[RWRResult]:
    """Blocked multi-source power iteration: k steady states, one matmul/step.

    Stacks one restart vector per entry of ``source_sets`` into an
    ``n x k`` dense block and iterates ``R <- (1 - c) W R + c Q``, so every
    step pays a single sparse matmul (one CSR traversal amortised over all
    columns) instead of ``k`` independent matvecs — and, on the cold path,
    instead of ``k`` O(E) matrix rebuilds.  More than
    :data:`BLOCK_COLUMN_CHUNK` source sets run as successive chunks, so
    peak memory stays O(n * chunk) regardless of ``k``.

    Bit-parity with the per-source loop is engineered, not approximate:

    * CSR multi-vector products accumulate each output element over the
      row's nonzeros in the same order as the single-vector product;
    * every order-sensitive float reduction (the per-column convergence
      delta, the final renormalisation sum) runs over a freshly
      materialised contiguous 1-D array, so numpy's pairwise summation
      applies with exactly the blocking :func:`rwr_power_iteration` sees;
    * a column that converges is **frozen** (never written again) rather
      than iterated further, so its returned iterate is the very vector
      the per-source loop would have stopped at.  The matmul still spans
      the full block — a C-contiguous operand reaches scipy without a
      copy, which beats slicing the active columns out every step — and
      frozen columns' products are simply discarded.

    ``warm_starts`` optionally supplies, per source set, the score dict of
    a previously computed steady state to seed the iteration from instead
    of the restart vector.  After a *small* graph delta the previous fixed
    point is already near the new one, so a warm-started column converges
    in a handful of steps.  The fixed point of the contraction is unique,
    so warm starting changes only the trajectory: the returned iterate
    agrees with the cold solve within the convergence tolerance (not
    bitwise — callers that need bit-parity with a cold solve, like the
    service's default query path, must not pass warm starts).  Entries may
    be ``None`` (that column starts cold); scores for vertices no longer
    in the graph are dropped and new vertices seed at zero.
    """
    _validate_restart(restart_probability)
    if not source_sets:
        raise MiningError("rwr block requires at least one source set")
    if warm_starts is not None and len(warm_starts) != len(source_sets):
        raise MiningError(
            f"rwr block got {len(warm_starts)} warm starts "
            f"for {len(source_sets)} source sets"
        )
    transition, index = _resolve_operator(graph, index, prepared)
    for sources in source_sets:
        _check_sources(graph, index, sources)
    if len(source_sets) > BLOCK_COLUMN_CHUNK:
        results: List[RWRResult] = []
        for start in range(0, len(source_sets), BLOCK_COLUMN_CHUNK):
            stop = start + BLOCK_COLUMN_CHUNK
            results.extend(
                _power_block_chunk(
                    transition, index, source_sets[start:stop],
                    restart_probability, tol, max_iter, strict,
                    warm_starts=None if warm_starts is None else warm_starts[start:stop],
                )
            )
        return results
    return _power_block_chunk(
        transition, index, source_sets, restart_probability, tol, max_iter, strict,
        warm_starts=warm_starts,
    )


def _power_block_chunk(
    transition,
    index: VertexIndex,
    source_sets: Sequence[Sequence[NodeId]],
    restart_probability: float,
    tol: float,
    max_iter: int,
    strict: bool,
    warm_starts: Optional[Sequence[Optional[Dict[NodeId, float]]]] = None,
) -> List[RWRResult]:
    """Iterate one bounded block of restart columns to their steady states."""
    n = len(index)
    k = len(source_sets)
    c = restart_probability
    q_block = np.zeros((n, k))
    for column, sources in enumerate(source_sets):
        q_block[:, column] = restart_vector(index, sources)
    rank = q_block.copy()
    if warm_starts is not None:
        for column, warm in enumerate(warm_starts):
            if not warm:
                continue
            seed = np.zeros(n)
            for position in range(n):
                seed[position] = warm.get(index.node_at(position), 0.0)
            total = seed.sum()
            # An all-zero or degenerate seed (every previous vertex edited
            # away) keeps the cold restart-vector start for that column.
            if total > 0:
                rank[:, column] = seed / total
    # Hoisted restart term: c * q is loop-invariant, and multiplying once
    # up front yields the same floats the per-source loop recomputes each
    # step — parity-safe, one fewer array op per column per iteration.
    restart_block = c * q_block
    iterations = [0] * k
    converged = [False] * k
    active = list(range(k))
    step = 0
    while active and step < max_iter:
        step += 1
        product = transition @ rank
        still_active = []
        for column in active:
            updated = (1.0 - c) * product[:, column] + restart_block[:, column]
            delta = np.abs(updated - rank[:, column]).sum()
            rank[:, column] = updated
            iterations[column] = step
            if delta < tol:
                converged[column] = True
            else:
                still_active.append(column)
        active = still_active
    if active and strict:
        raise ConvergenceError(
            f"RWR did not converge within {max_iter} iterations (tol={tol}) "
            f"for {len(active)} of {k} source sets"
        )
    results: List[RWRResult] = []
    for column in range(k):
        # Contiguous copy first: the renormalisation sum must reduce in
        # the same (pairwise, unit-stride) order as the per-source path.
        final = np.ascontiguousarray(rank[:, column])
        total = final.sum()
        if total > 0:
            final = final / total
        scores = {index.node_at(i): float(final[i]) for i in range(n)}
        results.append(
            RWRResult(
                scores=scores,
                iterations=iterations[column],
                converged=converged[column],
                restart_probability=c,
            )
        )
    return results


def refresh_rwr(
    graph: Optional[Graph],
    source_sets: Sequence[Sequence[NodeId]],
    previous: Sequence[Optional[RWRResult]],
    restart_probability: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 500,
    strict: bool = True,
    prepared: Optional[PreparedGraph] = None,
) -> Tuple[List[RWRResult], List[bool]]:
    """Incrementally refresh steady states after a small graph delta.

    Re-solves each source set's RWR on the (edited) ``graph``, seeding the
    power iteration from the matching entry of ``previous`` — the steady
    states computed before the edit.  For a delta touching a few edges the
    previous fixed point is close to the new one, so warm columns converge
    in a fraction of the cold iteration count; the unique fixed point of
    the contraction guarantees the refreshed state matches a full cold
    recompute within the convergence tolerance.

    The fallback is explicit, not best-effort: any warm-started column
    that fails to converge within ``max_iter`` is re-solved **cold from
    scratch** (the exact path a fresh query would take), so a pathological
    seed can degrade latency but never the answer.  A ``previous`` entry
    is only used when it converged under the same restart probability;
    anything else starts cold.

    Returns ``(results, refreshed)`` where ``refreshed[i]`` tells whether
    source set ``i`` was served by the warm path.
    """
    if len(previous) != len(source_sets):
        raise MiningError(
            f"refresh_rwr got {len(previous)} previous states "
            f"for {len(source_sets)} source sets"
        )
    warm: List[Optional[Dict[NodeId, float]]] = []
    for prior in previous:
        usable = (
            prior is not None
            and prior.converged
            and prior.restart_probability == restart_probability
        )
        warm.append(dict(prior.scores) if usable else None)
    results = rwr_power_block(
        graph, source_sets, restart_probability,
        tol=tol, max_iter=max_iter, strict=False, prepared=prepared,
        warm_starts=warm,
    )
    fallback = [
        column for column, result in enumerate(results)
        if warm[column] is not None and not result.converged
    ]
    if fallback:
        cold = rwr_power_block(
            graph, [source_sets[column] for column in fallback],
            restart_probability, tol=tol, max_iter=max_iter, strict=False,
            prepared=prepared,
        )
        for column, result in zip(fallback, cold):
            results[column] = result
    if strict:
        stuck = sum(1 for result in results if not result.converged)
        if stuck:
            raise ConvergenceError(
                f"RWR refresh did not converge within {max_iter} iterations "
                f"(tol={tol}) for {stuck} of {len(results)} source sets"
            )
    refreshed = [
        warm[column] is not None and column not in fallback
        for column in range(len(results))
    ]
    return results, refreshed


def rwr_exact(
    graph: Optional[Graph],
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    index: Optional[VertexIndex] = None,
    prepared: Optional[PreparedGraph] = None,
) -> RWRResult:
    """Solve RWR exactly: ``r = c (I - (1 - c) W)^{-1} q``.

    The system is LU-factorised once (:func:`~repro.graph.matrix.
    exact_rwr_factor`; a prepared graph memoises the factor per restart
    probability) and the restart vector solved against the factor — which
    is bit-identical to the historical ``spsolve`` call, SuperLU being
    the solver behind both.  Cubic-ish in the worst case, so intended for
    validation and subgraph-sized problems rather than the full graph;
    multi-set workloads should batch through :func:`rwr_exact_block`.
    """
    _validate_restart(restart_probability)
    if not sources:
        raise MiningError("rwr requires at least one source node")
    # _resolve_operator centralises the prepared/index/graph guards (the
    # foreign-index rejection included) for every solver alike.
    transition, index = _resolve_operator(graph, index, prepared)
    c = restart_probability
    if prepared is not None:
        factor = prepared.exact_factor(c)
    else:
        factor = exact_rwr_factor(transition.tocsc(), c)
    q = restart_vector(index, sources)
    solution = np.asarray(factor.solve(c * q)).ravel()
    return _exact_result(solution, index, c)


def _exact_result(
    solution: np.ndarray, index: VertexIndex, restart_probability: float
) -> RWRResult:
    """Normalise one exact solution column into an :class:`RWRResult`."""
    solution = np.ascontiguousarray(solution)
    total = solution.sum()
    if total > 0:
        solution = solution / total
    n = len(index)
    scores = {index.node_at(i): float(solution[i]) for i in range(n)}
    return RWRResult(scores=scores, iterations=0, converged=True,
                     restart_probability=restart_probability)


def rwr_exact_block(
    graph: Optional[Graph],
    source_sets: Sequence[Sequence[NodeId]],
    restart_probability: float = 0.15,
    index: Optional[VertexIndex] = None,
    prepared: Optional[PreparedGraph] = None,
) -> List[RWRResult]:
    """Solve k exact RWR systems with **one** factorization.

    All source sets share the system matrix ``I - (1 - c) W`` — only the
    right-hand side differs — so the LU factorization (the dominant cost
    by far) is paid once and each restart vector is a cheap pair of
    triangular solves against it.  The solves stay one-vector-at-a-time
    deliberately: SuperLU's multi-RHS path uses blocked triangular
    solves whose accumulation order drifts from the vector path at the
    ULP level on graphs past a few hundred vertices, while per-column
    solves through the shared factor are **bit-identical** to the
    per-set :func:`rwr_exact` loop this replaces (hypothesis-gated in
    ``tests/mining/test_exact_block.py`` and re-checked by the
    ``bench_shm`` gate before its timings count).
    """
    _validate_restart(restart_probability)
    if not source_sets:
        return []
    for sources in source_sets:
        if not sources:
            raise MiningError("rwr requires at least one source node")
    transition, index = _resolve_operator(graph, index, prepared)
    c = restart_probability
    if prepared is not None:
        factor = prepared.exact_factor(c)
    else:
        factor = exact_rwr_factor(transition.tocsc(), c)
    results = []
    for sources in source_sets:
        q = restart_vector(index, sources)
        solution = np.asarray(factor.solve(c * q)).ravel()
        results.append(_exact_result(solution, index, c))
    return results


def steady_state_rwr(
    graph: Optional[Graph],
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    solver: str = "power",
    tol: float = 1e-10,
    max_iter: int = 500,
    prepared: Optional[PreparedGraph] = None,
) -> RWRResult:
    """Canonical, cache-friendly entry point for one RWR steady state.

    A pure function of its arguments: the source set is deduplicated and
    order-normalised (the restart vector spreads mass uniformly over the
    set, so order never matters), and ``solver`` picks between
    :func:`rwr_power_iteration` (``"power"``) and :func:`rwr_exact`
    (``"exact"``).  The service layer keys its result cache on exactly
    these arguments; ``prepared`` (never part of the key) only skips the
    matrix rebuild.
    """
    canonical_sources = sorted(set(sources), key=repr)
    if solver == "exact":
        return rwr_exact(
            graph, canonical_sources, restart_probability, prepared=prepared
        )
    if solver == "power":
        # One source set is one column of the blocked solver — routing
        # through it keeps a single power-iteration code path for the
        # service's single- and multi-source traffic (bit-identical to
        # rwr_power_iteration by the block solver's parity contract).
        return rwr_power_block(
            graph, [canonical_sources], restart_probability,
            tol=tol, max_iter=max_iter, prepared=prepared,
        )[0]
    raise MiningError(f"unknown RWR solver {solver!r}; expected 'power' or 'exact'")


def per_source_rwr(
    graph: Optional[Graph],
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    solver: str = "power",
    tol: float = 1e-10,
    max_iter: int = 500,
    prepared: Optional[PreparedGraph] = None,
    blocked: bool = True,
) -> Dict[NodeId, RWRResult]:
    """Run one independent RWR per source node (as the paper prescribes).

    The power solver runs all sources as one :func:`rwr_power_block` by
    default — one sparse matmul per step for the whole set instead of one
    solve per source — and the exact solver as one
    :func:`rwr_exact_block` — one LU factorization for the whole set.
    Both are bit-identical to the per-source loop (``blocked=False``
    keeps the loop available for parity testing).
    """
    if prepared is not None:
        index = prepared.index
    elif graph is not None:
        index = VertexIndex.from_graph(graph)
    else:
        raise MiningError("rwr requires a graph when no prepared= is given")
    results: Dict[NodeId, RWRResult] = {}
    if solver == "exact" and blocked and sources:
        # One factorization, k solves — bit-identical to the loop below.
        ordered = list(sources)
        block = rwr_exact_block(
            graph,
            [[source] for source in ordered],
            restart_probability,
            index=None if prepared is not None else index,
            prepared=prepared,
        )
        return dict(zip(ordered, block))
    if solver != "exact" and blocked and sources:
        ordered = list(sources)
        block = rwr_power_block(
            graph,
            [[source] for source in ordered],
            restart_probability,
            tol=tol,
            max_iter=max_iter,
            index=None if prepared is not None else index,
            prepared=prepared,
        )
        return dict(zip(ordered, block))
    for source in sources:
        if solver == "exact":
            results[source] = rwr_exact(
                graph, [source], restart_probability,
                index=None if prepared is not None else index,
                prepared=prepared,
            )
        else:
            results[source] = rwr_power_iteration(
                graph,
                [source],
                restart_probability,
                tol=tol,
                max_iter=max_iter,
                index=None if prepared is not None else index,
                prepared=prepared,
            )
    return results


def goodness_scores(
    graph: Graph,
    per_source: Dict[NodeId, RWRResult],
    degree_normalized: bool = True,
) -> Dict[NodeId, float]:
    """Combine per-source RWR distributions into the GMine goodness score.

    The goodness of vertex ``v`` is the steady-state probability that the
    independent walkers meet at ``v``.  Because the walks are independent,
    the meeting probability is the product over sources of each walker's
    stationary probability of being at ``v``; dividing by degree (the
    stationary distribution of an unbiased walk) corrects for the fact that
    high-degree vertices are visited often by *any* walk, not specifically
    by walks from the sources.  Scores are returned in log-robust form:
    the geometric-mean product rescaled so the maximum is 1.0.
    """
    if not per_source:
        raise MiningError("goodness_scores requires at least one RWR result")
    nodes = list(graph.nodes())
    raw: Dict[NodeId, float] = {}
    num_sources = len(per_source)
    for node in nodes:
        log_sum = 0.0
        dead = False
        for result in per_source.values():
            probability = result.scores.get(node, 0.0)
            if probability <= 0.0:
                dead = True
                break
            log_sum += np.log(probability)
        if dead:
            raw[node] = 0.0
            continue
        value = float(np.exp(log_sum / num_sources))  # geometric mean
        if degree_normalized:
            degree = graph.weighted_degree(node)
            if degree > 0:
                value /= degree ** ((num_sources - 1) / num_sources) if num_sources > 1 else 1.0
        raw[node] = value
    peak = max(raw.values()) if raw else 0.0
    if peak <= 0.0:
        return raw
    return {node: value / peak for node, value in raw.items()}


def meeting_probability(
    graph: Graph,
    sources: Sequence[NodeId],
    restart_probability: float = 0.15,
    solver: str = "power",
    degree_normalized: bool = True,
    prepared: Optional[PreparedGraph] = None,
) -> Dict[NodeId, float]:
    """Convenience wrapper: per-source RWR followed by goodness combination."""
    per_source = per_source_rwr(
        graph, sources, restart_probability=restart_probability, solver=solver,
        prepared=prepared,
    )
    return goodness_scores(graph, per_source, degree_normalized=degree_normalized)


def _validate_restart(restart_probability: float) -> None:
    """Restart probability must be a proper probability strictly inside (0, 1)."""
    if not 0.0 < restart_probability < 1.0:
        raise MiningError(
            f"restart probability must be in (0, 1), got {restart_probability}"
        )

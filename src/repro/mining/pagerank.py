"""PageRank (a GMine details-on-demand metric).

Power-iteration PageRank over either an undirected :class:`Graph` (edges are
treated as bidirectional, weights respected) or a :class:`DiGraph`.
Dangling vertices redistribute their mass uniformly, the standard fix.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import sparse

from ..errors import ConvergenceError
from ..graph.graph import DiGraph, Graph, NodeId
from ..graph.matrix import VertexIndex, adjacency_matrix


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    personalization: Optional[Dict[NodeId, float]] = None,
) -> Dict[NodeId, float]:
    """Return PageRank scores for an undirected graph.

    Parameters
    ----------
    damping:
        Probability of following an edge (1 - restart probability).
    personalization:
        Optional restart distribution (vertex -> weight); uniform by default.
    """
    matrix, index = adjacency_matrix(graph)
    return _pagerank_from_matrix(matrix, index, damping, tol, max_iter, personalization)


def pagerank_digraph(
    digraph: DiGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    personalization: Optional[Dict[NodeId, float]] = None,
) -> Dict[NodeId, float]:
    """Return PageRank scores for a directed graph."""
    index = VertexIndex(list(digraph.nodes()))
    n = len(index)
    rows, cols, vals = [], [], []
    for u, v, w in digraph.edges():
        # Column j holds the out-distribution of vertex j.
        rows.append(index.index_of(v))
        cols.append(index.index_of(u))
        vals.append(w)
    matrix = sparse.csr_matrix(
        (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
    )
    return _pagerank_from_matrix(matrix, index, damping, tol, max_iter, personalization)


def _pagerank_from_matrix(
    matrix: sparse.spmatrix,
    index: VertexIndex,
    damping: float,
    tol: float,
    max_iter: int,
    personalization: Optional[Dict[NodeId, float]],
) -> Dict[NodeId, float]:
    """Shared power-iteration core; ``matrix[i, j]`` is weight of j -> i."""
    n = len(index)
    if n == 0:
        return {}
    out_weight = np.asarray(matrix.sum(axis=0)).ravel()
    with np.errstate(divide="ignore"):
        inv_out = np.where(out_weight > 0, 1.0 / out_weight, 0.0)
    transition = matrix @ sparse.diags(inv_out)
    dangling = out_weight == 0

    if personalization is None:
        restart = np.full(n, 1.0 / n)
    else:
        restart = np.zeros(n)
        for node, weight in personalization.items():
            restart[index.index_of(node)] = max(0.0, float(weight))
        total = restart.sum()
        if total == 0:
            restart = np.full(n, 1.0 / n)
        else:
            restart /= total

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum()
        updated = damping * (transition @ rank + dangling_mass * restart)
        updated += (1.0 - damping) * restart
        updated /= updated.sum()
        if np.abs(updated - rank).sum() < tol:
            rank = updated
            break
        rank = updated
    else:
        raise ConvergenceError(
            f"PageRank did not converge within {max_iter} iterations (tol={tol})"
        )
    return {index.node_at(i): float(rank[i]) for i in range(n)}


def top_pagerank_nodes(
    scores: Dict[NodeId, float], count: int = 10
) -> list:
    """Return the ``count`` highest-scoring ``(node, score)`` pairs."""
    return sorted(scores.items(), key=lambda pair: (-pair[1], repr(pair[0])))[:count]

"""PageRank (a GMine details-on-demand metric).

Power-iteration PageRank over either an undirected :class:`Graph` (edges are
treated as bidirectional, weights respected) or a :class:`DiGraph`.
Dangling vertices redistribute their mass uniformly, the standard fix.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import sparse

from ..errors import ConvergenceError, MiningError
from ..graph.graph import DiGraph, Graph, NodeId
from ..graph.matrix import (
    PreparedGraph,
    VertexIndex,
    adjacency_matrix,
    pagerank_operator,
)


def pagerank(
    graph: Optional[Graph],
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    personalization: Optional[Dict[NodeId, float]] = None,
    prepared: Optional[PreparedGraph] = None,
) -> Dict[NodeId, float]:
    """Return PageRank scores for an undirected graph.

    Parameters
    ----------
    damping:
        Probability of following an edge (1 - restart probability).
    personalization:
        Optional restart distribution (vertex -> weight); uniform by default.
    prepared:
        A :class:`~repro.graph.matrix.PreparedGraph` for ``graph``; skips
        the adjacency rebuild *and* reuses the cached column-normalised
        operator (:meth:`PreparedGraph.pagerank_view`).  Bit-identical to
        the cold path.
    """
    if prepared is not None:
        transition, dangling = prepared.pagerank_view()
        return _pagerank_power(
            transition, dangling, prepared.index,
            damping, tol, max_iter, personalization,
        )
    if graph is None:
        raise MiningError("pagerank requires a graph when no prepared= is given")
    matrix, index = adjacency_matrix(graph)
    return _pagerank_from_matrix(matrix, index, damping, tol, max_iter, personalization)


def pagerank_digraph(
    digraph: DiGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    personalization: Optional[Dict[NodeId, float]] = None,
) -> Dict[NodeId, float]:
    """Return PageRank scores for a directed graph."""
    index = VertexIndex(list(digraph.nodes()))
    n = len(index)
    rows, cols, vals = [], [], []
    for u, v, w in digraph.edges():
        # Column j holds the out-distribution of vertex j.
        rows.append(index.index_of(v))
        cols.append(index.index_of(u))
        vals.append(w)
    matrix = sparse.csr_matrix(
        (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
    )
    return _pagerank_from_matrix(matrix, index, damping, tol, max_iter, personalization)


def _pagerank_from_matrix(
    matrix: sparse.spmatrix,
    index: VertexIndex,
    damping: float,
    tol: float,
    max_iter: int,
    personalization: Optional[Dict[NodeId, float]],
) -> Dict[NodeId, float]:
    """Shared power-iteration core; ``matrix[i, j]`` is weight of j -> i."""
    if len(index) == 0:
        return {}
    transition, dangling = pagerank_operator(matrix)
    return _pagerank_power(
        transition, dangling, index, damping, tol, max_iter, personalization
    )


def _pagerank_power(
    transition: sparse.spmatrix,
    dangling: np.ndarray,
    index: VertexIndex,
    damping: float,
    tol: float,
    max_iter: int,
    personalization: Optional[Dict[NodeId, float]],
) -> Dict[NodeId, float]:
    """Power iteration over an already-normalised operator."""
    n = len(index)
    if n == 0:
        return {}

    if personalization is None:
        restart = np.full(n, 1.0 / n)
    else:
        restart = np.zeros(n)
        for node, weight in personalization.items():
            restart[index.index_of(node)] = max(0.0, float(weight))
        total = restart.sum()
        if total == 0:
            restart = np.full(n, 1.0 / n)
        else:
            restart /= total

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum()
        updated = damping * (transition @ rank + dangling_mass * restart)
        updated += (1.0 - damping) * restart
        updated /= updated.sum()
        if np.abs(updated - rank).sum() < tol:
            rank = updated
            break
        rank = updated
    else:
        raise ConvergenceError(
            f"PageRank did not converge within {max_iter} iterations (tol={tol})"
        )
    return {index.node_at(i): float(rank[i]) for i in range(n)}


def top_pagerank_nodes(
    scores: Dict[NodeId, float], count: int = 10
) -> list:
    """Return the ``count`` highest-scoring ``(node, score)`` pairs."""
    return sorted(scores.items(), key=lambda pair: (-pair[1], repr(pair[0])))[:count]

"""Multi-source connection subgraph extraction (the paper's second idea).

Given a set of *source* vertices and a node budget, extract a small subgraph
that "best captures the relationship" among the sources:

1. run one independent random walk with restart per source and combine the
   steady-state distributions into per-vertex **goodness scores**
   (:mod:`repro.mining.rwr`);
2. iteratively add **important paths** between pairs of sources by dynamic
   programming over the goodness scores (each path maximises the product of
   its interior vertices' goodness, i.e. the sum of log-goodness, subject to
   a maximum path length), until the node budget is exhausted;
3. if budget remains, top up with the highest-goodness vertices adjacent to
   the current subgraph so the display remains connected.

The output is the induced subgraph on the selected vertices plus extraction
metadata (scores, the paths chosen, budget accounting).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExtractionError
from ..graph.graph import Graph, NodeId
from ..graph.matrix import PreparedGraph
from .rwr import goodness_scores, per_source_rwr


@dataclass
class ExtractionResult:
    """Outcome of a connection-subgraph extraction."""

    subgraph: Graph
    sources: List[NodeId]
    goodness: Dict[NodeId, float]
    paths: List[List[NodeId]] = field(default_factory=list)
    budget: int = 0

    @property
    def num_nodes(self) -> int:
        """Number of vertices in the extracted subgraph."""
        return self.subgraph.num_nodes

    def reduction_factor(self, original: Graph) -> float:
        """How many times smaller the extract is than the original graph."""
        if self.num_nodes == 0:
            return float("inf")
        return original.num_nodes / self.num_nodes

    def contains_all_sources(self) -> bool:
        """Whether every query source made it into the extract (it always should)."""
        return all(self.subgraph.has_node(source) for source in self.sources)


def extract_connection_subgraph(
    graph: Graph,
    sources: Sequence[NodeId],
    budget: int = 30,
    restart_probability: float = 0.15,
    max_path_length: int = 6,
    solver: str = "power",
    degree_normalized: bool = True,
    prepared: Optional[PreparedGraph] = None,
) -> ExtractionResult:
    """Extract a connection subgraph of at most ``budget`` vertices.

    Parameters
    ----------
    sources:
        One or more query vertices (the paper supports multi-source queries,
        unlike the pairwise KDD'04 baseline).
    budget:
        Maximum number of vertices in the result (paper figure 5 uses 30,
        figure 6 uses 200).  Must be at least ``len(sources)``.
    max_path_length:
        Maximum number of edges in any single important path added by the
        dynamic program.
    prepared:
        A :class:`~repro.graph.matrix.PreparedGraph` for ``graph``; the
        per-source RWR goodness loop then runs blocked against the cached
        transition matrix instead of rebuilding it per source.
    """
    sources = list(dict.fromkeys(sources))  # dedupe, keep order
    if not sources:
        raise ExtractionError("extraction requires at least one source node")
    for source in sources:
        if not graph.has_node(source):
            raise ExtractionError(f"source {source!r} is not in the graph")
    if budget < len(sources):
        raise ExtractionError(
            f"budget {budget} is smaller than the number of sources {len(sources)}"
        )

    per_source = per_source_rwr(
        graph, sources, restart_probability=restart_probability, solver=solver,
        prepared=prepared,
    )
    goodness = goodness_scores(graph, per_source, degree_normalized=degree_normalized)

    selected: List[NodeId] = list(sources)
    selected_set = set(selected)
    paths: List[List[NodeId]] = []

    # Step 2: iterative important-path discovery between source pairs.
    pair_queue = list(combinations(sources, 2))
    progressed = True
    while progressed and len(selected_set) < budget:
        progressed = False
        for origin, target in pair_queue:
            if len(selected_set) >= budget:
                break
            path = _best_goodness_path(
                graph,
                goodness,
                origin,
                target,
                max_path_length=max_path_length,
                prefer_new=selected_set,
            )
            if path is None:
                continue
            new_nodes = [node for node in path if node not in selected_set]
            if not new_nodes:
                continue
            # Respect the budget: only take the path if it fits entirely, so
            # the display never shows dangling half-paths.
            if len(selected_set) + len(new_nodes) > budget:
                continue
            for node in new_nodes:
                selected_set.add(node)
                selected.append(node)
            paths.append(path)
            progressed = True

    # Step 3: top up with high-goodness neighbours of the current selection.
    if len(selected_set) < budget:
        _top_up(graph, goodness, selected, selected_set, budget)

    subgraph = graph.subgraph(selected, name=f"{graph.name}::extract")
    return ExtractionResult(
        subgraph=subgraph,
        sources=list(sources),
        goodness=goodness,
        paths=paths,
        budget=budget,
    )


def _best_goodness_path(
    graph: Graph,
    goodness: Dict[NodeId, float],
    origin: NodeId,
    target: NodeId,
    max_path_length: int,
    prefer_new: set,
    epsilon: float = 1e-12,
) -> Optional[List[NodeId]]:
    """Return the path from ``origin`` to ``target`` maximising interior goodness.

    Dynamic program over (vertex, hops): ``best[v][h]`` is the maximum sum of
    log-goodness over interior vertices of a path from ``origin`` to ``v``
    using exactly ``h`` edges.  Vertices already selected cost nothing extra
    (so the program prefers to reuse the existing display), which is the
    "iteratively discover important paths" behaviour described in the paper.
    """
    if origin == target:
        return [origin]

    def node_cost(node: NodeId) -> float:
        if node in prefer_new or node in (origin, target):
            return 0.0
        return -math.log(max(goodness.get(node, 0.0), epsilon))

    # Dijkstra over the layered graph (vertex, hops) with non-negative costs.
    start = (origin, 0)
    best_cost: Dict[Tuple[NodeId, int], float] = {start: 0.0}
    parent: Dict[Tuple[NodeId, int], Optional[Tuple[NodeId, int]]] = {start: None}
    counter = 0
    heap: List[Tuple[float, int, Tuple[NodeId, int]]] = [(0.0, counter, start)]
    best_target_state: Optional[Tuple[NodeId, int]] = None
    while heap:
        cost, _, state = heapq.heappop(heap)
        if cost > best_cost.get(state, float("inf")):
            continue
        node, hops = state
        if node == target:
            best_target_state = state
            break
        if hops >= max_path_length:
            continue
        for neighbor in graph.neighbors(node):
            next_state = (neighbor, hops + 1)
            next_cost = cost + (0.0 if neighbor == target else node_cost(neighbor))
            if next_cost < best_cost.get(next_state, float("inf")):
                best_cost[next_state] = next_cost
                parent[next_state] = state
                counter += 1
                heapq.heappush(heap, (next_cost, counter, next_state))
    if best_target_state is None:
        return None
    path: List[NodeId] = []
    state: Optional[Tuple[NodeId, int]] = best_target_state
    while state is not None:
        path.append(state[0])
        state = parent[state]
    path.reverse()
    return path


def _top_up(
    graph: Graph,
    goodness: Dict[NodeId, float],
    selected: List[NodeId],
    selected_set: set,
    budget: int,
) -> None:
    """Fill remaining budget with the best-scoring neighbours of the selection."""
    while len(selected_set) < budget:
        frontier = {
            neighbor
            for node in selected_set
            for neighbor in graph.neighbors(node)
            if neighbor not in selected_set
        }
        if not frontier:
            break
        best = max(frontier, key=lambda node: (goodness.get(node, 0.0), repr(node)))
        selected_set.add(best)
        selected.append(best)


def extraction_summary(result: ExtractionResult, original: Graph) -> Dict[str, float]:
    """Return headline statistics about an extraction (used by benchmarks)."""
    return {
        "original_nodes": original.num_nodes,
        "original_edges": original.num_edges,
        "extracted_nodes": result.num_nodes,
        "extracted_edges": result.subgraph.num_edges,
        "budget": result.budget,
        "reduction_factor": result.reduction_factor(original),
        "num_paths": len(result.paths),
        "sources_present": float(result.contains_all_sources()),
    }

"""Node-proximity queries on top of random walk with restart.

The connection-subgraph machinery already computes RWR distributions; this
module exposes them as user-facing queries that GMine-style exploration
needs constantly:

* :func:`top_k_related` — "who is most related to this author?" (the
  interaction behind figure 3(f), generalised beyond direct neighbours),
* :func:`proximity` — a single relevance score between two vertices,
* :func:`pairwise_proximity_matrix` — proximities among a small set of
  vertices (used to decide which pairs of query sources are worth detailed
  path extraction),
* :func:`common_neighbors`, :func:`jaccard_similarity`, :func:`adamic_adar`
  — cheap structural baselines the RWR scores can be compared against.

Every RWR-backed query accepts ``prepared=`` and — the important part —
the multi-walk queries (:func:`proximity`'s bidirectional pair,
:func:`pairwise_proximity_matrix`'s all-pairs set) build **one**
:class:`~repro.graph.matrix.PreparedGraph` and run all their walks as one
blocked solve, instead of re-deriving the vertex index and transition
matrix once per :func:`rwr_power_iteration` call as they used to.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MiningError
from ..graph.graph import Graph, NodeId
from ..graph.matrix import PreparedGraph
from .rwr import rwr_power_block, rwr_power_iteration


def _prepare(graph: Optional[Graph], prepared: Optional[PreparedGraph]) -> PreparedGraph:
    """Return the caller's prepared view, or build one for this query."""
    if prepared is not None:
        return prepared
    if graph is None:
        raise MiningError("proximity requires a graph when no prepared= is given")
    return PreparedGraph.from_graph(graph)


def top_k_related(
    graph: Graph,
    source: NodeId,
    k: int = 10,
    restart_probability: float = 0.15,
    exclude_neighbors: bool = False,
    prepared: Optional[PreparedGraph] = None,
) -> List[Tuple[NodeId, float]]:
    """Return the ``k`` vertices most related to ``source`` by RWR score.

    The source itself is always excluded; with ``exclude_neighbors`` its
    direct neighbours are excluded too, surfacing the strongest *indirect*
    relationships (co-authors of co-authors, in DBLP terms).
    """
    if k < 1:
        raise MiningError(f"k must be >= 1, got {k}")
    result = rwr_power_iteration(
        graph, [source], restart_probability=restart_probability, prepared=prepared
    )
    excluded = {source}
    if exclude_neighbors:
        excluded.update(graph.neighbors(source))
    ranked = sorted(
        ((node, score) for node, score in result.scores.items() if node not in excluded),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return ranked[:k]


def proximity(
    graph: Graph,
    source: NodeId,
    target: NodeId,
    restart_probability: float = 0.15,
    symmetric: bool = True,
    prepared: Optional[PreparedGraph] = None,
) -> float:
    """Return the RWR proximity between two vertices.

    With ``symmetric`` (default) the geometric mean of the two directed
    scores is returned, which is the usual symmetrisation for undirected
    relevance.  Both directed walks share one prepared transition matrix
    and run as a single blocked solve.
    """
    if not symmetric:
        forward = rwr_power_iteration(
            graph, [source], restart_probability=restart_probability,
            prepared=prepared,
        )
        return forward.scores.get(target, 0.0)
    shared = _prepare(graph, prepared)
    forward, backward = rwr_power_block(
        graph,
        [[source], [target]],
        restart_probability=restart_probability,
        prepared=shared,
    )
    score_forward = forward.scores.get(target, 0.0)
    score_backward = backward.scores.get(source, 0.0)
    return math.sqrt(max(score_forward, 0.0) * max(score_backward, 0.0))


def pairwise_proximity_matrix(
    graph: Graph,
    vertices: Sequence[NodeId],
    restart_probability: float = 0.15,
    prepared: Optional[PreparedGraph] = None,
) -> Dict[Tuple[NodeId, NodeId], float]:
    """Return symmetric RWR proximities for every pair of ``vertices``.

    Runs one RWR per vertex (not per pair), so the cost is linear in the
    number of query vertices — and all of them run as one blocked solve
    over one shared :class:`~repro.graph.matrix.PreparedGraph`, so the
    vertex index and transition matrix are derived exactly once.
    """
    vertices = list(dict.fromkeys(vertices))
    if len(vertices) < 2:
        raise MiningError("pairwise proximity needs at least two distinct vertices")
    shared = _prepare(graph, prepared)
    solved = rwr_power_block(
        graph,
        [[vertex] for vertex in vertices],
        restart_probability=restart_probability,
        prepared=shared,
    )
    distributions = dict(zip(vertices, solved))
    matrix: Dict[Tuple[NodeId, NodeId], float] = {}
    for i, a in enumerate(vertices):
        for b in vertices[i + 1:]:
            forward = distributions[a].scores.get(b, 0.0)
            backward = distributions[b].scores.get(a, 0.0)
            matrix[(a, b)] = math.sqrt(max(forward, 0.0) * max(backward, 0.0))
    return matrix


# --------------------------------------------------------------------------- #
# structural baselines
# --------------------------------------------------------------------------- #
def common_neighbors(graph: Graph, u: NodeId, v: NodeId) -> List[NodeId]:
    """Return the vertices adjacent to both ``u`` and ``v``."""
    return [node for node in graph.neighbors(u) if graph.has_edge(node, v) and node not in (u, v)]


def jaccard_similarity(graph: Graph, u: NodeId, v: NodeId) -> float:
    """Return |N(u) ∩ N(v)| / |N(u) ∪ N(v)| (0 when both are isolated)."""
    neighbors_u = set(graph.neighbors(u)) - {u, v}
    neighbors_v = set(graph.neighbors(v)) - {u, v}
    union = neighbors_u | neighbors_v
    if not union:
        return 0.0
    return len(neighbors_u & neighbors_v) / len(union)


def adamic_adar(graph: Graph, u: NodeId, v: NodeId) -> float:
    """Return the Adamic–Adar index: sum over common neighbours of 1/log(degree)."""
    score = 0.0
    for node in common_neighbors(graph, u, v):
        degree = graph.degree(node)
        if degree > 1:
            score += 1.0 / math.log(degree)
    return score


def rank_candidates_by_proximity(
    graph: Graph,
    source: NodeId,
    candidates: Sequence[NodeId],
    restart_probability: float = 0.15,
    prepared: Optional[PreparedGraph] = None,
) -> List[Tuple[NodeId, float]]:
    """Rank ``candidates`` by their RWR score from ``source`` (descending)."""
    result = rwr_power_iteration(
        graph, [source], restart_probability=restart_probability, prepared=prepared
    )
    ranked = sorted(
        ((candidate, result.scores.get(candidate, 0.0)) for candidate in candidates),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return ranked

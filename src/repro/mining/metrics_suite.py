"""The details-on-demand metric suite GMine exposes for a focused subgraph.

Section III-B of the paper lists exactly five calculations the system
supports on the subgraph under inspection: degree distribution, number of
hops, number of weak components, number of strong components, and PageRank.
:func:`compute_subgraph_metrics` bundles them into one call so the engine,
the CLI and the benchmarks all report the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.graph import DiGraph, Graph, NodeId
from ..graph.matrix import PreparedGraph
from .components import number_strong_components, number_weak_components
from .degree import DegreeSummary, degree_distribution, degree_summary
from .hops import effective_diameter, exact_diameter, hop_plot
from .pagerank import pagerank, top_pagerank_nodes


@dataclass
class SubgraphMetrics:
    """All five paper metrics for one subgraph, plus headline summaries."""

    degree_histogram: Dict[int, int]
    degree_stats: DegreeSummary
    diameter: int
    effective_diameter: float
    num_weak_components: int
    num_strong_components: int
    pagerank: Dict[NodeId, float]
    top_pagerank: List

    def as_dict(self) -> Dict:
        """Flatten to JSON-friendly primitives (for the CLI and reports)."""
        return {
            "degree_histogram": {str(k): v for k, v in sorted(self.degree_histogram.items())},
            "degree_stats": self.degree_stats.as_dict(),
            "diameter": self.diameter,
            "effective_diameter": self.effective_diameter,
            "num_weak_components": self.num_weak_components,
            "num_strong_components": self.num_strong_components,
            "top_pagerank": [[str(node), score] for node, score in self.top_pagerank],
        }


def metrics_signature(
    hop_sample_size: Optional[int] = None,
    pagerank_damping: float = 0.85,
    top_k: int = 10,
    seed: Optional[int] = 0,
) -> Tuple:
    """Canonical argument tuple for caching :func:`compute_subgraph_metrics`.

    The metric suite is a pure function of (graph, these arguments); the
    service layer combines this tuple with a tree fingerprint and a
    community label to key its result cache, so two calls that differ only
    in argument spelling (defaults vs explicit values) share one entry.
    """
    return (
        ("hop_sample_size", None if hop_sample_size is None else int(hop_sample_size)),
        ("pagerank_damping", float(pagerank_damping)),
        ("top_k", int(top_k)),
        ("seed", None if seed is None else int(seed)),
    )


def compute_subgraph_metrics(
    graph: Graph,
    hop_sample_size: Optional[int] = None,
    pagerank_damping: float = 0.85,
    top_k: int = 10,
    seed: Optional[int] = 0,
    prepared: Optional[PreparedGraph] = None,
) -> SubgraphMetrics:
    """Compute the full GMine metric suite for ``graph``.

    ``hop_sample_size`` bounds the number of BFS sources used for the hop
    metrics (None = exact), which is how the interactive system keeps the
    computation responsive on larger communities.  ``prepared`` routes the
    PageRank leg through a pre-built sparse operator (the other four
    metrics are pure graph traversals); results are bit-identical.
    """
    if graph.num_nodes == 0:
        empty_stats = degree_summary(graph)
        return SubgraphMetrics(
            degree_histogram={},
            degree_stats=empty_stats,
            diameter=0,
            effective_diameter=0.0,
            num_weak_components=0,
            num_strong_components=0,
            pagerank={},
            top_pagerank=[],
        )
    plot = hop_plot(graph, sample_size=hop_sample_size, seed=seed)
    scores = pagerank(graph, damping=pagerank_damping, prepared=prepared)
    return SubgraphMetrics(
        degree_histogram=degree_distribution(graph),
        degree_stats=degree_summary(graph),
        diameter=plot.max_hop() if plot.sampled else exact_diameter(graph),
        effective_diameter=effective_diameter(graph),
        num_weak_components=number_weak_components(graph),
        num_strong_components=number_strong_components(DiGraph.from_undirected(graph)),
        pagerank=scores,
        top_pagerank=top_pagerank_nodes(scores, count=top_k),
    )

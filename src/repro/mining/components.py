"""Connected components.

The paper's details-on-demand metrics include the "number of weak
components" and "number of strong components" of the subgraph under
inspection.  Weak components are computed on the undirected graph; strong
components use Tarjan's algorithm (iterative, to avoid recursion limits on
long paths) on a :class:`~repro.graph.graph.DiGraph`.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.graph import DiGraph, Graph, NodeId
from ..graph.traversal import bfs_order


def weak_components(graph: Graph) -> List[List[NodeId]]:
    """Return the connected components of an undirected graph.

    Components are ordered by discovery (insertion order of their first
    vertex) and each component lists vertices in BFS order, which keeps the
    output deterministic for tests and rendering.
    """
    seen = set()
    components: List[List[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = []
        for node in bfs_order(graph, start):
            if node not in seen:
                seen.add(node)
                component.append(node)
        components.append(component)
    return components


def number_weak_components(graph: Graph) -> int:
    """Return the number of weakly connected components."""
    return len(weak_components(graph))


def largest_component(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest weak component."""
    components = weak_components(graph)
    if not components:
        return Graph(name=f"{graph.name}::lcc")
    biggest = max(components, key=len)
    return graph.subgraph(biggest, name=f"{graph.name}::lcc")


def strong_components(digraph: DiGraph) -> List[List[NodeId]]:
    """Return strongly connected components of a digraph (Tarjan, iterative).

    The returned order is reverse topological (standard for Tarjan), and
    vertices within a component appear in stack-pop order.
    """
    index_counter = 0
    index: Dict[NodeId, int] = {}
    lowlink: Dict[NodeId, int] = {}
    on_stack: Dict[NodeId, bool] = {}
    stack: List[NodeId] = []
    components: List[List[NodeId]] = []

    for root in digraph.nodes():
        if root in index:
            continue
        # Each frame is (node, iterator over successors).
        work = [(root, iter(list(digraph.successors(root))))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(list(digraph.successors(successor)))))
                    advanced = True
                    break
                if on_stack.get(successor, False):
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def number_strong_components(digraph: DiGraph) -> int:
    """Return the number of strongly connected components."""
    return len(strong_components(digraph))


def strong_components_of_undirected(graph: Graph) -> List[List[NodeId]]:
    """Strong components of the symmetrised digraph (equal to weak components).

    Provided because the GMine UI exposes both numbers even for undirected
    subgraphs; for an undirected graph they coincide, and the tests assert
    exactly that equivalence.
    """
    return strong_components(DiGraph.from_undirected(graph))

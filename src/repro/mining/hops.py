"""Hop-plot and diameter estimation ("number of hops" in the GMine UI).

For small subgraphs the exact all-pairs hop distribution is feasible; for
larger ones GMine-style systems estimate it by sampling BFS sources.  Both
are provided, along with effective-diameter computation (the 90th percentile
of the hop distribution, the convention from the hop-plot literature).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph.graph import Graph, NodeId
from ..graph.traversal import bfs_distances


def hop_histogram(graph: Graph, sources: Optional[List[NodeId]] = None) -> Dict[int, int]:
    """Return a histogram hop-distance -> number of reachable ordered pairs.

    With ``sources`` given only pairs originating at those vertices are
    counted (the sampled variant); otherwise every vertex is a source.
    Distance 0 (self pairs) is excluded.
    """
    histogram: Dict[int, int] = {}
    for source in sources if sources is not None else graph.nodes():
        for distance in bfs_distances(graph, source).values():
            if distance == 0:
                continue
            histogram[distance] = histogram.get(distance, 0) + 1
    return histogram


def exact_diameter(graph: Graph) -> int:
    """Return the largest hop distance over reachable pairs (0 for empty/trivial)."""
    best = 0
    for source in graph.nodes():
        distances = bfs_distances(graph, source)
        if distances:
            best = max(best, max(distances.values()))
    return best


def effective_diameter(
    graph: Graph, percentile: float = 0.9, sources: Optional[List[NodeId]] = None
) -> float:
    """Return the hop count within which ``percentile`` of reachable pairs fall.

    Linear interpolation between integer hop counts follows the usual
    hop-plot convention so the value is comparable across graph sizes.
    """
    histogram = hop_histogram(graph, sources)
    if not histogram:
        return 0.0
    total = sum(histogram.values())
    target = percentile * total
    cumulative = 0.0
    previous_cumulative = 0.0
    for hop in sorted(histogram):
        previous_cumulative = cumulative
        cumulative += histogram[hop]
        if cumulative >= target:
            if histogram[hop] == 0:
                return float(hop)
            # Interpolate within this hop bucket.
            fraction = (target - previous_cumulative) / histogram[hop]
            return (hop - 1) + fraction
    return float(max(histogram))


@dataclass
class HopPlot:
    """The sampled hop-plot of a graph: reachable-pairs count per hop distance."""

    histogram: Dict[int, int]
    num_sources: int
    sampled: bool

    def cumulative(self) -> Dict[int, int]:
        """Return cumulative reachable pairs by hop distance."""
        result: Dict[int, int] = {}
        running = 0
        for hop in sorted(self.histogram):
            running += self.histogram[hop]
            result[hop] = running
        return result

    def max_hop(self) -> int:
        """Return the largest observed hop distance."""
        return max(self.histogram) if self.histogram else 0


def hop_plot(
    graph: Graph,
    sample_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> HopPlot:
    """Compute the (possibly sampled) hop plot of ``graph``.

    ``sample_size`` limits the number of BFS sources; None means exact.
    """
    nodes = list(graph.nodes())
    sampled = sample_size is not None and sample_size < len(nodes)
    if sampled:
        rng = random.Random(seed if seed is not None else 0)
        sources = rng.sample(nodes, sample_size)  # type: ignore[arg-type]
    else:
        sources = nodes
    return HopPlot(
        histogram=hop_histogram(graph, sources),
        num_sources=len(sources),
        sampled=sampled,
    )


def average_shortest_path_length(graph: Graph) -> float:
    """Return the mean hop distance over reachable ordered pairs (0 if none)."""
    histogram = hop_histogram(graph)
    total_pairs = sum(histogram.values())
    if total_pairs == 0:
        return 0.0
    weighted = sum(hop * count for hop, count in histogram.items())
    return weighted / total_pairs

"""Pairwise connection-subgraph baseline: delivered current (KDD 2004).

The paper contrasts its multi-source extractor with "the existing one [1]"
— Faloutsos, McCurley & Tomkins, *Fast discovery of connection subgraphs*,
KDD 2004 — which handles only pairwise source queries.  This module
implements that baseline so the benchmark for figure 5 can compare the two.

Model: the graph is an electrical network with edge conductances equal to
edge weights; the source vertex is held at voltage 1, the target grounded at
0, and a small "universal sink" (grounded, connected to every vertex with
conductance proportional to its degree times ``alpha``) penalises very long
detours exactly as in the original paper.  After solving for node voltages,
the *delivered current* along each path is computed and a display subgraph
of ``budget`` vertices is grown greedily by adding the end-to-end paths that
deliver the most current (dynamic programming on the DAG of decreasing
voltages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from ..errors import ExtractionError
from ..graph.graph import Graph, NodeId
from ..graph.matrix import PreparedGraph, VertexIndex, adjacency_matrix


@dataclass
class DeliveredCurrentResult:
    """Outcome of the pairwise delivered-current extraction."""

    subgraph: Graph
    source: NodeId
    target: NodeId
    voltages: Dict[NodeId, float]
    paths: List[List[NodeId]] = field(default_factory=list)
    delivered: List[float] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        """Number of vertices in the display subgraph."""
        return self.subgraph.num_nodes


def compute_voltages(
    graph: Graph,
    source: NodeId,
    target: NodeId,
    alpha: float = 1.0,
    grounding_fraction: float = 0.1,
    prepared: Optional[PreparedGraph] = None,
) -> Dict[NodeId, float]:
    """Solve the electrical network for node voltages.

    ``source`` is fixed at 1, ``target`` at 0, and every other vertex leaks
    to ground through a conductance ``grounding_fraction * alpha * degree``
    (the universal-sink trick from the KDD'04 paper that keeps current on
    short, high-conductance routes).  ``prepared`` supplies the CSR
    adjacency and degree vector without reconverting the graph.
    """
    if not graph.has_node(source):
        raise ExtractionError(f"source {source!r} is not in the graph")
    if not graph.has_node(target):
        raise ExtractionError(f"target {target!r} is not in the graph")
    if source == target:
        raise ExtractionError("delivered-current extraction needs distinct source/target")

    if prepared is not None:
        adjacency, index = prepared.adjacency, prepared.index
        degrees = prepared.degrees
    else:
        adjacency, index = adjacency_matrix(graph)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    n = len(index)
    ground = grounding_fraction * alpha * degrees
    # Laplacian with grounding on the diagonal.
    laplacian = sparse.diags(degrees + ground) - adjacency
    laplacian = laplacian.tolil()

    source_index = index.index_of(source)
    target_index = index.index_of(target)
    rhs = np.zeros(n)
    # Dirichlet conditions: overwrite the source and target rows.
    for fixed_index, value in ((source_index, 1.0), (target_index, 0.0)):
        laplacian.rows[fixed_index] = [fixed_index]
        laplacian.data[fixed_index] = [1.0]
        rhs[fixed_index] = value
    solution = spsolve(laplacian.tocsc(), rhs)
    solution = np.asarray(solution).ravel()
    return {index.node_at(i): float(solution[i]) for i in range(n)}


def _downhill_edges(
    graph: Graph, voltages: Dict[NodeId, float]
) -> Dict[NodeId, List[Tuple[NodeId, float]]]:
    """Return, per vertex, its strictly-downhill neighbours with edge currents."""
    downhill: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
    for u, v, w in graph.edges():
        vu, vv = voltages[u], voltages[v]
        if vu > vv:
            downhill.setdefault(u, []).append((v, w * (vu - vv)))
        elif vv > vu:
            downhill.setdefault(v, []).append((u, w * (vv - vu)))
    return downhill


def extract_delivered_current(
    graph: Graph,
    source: NodeId,
    target: NodeId,
    budget: int = 30,
    alpha: float = 1.0,
    grounding_fraction: float = 0.1,
    max_paths: int = 200,
    prepared: Optional[PreparedGraph] = None,
) -> DeliveredCurrentResult:
    """Extract a pairwise connection subgraph of at most ``budget`` vertices.

    Paths from source to target are enumerated greedily in order of the
    current they deliver (following only voltage-decreasing edges, so the
    search space is a DAG) and added while the vertex budget allows.
    """
    if budget < 2:
        raise ExtractionError("budget must allow at least the two query vertices")
    voltages = compute_voltages(
        graph, source, target, alpha=alpha, grounding_fraction=grounding_fraction,
        prepared=prepared,
    )
    downhill = _downhill_edges(graph, voltages)

    selected = {source, target}
    paths: List[List[NodeId]] = []
    delivered: List[float] = []

    for _ in range(max_paths):
        if len(selected) >= budget:
            break
        path, current = _best_current_path(downhill, source, target, selected, budget)
        if path is None:
            break
        for node in path:
            selected.add(node)
        paths.append(path)
        delivered.append(current)
        # Damp the used edges so the next iteration prefers fresh routes.
        for u, v in zip(path, path[1:]):
            entries = downhill.get(u, [])
            downhill[u] = [
                (node, flow * (0.5 if node == v else 1.0)) for node, flow in entries
            ]

    subgraph = graph.subgraph(selected, name=f"{graph.name}::delivered_current")
    return DeliveredCurrentResult(
        subgraph=subgraph,
        source=source,
        target=target,
        voltages=voltages,
        paths=paths,
        delivered=delivered,
    )


def _best_current_path(
    downhill: Dict[NodeId, List[Tuple[NodeId, float]]],
    source: NodeId,
    target: NodeId,
    selected: set,
    budget: int,
) -> Tuple[Optional[List[NodeId]], float]:
    """Greedy DFS over downhill edges maximising bottleneck delivered current.

    Vertices already selected are free with respect to the budget; the path
    is rejected if it would push the selection past ``budget``.
    """
    import heapq

    # Best-first search on negative bottleneck current.
    counter = 0
    heap: List[Tuple[float, int, NodeId, List[NodeId]]] = [(-float("inf"), counter, source, [source])]
    best_seen: Dict[NodeId, float] = {source: float("inf")}
    while heap:
        negative_bottleneck, _, node, path = heapq.heappop(heap)
        bottleneck = -negative_bottleneck
        if node == target:
            new_nodes = [vertex for vertex in path if vertex not in selected]
            if len(selected) + len(new_nodes) <= budget and new_nodes:
                return path, bottleneck
            if not new_nodes:
                # Entirely reused path adds nothing; skip and keep searching.
                continue
            continue
        for neighbor, flow in downhill.get(node, []):
            if neighbor in path:
                continue
            new_bottleneck = min(bottleneck, flow)
            if new_bottleneck <= best_seen.get(neighbor, 0.0):
                continue
            best_seen[neighbor] = new_bottleneck
            counter += 1
            heapq.heappush(heap, (-new_bottleneck, counter, neighbor, path + [neighbor]))
    return None, 0.0

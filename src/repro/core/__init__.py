"""GMine core: the G-Tree hierarchy, Tomahawk context, and interaction engine.

This package holds the paper's first headline idea — multi-resolution
exploration of a graph through a hierarchy of communities-within-communities
stored in the G-Tree — together with the engine that exposes every
interaction from the demo walkthrough programmatically.
"""

from .builder import GTreeBuildOptions, GTreeBuilder, build_gtree
from .editing import EditRecord, GraphEditor
from .connectivity import (
    connectivity_among_children,
    connectivity_between_groups,
    cross_edges,
    external_edge_count,
    internal_edge_count,
    isolation_profile,
)
from .engine import (
    EdgeInspection,
    GMineEngine,
    LabelQueryResult,
    NavigationEvent,
    NodeDetails,
)
from .gtree import ConnectivityEdge, GTree, GTreeNode
from .session import Bookmark, ExplorationSession, SessionStep
from .tomahawk import (
    TomahawkContext,
    clutter_reduction,
    drill_path,
    full_expansion_size,
    tomahawk_context,
)

__all__ = [
    "Bookmark",
    "ConnectivityEdge",
    "EdgeInspection",
    "EditRecord",
    "ExplorationSession",
    "GMineEngine",
    "GraphEditor",
    "SessionStep",
    "GTree",
    "GTreeBuildOptions",
    "GTreeBuilder",
    "GTreeNode",
    "LabelQueryResult",
    "NavigationEvent",
    "NodeDetails",
    "TomahawkContext",
    "build_gtree",
    "clutter_reduction",
    "connectivity_among_children",
    "connectivity_between_groups",
    "cross_edges",
    "drill_path",
    "external_edge_count",
    "full_expansion_size",
    "internal_edge_count",
    "isolation_profile",
    "tomahawk_context",
]

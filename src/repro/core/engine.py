"""The GMine engine: programmatic interactive exploration of a G-Tree.

The original system is a GUI; everything the demo paper shows the user doing
— focusing communities, drilling down, inspecting an outlier edge, running a
label query for "Jiawei Han", asking for metrics of the focused subgraph,
popping up node details — is exposed here as methods on
:class:`GMineEngine`, so examples, tests and benchmarks can script the same
interactions and the visualization layer can render each resulting state.

The engine works with either a fully in-memory :class:`~repro.core.gtree.GTree`
or a lazily loaded :class:`~repro.storage.gtree_store.GTreeStore`; in the
latter case leaf subgraphs are brought from disk only when the user focuses
them, matching the paper's "nodes are transferred to main memory only when
necessary".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import NavigationError
from ..graph.graph import Graph, NodeId
from ..mining.metrics_suite import SubgraphMetrics, compute_subgraph_metrics
from .connectivity import cross_edges
from .gtree import ConnectivityEdge, GTree, GTreeNode
from .tomahawk import TomahawkContext, clutter_reduction, tomahawk_context


@dataclass
class NodeDetails:
    """Details-on-demand for one graph vertex (the paper's pop-up)."""

    vertex: NodeId
    attributes: Dict[str, object]
    degree: int
    community_label: str
    community_path: List[str]
    neighbors: List[NodeId]


@dataclass
class EdgeInspection:
    """Result of inspecting the original edges behind a connectivity edge."""

    community_a: str
    community_b: str
    edges: List[Tuple[NodeId, NodeId, float]]
    endpoints: List[Dict[str, object]] = field(default_factory=list)


@dataclass
class LabelQueryResult:
    """Result of a label query: where a vertex lives in the hierarchy."""

    vertex: NodeId
    matched_value: object
    leaf_label: str
    path_labels: List[str]
    leaf_id: int


@dataclass
class NavigationEvent:
    """One entry of the engine's interaction history."""

    action: str
    target: str
    detail: str = ""


class GMineEngine:
    """Drives interactive exploration over a G-Tree (in-memory or stored)."""

    def __init__(
        self,
        tree: GTree,
        graph: Optional[Graph] = None,
        store: Optional["GTreeStore"] = None,  # noqa: F821 (forward ref, avoids hard dep)
        metrics_fn: Optional[Callable[[Graph, str, Optional[int]], SubgraphMetrics]] = None,
    ) -> None:
        """Create an engine.

        Parameters
        ----------
        tree:
            The hierarchy to navigate.
        graph:
            The full original graph.  Needed for cross-community edge
            inspection and for metrics of internal (non-leaf) communities;
            optional when working purely from a store.
        store:
            Open :class:`~repro.storage.gtree_store.GTreeStore` supplying leaf
            subgraphs on demand.
        metrics_fn:
            Seam for the metric computation: called as
            ``metrics_fn(subgraph, community_label, hop_sample_size)``.
            The service layer injects a cached implementation here so many
            sessions over one shared tree compute each suite once; the
            default computes directly.
        """
        self.tree = tree
        self.graph = graph
        self.store = store
        self.metrics_fn = metrics_fn
        self._focus_id: int = tree.root.node_id
        self.history: List[NavigationEvent] = []

    # ------------------------------------------------------------------ #
    # factory helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(cls, store, metrics_fn: Optional[Callable] = None) -> "GMineEngine":
        """Build an engine over a store (lazy leaf loading, no full graph)."""
        return cls(tree=store.tree, graph=None, store=store, metrics_fn=metrics_fn)

    # ------------------------------------------------------------------ #
    # focus and navigation
    # ------------------------------------------------------------------ #
    @property
    def focus(self) -> GTreeNode:
        """The currently focused community."""
        return self.tree.node(self._focus_id)

    def focus_community(self, target: Union[int, str]) -> TomahawkContext:
        """Focus a community by tree-node id or by label and return its context."""
        node = self._resolve(target)
        self._focus_id = node.node_id
        self._log("focus", node.label)
        return tomahawk_context(self.tree, node.node_id)

    def focus_root(self) -> TomahawkContext:
        """Reset the focus to the hierarchy root."""
        return self.focus_community(self.tree.root.node_id)

    def drill_down(self, child_index: int = 0) -> TomahawkContext:
        """Focus the ``child_index``-th child of the current focus."""
        children = self.tree.children(self._focus_id)
        if not children:
            raise NavigationError(
                f"community {self.focus.label!r} is a leaf; nothing to drill into"
            )
        if child_index < 0 or child_index >= len(children):
            raise NavigationError(
                f"community {self.focus.label!r} has {len(children)} children; "
                f"index {child_index} is out of range"
            )
        return self.focus_community(children[child_index].node_id)

    def drill_up(self) -> TomahawkContext:
        """Focus the parent of the current focus."""
        parent = self.tree.parent(self._focus_id)
        if parent is None:
            raise NavigationError("already at the root; cannot drill up")
        return self.focus_community(parent.node_id)

    def current_context(self) -> TomahawkContext:
        """Return the Tomahawk context of the current focus without moving it."""
        return tomahawk_context(self.tree, self._focus_id)

    def current_clutter_reduction(self) -> Dict[str, float]:
        """Return Tomahawk-vs-full item counts for the current focus."""
        return clutter_reduction(self.tree, self._focus_id)

    # ------------------------------------------------------------------ #
    # community content
    # ------------------------------------------------------------------ #
    def community_subgraph(self, target: Union[int, str, None] = None) -> Graph:
        """Return the induced subgraph of a community (focus by default).

        Leaf communities come from the attached subgraph or the store; for
        internal communities the subgraph is induced from the full graph.
        """
        node = self.focus if target is None else self._resolve(target)
        if node.is_leaf:
            if node.subgraph is not None:
                return node.subgraph
            if self.store is not None:
                return self.store.load_leaf_subgraph(node.node_id)
        if self.graph is not None:
            return self.graph.subgraph(node.members, name=node.label)
        raise NavigationError(
            f"cannot materialise community {node.label!r}: no subgraph attached, "
            "no store and no full graph available"
        )

    def connectivity_edges(self, target: Union[int, str, None] = None) -> List[ConnectivityEdge]:
        """Return the connectivity edges among a community's children."""
        node = self.focus if target is None else self._resolve(target)
        return list(node.connectivity)

    def community_metrics(
        self,
        target: Union[int, str, None] = None,
        hop_sample_size: Optional[int] = None,
    ) -> SubgraphMetrics:
        """Compute the paper's five metrics for a community's subgraph."""
        subgraph = self.community_subgraph(target)
        node = self.focus if target is None else self._resolve(target)
        self._log("metrics", node.label, f"n={subgraph.num_nodes}")
        if self.metrics_fn is not None:
            return self.metrics_fn(subgraph, node.label, hop_sample_size)
        return compute_subgraph_metrics(subgraph, hop_sample_size=hop_sample_size)

    # ------------------------------------------------------------------ #
    # queries and inspection
    # ------------------------------------------------------------------ #
    def label_query(
        self, value: object, attribute: Optional[str] = "name"
    ) -> LabelQueryResult:
        """Locate a graph vertex in the hierarchy (the "find Jiawei Han" action).

        ``attribute=None`` matches on the vertex id itself; otherwise the
        given node attribute is compared (author name by default).  Raises
        :class:`NavigationError` when nothing matches.
        """
        vertex = self._find_vertex(value, attribute)
        if vertex is None:
            raise NavigationError(f"label query found no vertex matching {value!r}")
        leaf = self.tree.leaf_of(vertex)
        path = [node.label for node in self.tree.path_to_root(leaf.node_id)]
        self._log("label_query", str(value), f"leaf={leaf.label}")
        return LabelQueryResult(
            vertex=vertex,
            matched_value=value,
            leaf_label=leaf.label,
            path_labels=path,
            leaf_id=leaf.node_id,
        )

    def locate_and_focus(self, value: object, attribute: Optional[str] = "name") -> TomahawkContext:
        """Label query followed by focusing the vertex's leaf community."""
        result = self.label_query(value, attribute)
        return self.focus_community(result.leaf_id)

    def node_details(self, vertex: NodeId) -> NodeDetails:
        """Details-on-demand for one graph vertex (pop-up information)."""
        if not self.tree.contains_vertex(vertex):
            raise NavigationError(f"vertex {vertex!r} is not in this G-Tree")
        leaf = self.tree.leaf_of(vertex)
        # Prefer the full graph (global degree and neighbour list, like the
        # original pop-up); fall back to the leaf's subgraph when only a
        # store is attached.
        if self.graph is not None and self.graph.has_node(vertex):
            degree = self.graph.degree(vertex)
            neighbors = list(self.graph.neighbors(vertex))
            attributes = dict(self.graph.node_attrs(vertex))
        else:
            subgraph = self.community_subgraph(leaf.node_id)
            if subgraph.has_node(vertex):
                degree = subgraph.degree(vertex)
                neighbors = list(subgraph.neighbors(vertex))
                attributes = dict(subgraph.node_attrs(vertex))
            else:
                degree, neighbors, attributes = 0, [], {}
        self._log("details", str(vertex))
        return NodeDetails(
            vertex=vertex,
            attributes=attributes,
            degree=degree,
            community_label=leaf.label,
            community_path=[node.label for node in self.tree.path_to_root(leaf.node_id)],
            neighbors=neighbors,
        )

    def inspect_connectivity_edge(
        self, community_a: Union[int, str], community_b: Union[int, str]
    ) -> EdgeInspection:
        """List the original edges behind the connectivity edge of two communities.

        This is the paper's outlier-edge workflow: the user sees a single
        connectivity edge between two otherwise isolated communities and asks
        which actual co-authorships it represents.
        """
        if self.graph is None:
            raise NavigationError("edge inspection requires the full graph")
        node_a = self._resolve(community_a)
        node_b = self._resolve(community_b)
        edges = cross_edges(self.graph, node_a.members, node_b.members)
        endpoints = []
        for u, v, w in edges:
            endpoints.append(
                {
                    "u": u,
                    "u_attrs": dict(self.graph.node_attrs(u)),
                    "v": v,
                    "v_attrs": dict(self.graph.node_attrs(v)),
                    "weight": w,
                    "edge_attrs": dict(self.graph.edge_attrs(u, v)),
                }
            )
        self._log("inspect_edge", f"{node_a.label}~{node_b.label}", f"{len(edges)} edges")
        return EdgeInspection(
            community_a=node_a.label,
            community_b=node_b.label,
            edges=edges,
            endpoints=endpoints,
        )

    def strongest_neighbors(
        self, vertex: NodeId, count: int = 5
    ) -> List[Tuple[NodeId, float]]:
        """Return the neighbours of ``vertex`` with the heaviest edges.

        Models the paper's figure 3(f): interacting with Jiawei Han's
        subgraph reveals Ke Wang as one of his main long-term collaborators
        (the heaviest co-authorship edge).
        """
        if self.graph is not None and self.graph.has_node(vertex):
            graph = self.graph
        else:
            graph = self.community_subgraph(self.tree.leaf_of(vertex).node_id)
        ranked = sorted(
            ((neighbor, graph.edge_weight(vertex, neighbor)) for neighbor in graph.neighbors(vertex)),
            key=lambda pair: (-pair[1], repr(pair[0])),
        )
        return ranked[:count]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _resolve(self, target: Union[int, str]) -> GTreeNode:
        """Resolve a community reference given as tree-node id or label."""
        if isinstance(target, str):
            if not self.tree.has_label(target):
                raise NavigationError(f"no community labelled {target!r}")
            return self.tree.by_label(target)
        if not self.tree.has_node(target):
            raise NavigationError(f"no community with id {target}")
        return self.tree.node(target)

    def _find_vertex(self, value: object, attribute: Optional[str]) -> Optional[NodeId]:
        """Find a vertex by id or by attribute value, searching leaves lazily."""
        if attribute is None:
            return value if self.tree.contains_vertex(value) else None
        if self.graph is not None:
            for vertex in self.graph.nodes():
                if self.graph.get_node_attr(vertex, attribute) == value:
                    return vertex
            return None
        # Store-backed search: scan leaf subgraphs (loaded on demand).
        for leaf in self.tree.leaves():
            subgraph = self.community_subgraph(leaf.node_id)
            for vertex in subgraph.nodes():
                if subgraph.get_node_attr(vertex, attribute) == value:
                    return vertex
        return None

    def _log(self, action: str, target: str, detail: str = "") -> None:
        self.history.append(NavigationEvent(action=action, target=target, detail=detail))

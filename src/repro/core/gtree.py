"""The G-Tree: an R-tree-like hierarchy of communities-within-communities.

The G-Tree (named after *Graph-Tree* in the paper) is the data structure
that supports GMine.  Each tree node represents a community; internal nodes
hold sub-communities and leaf nodes hold references to actual graph
vertices.  Sibling communities are linked by *connectivity edges* that carry
the number (and weight) of original graph edges crossing between them.

This module defines the in-memory structure and its invariants.  Building
one from a graph is :mod:`repro.core.builder`'s job, persisting it is
:mod:`repro.storage.gtree_store`'s, and navigating it interactively is
:mod:`repro.core.engine`'s.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import GTreeStructureError
from ..graph.graph import Graph, NodeId


@dataclass
class ConnectivityEdge:
    """Aggregated connection between two sibling communities.

    ``edge_count`` is the number of original graph edges with one endpoint
    in each community; ``total_weight`` sums their weights (for DBLP, the
    number of co-authored papers crossing the two communities).
    """

    source: int
    target: int
    edge_count: int
    total_weight: float

    def key(self) -> Tuple[int, int]:
        """Canonical (sorted) pair of community ids."""
        return (self.source, self.target) if self.source <= self.target else (self.target, self.source)


@dataclass
class GTreeNode:
    """One community (tree node) of the G-Tree.

    Attributes
    ----------
    node_id:
        Dense integer id unique within the tree (0 is the root).
    label:
        Human-readable community label (``s0``, ``s034`` ... as in the paper).
    level:
        Depth in the tree; the root is level 0.
    parent_id:
        Parent community id, or None for the root.
    children:
        Ids of sub-communities (empty for leaves).
    members:
        Graph vertices contained in this community's subtree.  Internal
        nodes keep the full member list so focusing anywhere in the tree can
        induce the right subgraph without touching the leaves below.
    connectivity:
        Connectivity edges *among this node's children* (the paper draws
        these when the community is expanded).
    subgraph:
        For leaf nodes only: the induced subgraph on ``members``; loaded
        lazily from disk when a store is attached, hence Optional.
    """

    node_id: int
    label: str
    level: int
    parent_id: Optional[int]
    children: List[int] = field(default_factory=list)
    members: List[NodeId] = field(default_factory=list)
    connectivity: List[ConnectivityEdge] = field(default_factory=list)
    subgraph: Optional[Graph] = None

    @property
    def is_leaf(self) -> bool:
        """Whether the community has no sub-communities."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """Whether this node is the hierarchy root."""
        return self.parent_id is None

    @property
    def size(self) -> int:
        """Number of graph vertices in this community's subtree."""
        return len(self.members)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return (
            f"<GTreeNode {self.node_id} {self.label!r} level={self.level} "
            f"size={self.size} ({kind})>"
        )


class GTree:
    """The full hierarchy plus indexes for navigation and label queries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: Dict[int, GTreeNode] = {}
        self._root_id: Optional[int] = None
        # vertex -> id of the leaf community holding it
        self._leaf_of_vertex: Dict[NodeId, int] = {}
        self._label_index: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # construction (used by the builder and the store loader)
    # ------------------------------------------------------------------ #
    def add_node(self, node: GTreeNode) -> None:
        """Register a tree node; the first node with ``parent_id=None`` is the root."""
        if node.node_id in self._nodes:
            raise GTreeStructureError(f"duplicate tree node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._label_index[node.label] = node.node_id
        if node.parent_id is None:
            if self._root_id is not None:
                raise GTreeStructureError("G-Tree already has a root")
            self._root_id = node.node_id

    def register_leaf_members(self, node: GTreeNode) -> None:
        """Index ``node``'s members as living in that leaf community."""
        for member in node.members:
            self._leaf_of_vertex[member] = node.node_id

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> GTreeNode:
        """Return the root community."""
        if self._root_id is None:
            raise GTreeStructureError("G-Tree has no root")
        return self._nodes[self._root_id]

    def node(self, node_id: int) -> GTreeNode:
        """Return the tree node with ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GTreeStructureError(f"no tree node with id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        """Whether a tree node with ``node_id`` exists."""
        return node_id in self._nodes

    def by_label(self, label: str) -> GTreeNode:
        """Return the community labelled ``label`` (e.g. ``"s034"``)."""
        try:
            return self._nodes[self._label_index[label]]
        except KeyError:
            raise GTreeStructureError(f"no community labelled {label!r}") from None

    def has_label(self, label: str) -> bool:
        """Whether a community with this label exists."""
        return label in self._label_index

    def leaf_of(self, vertex: NodeId) -> GTreeNode:
        """Return the leaf community containing graph vertex ``vertex``."""
        try:
            return self._nodes[self._leaf_of_vertex[vertex]]
        except KeyError:
            raise GTreeStructureError(
                f"graph vertex {vertex!r} is not indexed in this G-Tree"
            ) from None

    def contains_vertex(self, vertex: NodeId) -> bool:
        """Whether the G-Tree indexes graph vertex ``vertex``."""
        return vertex in self._leaf_of_vertex

    def children(self, node_id: int) -> List[GTreeNode]:
        """Return the child communities of ``node_id``."""
        return [self._nodes[child] for child in self.node(node_id).children]

    def parent(self, node_id: int) -> Optional[GTreeNode]:
        """Return the parent community, or None at the root."""
        parent_id = self.node(node_id).parent_id
        return None if parent_id is None else self._nodes[parent_id]

    def siblings(self, node_id: int) -> List[GTreeNode]:
        """Return the sibling communities (same parent, excluding the node itself)."""
        parent = self.parent(node_id)
        if parent is None:
            return []
        return [self._nodes[child] for child in parent.children if child != node_id]

    def ancestors(self, node_id: int) -> List[GTreeNode]:
        """Return ancestors from the immediate parent up to the root."""
        result = []
        current = self.parent(node_id)
        while current is not None:
            result.append(current)
            current = self.parent(current.node_id)
        return result

    def path_to_root(self, node_id: int) -> List[GTreeNode]:
        """Return the node itself followed by its ancestors up to the root."""
        return [self.node(node_id)] + self.ancestors(node_id)

    # ------------------------------------------------------------------ #
    # traversal and statistics
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[GTreeNode]:
        """Iterate over every tree node (insertion order: root first)."""
        return iter(self._nodes.values())

    def leaves(self) -> List[GTreeNode]:
        """Return all leaf communities."""
        return [node for node in self._nodes.values() if node.is_leaf]

    def nodes_at_level(self, level: int) -> List[GTreeNode]:
        """Return every community at tree depth ``level``."""
        return [node for node in self._nodes.values() if node.level == level]

    def depth(self) -> int:
        """Return the maximum level present (root = 0)."""
        if not self._nodes:
            return 0
        return max(node.level for node in self._nodes.values())

    @property
    def num_tree_nodes(self) -> int:
        """Total number of communities, including the root."""
        return len(self._nodes)

    @property
    def num_leaves(self) -> int:
        """Number of leaf communities."""
        return sum(1 for node in self._nodes.values() if node.is_leaf)

    def num_graph_vertices(self) -> int:
        """Number of original graph vertices indexed by the tree."""
        return len(self._leaf_of_vertex)

    def mean_leaf_size(self) -> float:
        """Average number of graph vertices per leaf community."""
        leaves = self.leaves()
        if not leaves:
            return 0.0
        return sum(leaf.size for leaf in leaves) / len(leaves)

    def summary(self) -> Dict[str, float]:
        """Headline statistics (mirrors the paper's '626 communities' style claims)."""
        leaf_sizes = [leaf.size for leaf in self.leaves()] or [0]
        return {
            "tree_nodes": self.num_tree_nodes,
            "leaf_communities": self.num_leaves,
            "paper_communities": self.num_leaves + 1,
            "depth": self.depth(),
            "graph_vertices": self.num_graph_vertices(),
            "mean_leaf_size": self.mean_leaf_size(),
            "min_leaf_size": float(min(leaf_sizes)),
            "max_leaf_size": float(max(leaf_sizes)),
        }

    def _leaf_digest_of(
        self, node: GTreeNode, leaf_digests: Optional[Dict[int, str]]
    ) -> str:
        """Leaf content digest for ``node`` from the supplied map or subgraph."""
        if leaf_digests is not None:
            return leaf_digests.get(node.node_id, "")
        if node.is_leaf and node.subgraph is not None:
            return node.subgraph.content_digest()
        return ""

    def partition_fingerprints(
        self, leaf_digests: Optional[Dict[int, str]] = None
    ) -> Dict[int, str]:
        """Per-community Merkle sub-fingerprints, keyed by tree-node id.

        Each community's sub-fingerprint covers its own identity record
        (id, label, level, lineage, members), its connectivity edges among
        children, its leaf content digest (for leaves) and — recursively —
        the sub-fingerprints of its children.  An edit confined to one leaf
        therefore changes the sub-fingerprints of that leaf and its
        ancestors only; every sibling subtree keeps its value, which is
        what lets cache entries and prepared views scoped to untouched
        communities survive a :func:`dataset.apply` edit.

        Cross-partition edges are captured through the ``connectivity``
        edges of the lowest common ancestor (count plus weight, as in the
        classic fingerprint), so inserting or reweighting an edge between
        two communities changes their ancestors' sub-fingerprints even
        though neither leaf subgraph contains the edge.

        ``leaf_digests`` plays the same role as in :meth:`fingerprint`:
        a store can supply the digests recorded in its skeleton so the
        map is computed without loading any leaf.
        """
        result: Dict[int, str] = {}

        def visit(node: GTreeNode) -> str:
            digest = hashlib.sha256()
            digest.update(
                repr(
                    (
                        node.node_id,
                        node.label,
                        node.level,
                        node.parent_id,
                        tuple(node.children),
                        tuple(repr(member) for member in node.members),
                        self._leaf_digest_of(node, leaf_digests),
                    )
                ).encode("utf-8")
            )
            for edge in node.connectivity:
                digest.update(
                    repr(
                        (edge.source, edge.target, edge.edge_count,
                         round(float(edge.total_weight), 9))
                    ).encode("utf-8")
                )
            for child_id in node.children:
                digest.update(visit(self._nodes[child_id]).encode("utf-8"))
            sub_fingerprint = digest.hexdigest()
            result[node.node_id] = sub_fingerprint
            return sub_fingerprint

        if self._root_id is not None:
            visit(self._nodes[self._root_id])
        return result

    def fingerprint(self, leaf_digests: Optional[Dict[int, str]] = None) -> str:
        """Content hash of the hierarchy, stable across save/load round trips.

        The service layer keys its result cache by this value: two engines
        over identical trees (e.g. one in-memory, one reopened from the
        store file written from it) share cache entries, while any change
        to membership, structure, connectivity or leaf subgraph content
        changes the key.

        The value is a Merkle-style root: every community contributes a
        sub-fingerprint covering its identity, members, connectivity and
        (for leaves) one content digest per leaf subgraph
        (:meth:`~repro.graph.graph.Graph.content_digest`), hashed bottom-up
        through :meth:`partition_fingerprints`; the dataset fingerprint
        hashes the tree name, node count and the root's sub-fingerprint.
        Any partition change therefore changes the root by construction,
        while untouched subtrees keep their sub-fingerprints.

        ``leaf_digests`` lets a caller that knows the leaf digests without
        materialising the subgraphs (the store keeps them in its skeleton)
        supply them; otherwise they are computed from attached subgraphs
        (leaves with no subgraph attached contribute an empty digest).
        """
        parts = self.partition_fingerprints(leaf_digests)
        digest = hashlib.sha256()
        digest.update(repr((self.name, self.num_tree_nodes)).encode("utf-8"))
        if self._root_id is not None:
            digest.update(parts[self._root_id].encode("utf-8"))
        return digest.hexdigest()

    def clone(self, copy_subgraphs: bool = True) -> "GTree":
        """Deep-copy the hierarchy (nodes, members, connectivity, indexes).

        The mutable-dataset write path edits a private clone and swaps it
        in atomically, so readers of the original tree never observe a
        half-applied edit script.  ``copy_subgraphs`` controls whether
        attached leaf subgraphs are copied too (they must be whenever the
        clone will be edited; a leaf with no subgraph attached stays
        unattached).
        """
        clone = GTree(name=self.name)
        for node in self._nodes.values():
            copied = GTreeNode(
                node_id=node.node_id,
                label=node.label,
                level=node.level,
                parent_id=node.parent_id,
                children=list(node.children),
                members=list(node.members),
                connectivity=[
                    ConnectivityEdge(
                        source=edge.source,
                        target=edge.target,
                        edge_count=edge.edge_count,
                        total_weight=edge.total_weight,
                    )
                    for edge in node.connectivity
                ],
            )
            if node.subgraph is not None:
                copied.subgraph = (
                    node.subgraph.copy() if copy_subgraphs else node.subgraph
                )
            clone.add_node(copied)
            if copied.is_leaf:
                clone.register_leaf_members(copied)
        return clone

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> List[str]:
        """Return a list of invariant violations (empty when the tree is sound).

        Checked invariants:

        * exactly one root, every ``parent_id``/``children`` pair consistent,
        * every internal node's members equal the union of its children's,
        * every vertex is indexed by exactly one leaf,
        * connectivity edges reference the node's own children.
        """
        problems: List[str] = []
        if self._root_id is None:
            return ["tree has no root"]
        for node in self._nodes.values():
            for child_id in node.children:
                if child_id not in self._nodes:
                    problems.append(f"node {node.node_id} lists unknown child {child_id}")
                    continue
                child = self._nodes[child_id]
                if child.parent_id != node.node_id:
                    problems.append(
                        f"child {child_id} of {node.node_id} claims parent {child.parent_id}"
                    )
            if not node.is_leaf:
                member_union = set()
                for child_id in node.children:
                    if child_id not in self._nodes:
                        continue  # already reported as an unknown child above
                    member_union.update(self._nodes[child_id].members)
                if member_union != set(node.members):
                    problems.append(
                        f"node {node.node_id} members differ from union of children "
                        f"({len(member_union)} vs {len(node.members)})"
                    )
            child_set = set(node.children)
            for edge in node.connectivity:
                if edge.source not in child_set or edge.target not in child_set:
                    problems.append(
                        f"node {node.node_id} has connectivity edge between "
                        f"{edge.source} and {edge.target} which are not its children"
                    )
        # Leaf coverage: every root member is indexed to exactly one leaf.
        root_members = set(self.root.members)
        indexed = set(self._leaf_of_vertex)
        if root_members != indexed:
            problems.append(
                f"leaf index covers {len(indexed)} vertices but the root holds "
                f"{len(root_members)}"
            )
        return problems

    def assert_valid(self) -> None:
        """Raise :class:`GTreeStructureError` listing every violated invariant."""
        problems = self.validate()
        if problems:
            raise GTreeStructureError(
                "G-Tree failed validation:\n  - " + "\n  - ".join(problems)
            )

    def __repr__(self) -> str:
        return (
            f"<GTree {self.name!r} with {self.num_tree_nodes} communities, "
            f"{self.num_leaves} leaves, depth {self.depth()}>"
        )

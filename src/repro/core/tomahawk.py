"""The Tomahawk principle: what to draw when the user focuses a community.

Drawing every expanded community at once causes sensory overload, so GMine
limits the display to "the desired node of interest, its sons and its
siblings", plotted inside the minimum enclosing ancestor — the set of nodes
reminded the authors of a tomahawk axe when highlighted on the tree
(figure 4).  This module computes that context set and quantifies how much
smaller it is than a full expansion (the clutter-reduction benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .gtree import GTree, GTreeNode


@dataclass
class TomahawkContext:
    """The set of tree nodes to display for one focused community."""

    focus: GTreeNode
    children: List[GTreeNode] = field(default_factory=list)
    siblings: List[GTreeNode] = field(default_factory=list)
    ancestors: List[GTreeNode] = field(default_factory=list)

    def visible_nodes(self) -> List[GTreeNode]:
        """Every community to draw: focus, children, siblings, ancestors."""
        return [self.focus] + self.children + self.siblings + self.ancestors

    def visible_ids(self) -> List[int]:
        """Ids of the visible communities (focus first, then deterministic order)."""
        return [node.node_id for node in self.visible_nodes()]

    @property
    def size(self) -> int:
        """Number of communities drawn under the Tomahawk principle."""
        return len(self.visible_nodes())

    def enclosing_node(self) -> GTreeNode:
        """The minimum community that visually contains the whole context.

        That is the focus's parent when it has one (children and siblings
        both live inside it), otherwise the focus itself (root focus).
        """
        return self.ancestors[0] if self.ancestors else self.focus


def tomahawk_context(tree: GTree, focus_id: int) -> TomahawkContext:
    """Compute the Tomahawk display context for community ``focus_id``."""
    focus = tree.node(focus_id)
    return TomahawkContext(
        focus=focus,
        children=tree.children(focus_id),
        siblings=tree.siblings(focus_id),
        ancestors=tree.ancestors(focus_id),
    )


def full_expansion_size(tree: GTree, focus_id: int, depth: Optional[int] = None) -> int:
    """Count communities drawn if the focus subtree were fully expanded.

    This is the clutter the Tomahawk principle avoids: the focused community
    plus every descendant (to ``depth`` levels below it, or all of them),
    plus its ancestors and siblings which a naive display would also keep.
    """
    focus = tree.node(focus_id)
    count = 0
    frontier = [focus]
    while frontier:
        node = frontier.pop()
        count += 1
        if depth is not None and node.level - focus.level >= depth:
            continue
        frontier.extend(tree.children(node.node_id))
    count += len(tree.siblings(focus_id)) + len(tree.ancestors(focus_id))
    return count


def clutter_reduction(tree: GTree, focus_id: int) -> Dict[str, float]:
    """Return Tomahawk-vs-full item counts and the reduction ratio."""
    context = tomahawk_context(tree, focus_id)
    full = full_expansion_size(tree, focus_id)
    return {
        "tomahawk_items": float(context.size),
        "full_expansion_items": float(full),
        "reduction_ratio": full / context.size if context.size else float("inf"),
    }


def drill_path(tree: GTree, labels: List[str]) -> List[TomahawkContext]:
    """Return the contexts produced by focusing each label in sequence.

    Models a user drilling down (figure 3's (a) → (b) → (c) sequence): each
    element is the display state after one more focus action.
    """
    return [tomahawk_context(tree, tree.by_label(label).node_id) for label in labels]

"""G-Tree construction from a graph.

Given a graph (and optionally a precomputed hierarchical partition), the
builder produces a :class:`~repro.core.gtree.GTree`:

1. recursively k-way partition the graph into communities-within-communities
   (:mod:`repro.partition.hierarchy`),
2. assign dense tree-node ids and the paper-style ``s...`` labels,
3. compute connectivity edges among every node's children,
4. attach the induced subgraph to each leaf community,
5. index every graph vertex to its leaf.

The paper's DBLP parameterisation — 5 levels of 5-way partitioning — is the
default; the builder reproduces its "5^4 + 1 = 626 communities averaging
~500 nodes" bookkeeping at any graph scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..graph.graph import Graph
from ..partition.hierarchy import (
    HierarchicalPartition,
    PartitionTreeNode,
    recursive_partition,
)
from ..partition.kway import KWayOptions
from .connectivity import connectivity_among_children
from .gtree import GTree, GTreeNode


@dataclass
class GTreeBuildOptions:
    """Parameters controlling G-Tree construction."""

    fanout: int = 5
    levels: int = 5
    min_community_size: Optional[int] = None
    seed: Optional[int] = 0
    attach_leaf_subgraphs: bool = True
    compute_connectivity: bool = True
    label_prefix: str = "s"


class GTreeBuilder:
    """Builds G-Trees from graphs (optionally reusing an existing hierarchy)."""

    def __init__(self, options: Optional[GTreeBuildOptions] = None) -> None:
        self.options = options or GTreeBuildOptions()

    def build(
        self,
        graph: Graph,
        hierarchy: Optional[HierarchicalPartition] = None,
    ) -> GTree:
        """Build and validate a G-Tree for ``graph``.

        Passing a precomputed ``hierarchy`` skips the (expensive) recursive
        partitioning — used when the same decomposition feeds several trees,
        e.g. in the ablation benchmarks.
        """
        options = self.options
        if hierarchy is None:
            hierarchy = recursive_partition(
                graph,
                fanout=options.fanout,
                levels=options.levels,
                min_community_size=options.min_community_size,
                options=KWayOptions(seed=options.seed),
                label_prefix=options.label_prefix,
            )
        tree = GTree(name=graph.name or "gtree")
        self._add_subtree(tree, graph, hierarchy.root, parent_id=None)
        tree.assert_valid()
        return tree

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _add_subtree(
        self,
        tree: GTree,
        graph: Graph,
        partition_node: PartitionTreeNode,
        parent_id: Optional[int],
    ) -> int:
        """Recursively convert a partition-tree node into a G-Tree node."""
        node_id = tree.num_tree_nodes
        tree_node = GTreeNode(
            node_id=node_id,
            label=partition_node.label,
            level=partition_node.level,
            parent_id=parent_id,
            members=list(partition_node.members),
        )
        tree.add_node(tree_node)

        if partition_node.is_leaf:
            if self.options.attach_leaf_subgraphs:
                tree_node.subgraph = graph.subgraph(
                    partition_node.members, name=partition_node.label
                )
            tree.register_leaf_members(tree_node)
            return node_id

        child_ids = []
        child_members: Dict[int, list] = {}
        for child in partition_node.children:
            child_id = self._add_subtree(tree, graph, child, parent_id=node_id)
            child_ids.append(child_id)
            child_members[child_id] = child.members
        tree_node.children = child_ids
        if self.options.compute_connectivity:
            tree_node.connectivity = connectivity_among_children(graph, child_members)
        return node_id


def build_gtree(
    graph: Graph,
    fanout: int = 5,
    levels: int = 5,
    seed: Optional[int] = 0,
    min_community_size: Optional[int] = None,
) -> GTree:
    """Convenience one-call builder with the paper's default parameters."""
    options = GTreeBuildOptions(
        fanout=fanout,
        levels=levels,
        seed=seed,
        min_community_size=min_community_size,
    )
    return GTreeBuilder(options).build(graph)

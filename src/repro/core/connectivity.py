"""Connectivity-edge computation.

When GMine displays a community expanded into its sub-communities it does
not draw the original edges; it draws one *connectivity edge* per pair of
sub-communities, annotated with how many original edges cross between them
(figure 2 of the paper).  This module computes those aggregates for any
grouping of graph vertices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..graph.graph import Graph, NodeId
from .gtree import ConnectivityEdge


def connectivity_between_groups(
    graph: Graph,
    membership: Mapping[NodeId, int],
) -> Dict[Tuple[int, int], ConnectivityEdge]:
    """Aggregate cross-group edges for an arbitrary vertex grouping.

    Parameters
    ----------
    membership:
        Maps each graph vertex to a group id.  Vertices absent from the map
        are ignored (they belong to communities outside the current view).

    Returns
    -------
    dict
        Keyed by the sorted group-id pair; each value counts the edges and
        sums the weights crossing that pair.  Intra-group edges are skipped.
    """
    edges: Dict[Tuple[int, int], ConnectivityEdge] = {}
    for u, v, w in graph.edges():
        group_u = membership.get(u)
        group_v = membership.get(v)
        if group_u is None or group_v is None or group_u == group_v:
            continue
        key = (group_u, group_v) if group_u <= group_v else (group_v, group_u)
        existing = edges.get(key)
        if existing is None:
            edges[key] = ConnectivityEdge(
                source=key[0], target=key[1], edge_count=1, total_weight=w
            )
        else:
            existing.edge_count += 1
            existing.total_weight += w
    return edges


def connectivity_among_children(
    graph: Graph,
    child_members: Mapping[int, Sequence[NodeId]],
) -> List[ConnectivityEdge]:
    """Connectivity edges among sibling communities given their member lists.

    ``child_members`` maps each child community id to the graph vertices in
    its subtree; the return value lists one :class:`ConnectivityEdge` per
    connected pair of children, sorted by (source, target) for determinism.
    """
    membership: Dict[NodeId, int] = {}
    for child_id, members in child_members.items():
        for member in members:
            membership[member] = child_id
    aggregated = connectivity_between_groups(graph, membership)
    return [aggregated[key] for key in sorted(aggregated)]


def internal_edge_count(graph: Graph, members: Iterable[NodeId]) -> Tuple[int, float]:
    """Return ``(count, weight)`` of edges with both endpoints in ``members``."""
    member_set = set(members)
    count = 0
    weight = 0.0
    for u, v, w in graph.edges():
        if u in member_set and v in member_set:
            count += 1
            weight += w
    return count, weight


def external_edge_count(graph: Graph, members: Iterable[NodeId]) -> Tuple[int, float]:
    """Return ``(count, weight)`` of edges leaving the community ``members``."""
    member_set = set(members)
    count = 0
    weight = 0.0
    for u, v, w in graph.edges():
        inside_u = u in member_set
        inside_v = v in member_set
        if inside_u != inside_v:
            count += 1
            weight += w
    return count, weight


def cross_edges(
    graph: Graph,
    group_a: Iterable[NodeId],
    group_b: Iterable[NodeId],
) -> List[Tuple[NodeId, NodeId, float]]:
    """Return the original edges between two vertex groups.

    This is what powers the paper's outlier-edge inspection: once the user
    notices a single connectivity edge between two otherwise isolated
    communities (the "D. B. Miller"/"R. G. Stockton" example), the system
    lists the underlying graph edges so they can be examined individually.
    """
    set_a = set(group_a)
    set_b = set(group_b)
    found = []
    for u, v, w in graph.edges():
        if (u in set_a and v in set_b) or (u in set_b and v in set_a):
            found.append((u, v, w))
    return found


def isolation_profile(
    graph: Graph, child_members: Mapping[int, Sequence[NodeId]]
) -> Dict[int, int]:
    """For each child community, count how many siblings it connects to.

    The paper's figure 3 narrative ("2 first-level communities are relatively
    isolated ... totally isolated among their sub communities") is exactly a
    statement about this profile; the navigation benchmark reports it.
    """
    edges = connectivity_among_children(graph, child_members)
    profile: Dict[int, int] = {child_id: 0 for child_id in child_members}
    for edge in edges:
        profile[edge.source] += 1
        profile[edge.target] += 1
    return profile

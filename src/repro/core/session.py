"""Exploration sessions: bookmarks, recording, and replay.

The VLDB demonstration lets conference attendees drive GMine live; a useful
companion (and a natural extension of the engine's history log) is the
ability to record an exploration session — every focus change, query and
inspection — save it as JSON, and replay it later against the same or a
rebuilt G-Tree.  This powers the reproducible "figure 3 walkthrough" example
and gives downstream users scriptable demos.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import NavigationError
from .engine import GMineEngine

PathLike = Union[str, Path]

SESSION_FORMAT = "gmine-session"
SESSION_VERSION = 1


@dataclass
class SessionStep:
    """One recorded interaction."""

    action: str
    arguments: Dict[str, Any] = field(default_factory=dict)
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {"action": self.action, "arguments": self.arguments, "note": self.note}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionStep":
        return cls(
            action=str(payload["action"]),
            arguments=dict(payload.get("arguments", {})),
            note=str(payload.get("note", "")),
        )


@dataclass
class Bookmark:
    """A named focus position the user wants to return to."""

    name: str
    community_label: str
    note: str = ""


class ExplorationSession:
    """Records interactions performed through it and replays them later.

    The session wraps an engine: calling the wrapped interaction methods both
    forwards to the engine and appends a replayable step.  Only
    tree-addressable arguments (labels, attribute values) are recorded, so a
    saved session replays against any engine whose hierarchy has the same
    labels — including one rebuilt from the stored G-Tree file.
    """

    def __init__(self, engine: GMineEngine, name: str = "session") -> None:
        self.engine = engine
        self.name = name
        self.steps: List[SessionStep] = []
        self.bookmarks: Dict[str, Bookmark] = {}

    # ------------------------------------------------------------------ #
    # recorded interactions
    # ------------------------------------------------------------------ #
    def focus(self, community_label: str, note: str = ""):
        """Focus a community by label (recorded)."""
        context = self.engine.focus_community(community_label)
        self.steps.append(SessionStep("focus", {"label": community_label}, note))
        return context

    def drill_down(self, child_index: int = 0, note: str = ""):
        """Drill into a child of the current focus (recorded)."""
        context = self.engine.drill_down(child_index)
        self.steps.append(SessionStep("drill_down", {"child_index": child_index}, note))
        return context

    def drill_up(self, note: str = ""):
        """Move the focus to the parent community (recorded)."""
        context = self.engine.drill_up()
        self.steps.append(SessionStep("drill_up", {}, note))
        return context

    def label_query(self, value, attribute: Optional[str] = "name", note: str = ""):
        """Run a label query (recorded)."""
        result = self.engine.label_query(value, attribute=attribute)
        self.steps.append(
            SessionStep("label_query", {"value": value, "attribute": attribute}, note)
        )
        return result

    def locate_and_focus(self, value, attribute: Optional[str] = "name", note: str = ""):
        """Label query followed by focusing the result's community (recorded)."""
        context = self.engine.locate_and_focus(value, attribute=attribute)
        self.steps.append(
            SessionStep("locate_and_focus", {"value": value, "attribute": attribute}, note)
        )
        return context

    def community_metrics(self, note: str = ""):
        """Compute metrics for the focused community (recorded)."""
        metrics = self.engine.community_metrics()
        self.steps.append(SessionStep("community_metrics", {}, note))
        return metrics

    def inspect_connectivity_edge(self, community_a: str, community_b: str, note: str = ""):
        """Inspect the original edges behind a connectivity edge (recorded)."""
        inspection = self.engine.inspect_connectivity_edge(community_a, community_b)
        self.steps.append(
            SessionStep(
                "inspect_connectivity_edge",
                {"community_a": community_a, "community_b": community_b},
                note,
            )
        )
        return inspection

    # ------------------------------------------------------------------ #
    # generic step application (replay + the protocol's session endpoints)
    # ------------------------------------------------------------------ #
    #: action name -> (session, arguments) -> result; one table drives both
    #: replay of recorded sessions and remote ``/v1/sessions/<id>/step``.
    _STEP_ACTIONS = {
        "focus": lambda session, args: session.focus(args["label"]),
        "drill_down": lambda session, args: session.drill_down(
            int(args.get("child_index", 0))
        ),
        "drill_up": lambda session, args: session.drill_up(),
        "label_query": lambda session, args: session.label_query(
            args["value"], attribute=args.get("attribute", "name")
        ),
        "locate_and_focus": lambda session, args: session.locate_and_focus(
            args["value"], attribute=args.get("attribute", "name")
        ),
        "community_metrics": lambda session, args: session.community_metrics(),
        "inspect_connectivity_edge": lambda session, args: (
            session.inspect_connectivity_edge(
                args["community_a"], args["community_b"]
            )
        ),
        "bookmark": lambda session, args: session.bookmark(
            args["name"], note=str(args.get("note", ""))
        ),
        "goto_bookmark": lambda session, args: session.goto_bookmark(args["name"]),
    }

    @classmethod
    def step_actions(cls) -> List[str]:
        """Names of every action :meth:`apply_step` understands."""
        return sorted(cls._STEP_ACTIONS)

    def apply_step(self, action: str, arguments: Dict[str, Any]):
        """Apply one named interaction (the step vocabulary of the protocol).

        Raises :class:`NavigationError` for unknown actions and for
        missing arguments, so remote callers get a structured error
        instead of a raw ``KeyError``.
        """
        handler = self._STEP_ACTIONS.get(action)
        if handler is None:
            raise NavigationError(
                f"unknown session action {action!r}; "
                f"expected one of {self.step_actions()}"
            )
        try:
            return handler(self, arguments)
        except KeyError as error:
            raise NavigationError(
                f"session action {action!r} is missing argument {error}"
            ) from error

    # ------------------------------------------------------------------ #
    # bookmarks
    # ------------------------------------------------------------------ #
    def bookmark(self, name: str, note: str = "") -> Bookmark:
        """Bookmark the current focus under ``name``."""
        mark = Bookmark(name=name, community_label=self.engine.focus.label, note=note)
        self.bookmarks[name] = mark
        return mark

    def goto_bookmark(self, name: str):
        """Jump back to a bookmarked community (recorded as a focus step)."""
        if name not in self.bookmarks:
            raise NavigationError(f"no bookmark named {name!r}")
        return self.focus(self.bookmarks[name].community_label,
                          note=f"bookmark:{name}")

    # ------------------------------------------------------------------ #
    # persistence and replay
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise the session to a JSON-compatible dict.

        The payload carries everything needed to resume elsewhere: the
        recorded steps, the bookmarks, and the label of the community
        currently in focus (so a restored session starts where this one
        stopped, without replaying the whole history).
        """
        return {
            "format": SESSION_FORMAT,
            "version": SESSION_VERSION,
            "name": self.name,
            "focus": self.engine.focus.label,
            "steps": [step.as_dict() for step in self.steps],
            "bookmarks": [
                {"name": mark.name, "community": mark.community_label, "note": mark.note}
                for mark in self.bookmarks.values()
            ],
        }

    @classmethod
    def restore(
        cls, engine: GMineEngine, payload: Dict[str, Any], strict: bool = True
    ) -> "ExplorationSession":
        """Rebuild a session from a ``to_dict`` payload without replaying it.

        The focus is re-applied directly and bookmarks/steps are reinstated
        verbatim, so resuming is O(1) in the recorded history.  With
        ``strict=False`` a focus label that no longer exists (regenerated
        dataset) falls back to the root instead of raising.
        """
        if payload.get("format") != SESSION_FORMAT:
            raise NavigationError("payload is not a serialised GMine session")
        session = cls(engine, name=str(payload.get("name", "session")))
        session.steps = [
            SessionStep.from_dict(step) for step in payload.get("steps", [])
        ]
        for mark in payload.get("bookmarks", []):
            session.bookmarks[str(mark["name"])] = Bookmark(
                name=str(mark["name"]),
                community_label=str(mark["community"]),
                note=str(mark.get("note", "")),
            )
        focus = payload.get("focus")
        if focus is not None:
            try:
                engine.focus_community(str(focus))
            except NavigationError:
                if strict:
                    raise
                engine.focus_root()
        return session

    def save(self, path: PathLike) -> Path:
        """Write the session to ``path`` as JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=str), encoding="utf-8")
        return path

    @classmethod
    def load_steps(cls, path: PathLike) -> List[SessionStep]:
        """Read the replayable steps from a saved session file."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != SESSION_FORMAT:
            raise NavigationError(f"{path} is not a GMine session file")
        return [SessionStep.from_dict(step) for step in payload.get("steps", [])]

    @classmethod
    def replay(
        cls, engine: GMineEngine, steps: List[SessionStep], strict: bool = True
    ) -> "ExplorationSession":
        """Re-execute recorded steps against ``engine`` and return the new session.

        With ``strict=False`` steps that fail (for example a label query for
        an author who is absent from a regenerated dataset) are skipped
        instead of aborting the replay.
        """
        session = cls(engine, name="replay")
        for step in steps:
            if step.action not in cls._STEP_ACTIONS:
                if strict:
                    raise NavigationError(f"unknown session action {step.action!r}")
                continue
            try:
                session.apply_step(step.action, step.arguments)
            except NavigationError:
                if strict:
                    raise
        return session

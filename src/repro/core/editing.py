"""Graph editing with G-Tree consistency ("edition of nodes and edges").

Section III-B lists, among GMine's interactions, "edge expansion and edition
of nodes and edges".  Editing a graph that has already been organised into a
G-Tree is more than mutating the adjacency structure: community membership
lists, leaf subgraphs and the connectivity edges between sibling communities
all have to stay consistent with the underlying graph.

:class:`GraphEditor` applies edits to the full graph *and* incrementally
repairs the affected parts of the tree, recording every operation so the
session can be audited or undone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..errors import NavigationError
from ..graph.graph import Graph, NodeId
from .connectivity import connectivity_among_children
from .gtree import GTree, GTreeNode

#: Actions understood by :func:`apply_edit_script`, with their required keys.
EDIT_ACTIONS: Dict[str, Sequence[str]] = {
    "add_node": ("node",),
    "remove_node": ("node",),
    "add_edge": ("u", "v"),
    "remove_edge": ("u", "v"),
    "update_node_attrs": ("node", "attrs"),
}


@dataclass
class EditRecord:
    """One applied edit, with enough detail to undo it."""

    operation: str
    details: Dict[str, Any] = field(default_factory=dict)


class GraphEditor:
    """Applies node/edge edits to a graph and keeps its G-Tree consistent.

    Besides the audit log, the editor tracks which tree communities an edit
    session has touched (``touched_communities``): the leaf partitions whose
    content changed plus every ancestor whose Merkle sub-fingerprint is
    affected.  The service write path uses this to invalidate exactly the
    partitions that changed and nothing else.
    """

    def __init__(self, graph: Graph, tree: Optional[GTree] = None) -> None:
        self.graph = graph
        self.tree = tree
        self.log: List[EditRecord] = []
        #: Tree-node ids whose subtree content changed in this edit session.
        self.touched_communities: Set[int] = set()

    # ------------------------------------------------------------------ #
    # node edits
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node: NodeId,
        community: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Add a vertex; when a tree is attached, place it into ``community``.

        ``community`` names the leaf community that should adopt the vertex
        (required when a tree is attached, because every vertex must live in
        exactly one leaf).
        """
        if self.graph.has_node(node):
            raise NavigationError(f"vertex {node!r} already exists")
        if self.tree is not None:
            if community is None:
                raise NavigationError(
                    "adding a vertex to a G-Tree-managed graph requires a "
                    "target leaf community"
                )
            leaf = self.tree.by_label(community)
            if not leaf.is_leaf:
                raise NavigationError(f"community {community!r} is not a leaf")
        self.graph.add_node(node, **attrs)
        if self.tree is not None:
            leaf = self.tree.by_label(community)  # type: ignore[arg-type]
            self._adopt_vertex(leaf, node)
            if leaf.subgraph is not None:
                leaf.subgraph.add_node(node, **attrs)
        self.log.append(EditRecord("add_node", {"node": node, "community": community}))

    def remove_node(self, node: NodeId) -> None:
        """Remove a vertex and all its edges from the graph and the tree."""
        if not self.graph.has_node(node):
            raise NavigationError(f"vertex {node!r} does not exist")
        removed_edges = [(node, neighbor, self.graph.edge_weight(node, neighbor))
                         for neighbor in self.graph.neighbors(node)]
        self.graph.remove_node(node)
        affected_parents = set()
        if self.tree is not None and self.tree.contains_vertex(node):
            leaf = self.tree.leaf_of(node)
            self._mark_touched(leaf)
            # Removed edges may reach into other leaves; their partitions'
            # connectivity (and hence sub-fingerprints) change too.
            for _, neighbor, _ in removed_edges:
                if self.tree.contains_vertex(neighbor):
                    self._mark_touched(self.tree.leaf_of(neighbor))
            for ancestor in [leaf] + self.tree.ancestors(leaf.node_id):
                if node in ancestor.members:
                    ancestor.members.remove(node)
                if ancestor.parent_id is not None:
                    affected_parents.add(ancestor.parent_id)
            if leaf.subgraph is not None and leaf.subgraph.has_node(node):
                leaf.subgraph.remove_node(node)
            self.tree._leaf_of_vertex.pop(node, None)
            affected_parents.add(leaf.parent_id if leaf.parent_id is not None else leaf.node_id)
            self._refresh_connectivity(affected_parents)
        self.log.append(
            EditRecord("remove_node", {"node": node, "removed_edges": removed_edges})
        )

    def update_node_attrs(self, node: NodeId, **attrs: Any) -> None:
        """Update a vertex's attributes everywhere it is materialised."""
        if not self.graph.has_node(node):
            raise NavigationError(f"vertex {node!r} does not exist")
        previous = dict(self.graph.node_attrs(node))
        self.graph.node_attrs(node).update(attrs)
        if self.tree is not None and self.tree.contains_vertex(node):
            leaf = self.tree.leaf_of(node)
            if leaf.subgraph is not None and leaf.subgraph.has_node(node):
                leaf.subgraph.node_attrs(node).update(attrs)
            self._mark_touched(leaf)
        self.log.append(
            EditRecord("update_node_attrs", {"node": node, "previous": previous})
        )

    # ------------------------------------------------------------------ #
    # edge edits
    # ------------------------------------------------------------------ #
    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0, **attrs: Any) -> None:
        """Add (or re-weight) an edge, updating leaf subgraphs and connectivity."""
        for endpoint in (u, v):
            if not self.graph.has_node(endpoint):
                raise NavigationError(f"vertex {endpoint!r} does not exist")
        self.graph.add_edge(u, v, weight=weight)
        if attrs:
            self.graph.edge_attrs(u, v).update(attrs)
        if self.tree is not None:
            self._sync_edge(u, v, present=True, weight=weight)
        self.log.append(EditRecord("add_edge", {"u": u, "v": v, "weight": weight}))

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove an edge, updating leaf subgraphs and connectivity."""
        if not self.graph.has_edge(u, v):
            raise NavigationError(f"edge ({u!r}, {v!r}) does not exist")
        weight = self.graph.edge_weight(u, v)
        self.graph.remove_edge(u, v)
        if self.tree is not None:
            self._sync_edge(u, v, present=False, weight=weight)
        self.log.append(EditRecord("remove_edge", {"u": u, "v": v, "weight": weight}))

    # ------------------------------------------------------------------ #
    # undo
    # ------------------------------------------------------------------ #
    def undo_last(self) -> Optional[EditRecord]:
        """Undo the most recent edit (best effort) and return its record."""
        if not self.log:
            return None
        record = self.log.pop()
        if record.operation == "add_edge":
            self.graph.remove_edge(record.details["u"], record.details["v"])
            if self.tree is not None:
                self._sync_edge(record.details["u"], record.details["v"],
                                present=False, weight=record.details["weight"])
        elif record.operation == "remove_edge":
            self.graph.add_edge(record.details["u"], record.details["v"],
                                weight=record.details["weight"])
            if self.tree is not None:
                self._sync_edge(record.details["u"], record.details["v"],
                                present=True, weight=record.details["weight"])
        elif record.operation == "add_node":
            node = record.details["node"]
            # Reuse remove_node but drop the extra record it appends.
            self.remove_node(node)
            self.log.pop()
        elif record.operation == "update_node_attrs":
            node = record.details["node"]
            previous = dict(record.details["previous"])
            self.graph._node_attrs[node] = dict(previous)
            if self.tree is not None and self.tree.contains_vertex(node):
                leaf = self.tree.leaf_of(node)
                if leaf.subgraph is not None and leaf.subgraph.has_node(node):
                    leaf.subgraph._node_attrs[node] = dict(previous)
                self._mark_touched(leaf)
        elif record.operation == "remove_node":
            node = record.details["node"]
            # Re-adding a removed vertex without a tree placement is only
            # supported for tree-less editors; with a tree the caller should
            # re-add explicitly with a community.
            if self.tree is None:
                self.graph.add_node(node)
                for u, v, w in record.details["removed_edges"]:
                    self.graph.add_edge(u, v, weight=w)
            else:
                self.log.append(record)
                raise NavigationError(
                    "undo of remove_node on a G-Tree-managed graph is not supported; "
                    "re-add the vertex with add_node(..., community=...)"
                )
        return record

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _mark_touched(self, leaf: GTreeNode) -> None:
        """Record ``leaf`` and every ancestor as touched by this session."""
        assert self.tree is not None
        self.touched_communities.add(leaf.node_id)
        for ancestor in self.tree.ancestors(leaf.node_id):
            self.touched_communities.add(ancestor.node_id)

    def _adopt_vertex(self, leaf: GTreeNode, node: NodeId) -> None:
        """Insert a new vertex into a leaf community and all its ancestors."""
        assert self.tree is not None
        leaf.members.append(node)
        for ancestor in self.tree.ancestors(leaf.node_id):
            ancestor.members.append(node)
        self.tree._leaf_of_vertex[node] = leaf.node_id
        self._mark_touched(leaf)

    def _sync_edge(self, u: NodeId, v: NodeId, present: bool, weight: float) -> None:
        """Propagate an edge change into leaf subgraphs and connectivity edges."""
        assert self.tree is not None
        if not (self.tree.contains_vertex(u) and self.tree.contains_vertex(v)):
            return
        leaf_u = self.tree.leaf_of(u)
        leaf_v = self.tree.leaf_of(v)
        self._mark_touched(leaf_u)
        self._mark_touched(leaf_v)
        if leaf_u.node_id == leaf_v.node_id:
            if leaf_u.subgraph is not None:
                if present:
                    leaf_u.subgraph.add_edge(u, v, weight=weight)
                elif leaf_u.subgraph.has_edge(u, v):
                    leaf_u.subgraph.remove_edge(u, v)
        # Connectivity edges must be refreshed on every ancestor whose children
        # separate u from v (the lowest common ancestor and nothing below it,
        # but refreshing every shared ancestor is simpler and still cheap).
        ancestors_u = {node.node_id for node in [leaf_u] + self.tree.ancestors(leaf_u.node_id)}
        affected = set()
        current: Optional[GTreeNode] = leaf_v
        while current is not None:
            if current.node_id in ancestors_u:
                affected.add(current.node_id)
            current = self.tree.parent(current.node_id)
        self._refresh_connectivity(affected)

    def _refresh_connectivity(self, node_ids) -> None:
        """Recompute connectivity edges for the given internal tree nodes."""
        assert self.tree is not None
        for node_id in node_ids:
            if node_id is None or not self.tree.has_node(node_id):
                continue
            node = self.tree.node(node_id)
            if node.is_leaf:
                continue
            child_members = {
                child_id: self.tree.node(child_id).members for child_id in node.children
            }
            node.connectivity = connectivity_among_children(self.graph, child_members)


def validate_edit_script(script: Sequence[Mapping[str, Any]]) -> None:
    """Raise :class:`NavigationError` when an edit script is malformed.

    A script is a sequence of mappings, each with an ``action`` key from
    :data:`EDIT_ACTIONS` plus that action's required keys.  Validation is
    structural only — existence of vertices/edges is checked at apply time
    against the live graph.
    """
    if not isinstance(script, (list, tuple)):
        raise NavigationError("edit script must be a list of edit records")
    for position, edit in enumerate(script):
        if not isinstance(edit, Mapping):
            raise NavigationError(f"edit #{position} is not a mapping: {edit!r}")
        action = edit.get("action")
        if action not in EDIT_ACTIONS:
            raise NavigationError(
                f"edit #{position} has unknown action {action!r}; "
                f"expected one of {sorted(EDIT_ACTIONS)}"
            )
        missing = [key for key in EDIT_ACTIONS[action] if key not in edit]
        if missing:
            raise NavigationError(
                f"edit #{position} ({action}) is missing keys {missing}"
            )
        if action == "update_node_attrs" and not isinstance(edit["attrs"], Mapping):
            raise NavigationError(f"edit #{position}: 'attrs' must be a mapping")


def apply_edit_script(
    editor: GraphEditor, script: Iterable[Mapping[str, Any]]
) -> List[EditRecord]:
    """Apply a batched edit script through ``editor`` and return its records.

    Edits run in order; the first failing edit raises and leaves the editor
    mid-script, so callers that need atomicity should apply the script to a
    private copy of the graph/tree (the service write path does exactly
    that) or undo the returned records.
    """
    script = list(script)
    validate_edit_script(script)
    applied: List[EditRecord] = []
    start = len(editor.log)
    for edit in script:
        action = edit["action"]
        if action == "add_node":
            attrs = dict(edit.get("attrs") or {})
            editor.add_node(edit["node"], community=edit.get("community"), **attrs)
        elif action == "remove_node":
            editor.remove_node(edit["node"])
        elif action == "add_edge":
            attrs = dict(edit.get("attrs") or {})
            editor.add_edge(
                edit["u"], edit["v"], weight=float(edit.get("weight", 1.0)), **attrs
            )
        elif action == "remove_edge":
            editor.remove_edge(edit["u"], edit["v"])
        elif action == "update_node_attrs":
            editor.update_node_attrs(edit["node"], **dict(edit["attrs"]))
        applied = editor.log[start:]
    return applied

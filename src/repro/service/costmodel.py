"""Measured-cost venue selection for :class:`~repro.service.executors.AutoBackend`.

The auto backend's original rule was a static cost-class table: expensive
ops go to the process pool when the host has cores, everything else runs
inline.  ``BENCH_exec.json`` has never validated that rule on a real
multi-core host — and on the single-core CI box it is actively wrong for
some ops.  Following the Tunable-LSH idea (adapt physical decisions to
the *measured* workload), this module keeps a small per-``(op, venue)``
latency table:

* **seeded** from the repository's own benchmark artifacts
  (``benchmarks/BENCH_exec.json`` per-venue per-request seconds,
  ``benchmarks/BENCH_kernels.json`` warm kernel medians as inline
  estimates), so a fresh service starts from real measurements rather
  than guesses;
* **updated online** with an exponentially-weighted moving average of the
  latencies the auto backend actually observes, so the model tracks the
  live host, not the bench host;
* **persisted** as a small JSON table next to the result-cache DB
  (atomic ``os.replace`` writes), so restarts keep what traffic taught.

Selection is deliberately conservative: a venue can displace the static
rule's choice only when *both* have measurements and the challenger's
predicted cost is strictly lower.  That makes the acceptance bar — "never
choose a venue whose measured median is worse than the static choice's"
— true by construction, and means an empty model behaves exactly like
the static rule (which keeps the pre-existing auto-backend tests valid).
"""

from __future__ import annotations

import json
import logging
import os
import threading
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

#: Persisted-table schema version.
COST_MODEL_VERSION = 1

#: Observations between automatic persists (plus one at ``close()``).
SAVE_EVERY = 32

#: Breaker-aware feedback factors (PR 9 follow-up): how much an open /
#: half-open circuit inflates its venue's predicted cost.  Open means the
#: venue is actively quarantined — predictions there should lose to any
#: healthy alternative with a real measurement; half-open lets a trickle
#: through while the backend probes recovery.
BREAKER_OPEN_PENALTY = 64.0
BREAKER_HALF_OPEN_PENALTY = 4.0


def _entry_key(operation: str, venue: str) -> str:
    return f"{operation}|{venue}"


class CostModel:
    """EWMA latency estimates per ``(operation, venue)`` with persistence.

    ``alpha`` is the EWMA weight of a new observation; 0.3 tracks venue
    drift within ~10 requests while smoothing scheduler noise.
    """

    def __init__(self, path: Optional[str] = None, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"cost model alpha must be in (0, 1], got {alpha}")
        self.path = path
        self.alpha = alpha
        self._lock = threading.Lock()
        #: ``"op|venue" -> {"ewma": seconds, "count": int, "source": str}``
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = 0
        if path is not None and os.path.exists(path):
            self.load(path)

    # ------------------------------------------------------------------ #
    # observations and predictions
    # ------------------------------------------------------------------ #
    def observe(self, operation: str, venue: str, seconds: float) -> None:
        """Fold one measured latency into the venue's EWMA."""
        if seconds < 0:
            return
        key = _entry_key(operation, venue)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry["count"] == 0:
                self._entries[key] = {
                    "ewma": float(seconds), "count": 1, "source": "observed",
                }
            else:
                entry["ewma"] += self.alpha * (float(seconds) - entry["ewma"])
                entry["count"] += 1
                entry["source"] = "observed"
            self._dirty += 1
            flush = self.path is not None and self._dirty >= SAVE_EVERY
        if flush:
            self.save()

    def seed(self, operation: str, venue: str, seconds: float,
             source: str = "seed") -> None:
        """Install a benchmark-derived estimate unless traffic already taught one."""
        key = _entry_key(operation, venue)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing["source"] == "observed":
                return
            self._entries[key] = {
                "ewma": float(seconds), "count": 0, "source": source,
            }

    def predict(self, operation: str, venue: str) -> Optional[float]:
        """Predicted latency in seconds, or ``None`` if never measured."""
        with self._lock:
            entry = self._entries.get(_entry_key(operation, venue))
            return None if entry is None else float(entry["ewma"])

    def choose(
        self, operation: str, eligible: Sequence[str], static: str,
        penalties: Optional[Mapping[str, float]] = None,
    ) -> Tuple[str, Dict[str, Any]]:
        """Pick a venue for ``operation`` among ``eligible``.

        Returns ``(venue, basis)`` where ``basis`` records the decision for
        ``/v1/stats``.  The static rule's choice is the baseline: it loses
        only to an eligible venue whose prediction is strictly below the
        static choice's own prediction — so with no (or one-sided)
        measurements the decision *is* the static rule.

        ``penalties`` multiplies a venue's predicted cost (breaker-aware
        feedback: an open circuit inflates its venue so traffic routes
        around the quarantine instead of queueing on fallbacks).  Applied
        to predictions only — a penalised venue with no measurement still
        follows the static rule, because there is nothing to inflate.
        """
        predictions = {
            venue: prediction
            for venue in eligible
            if (prediction := self.predict(operation, venue)) is not None
        }
        if penalties:
            predictions = {
                venue: value * float(penalties.get(venue, 1.0))
                for venue, value in predictions.items()
            }
        basis: Dict[str, Any] = {
            "static": static,
            "predicted_seconds": {
                venue: round(value, 6) for venue, value in predictions.items()
            },
        }
        if penalties:
            basis["penalties"] = {
                venue: float(factor) for venue, factor in sorted(penalties.items())
            }
        static_cost = predictions.get(static)
        if static_cost is None:
            basis["rule"] = "static"
            basis["reason"] = "no measurement for static choice"
            return static, basis
        best = min(predictions, key=lambda venue: (predictions[venue], venue))
        if predictions[best] < static_cost:
            basis["rule"] = "measured"
            basis["reason"] = (
                f"{best} predicted {predictions[best]:.6f}s "
                f"< {static} {static_cost:.6f}s"
            )
            return best, basis
        basis["rule"] = "static"
        basis["reason"] = "static choice has the lowest predicted cost"
        return static, basis

    # ------------------------------------------------------------------ #
    # benchmark seeding
    # ------------------------------------------------------------------ #
    def seed_from_bench(
        self,
        exec_path: Optional[str] = None,
        kernels_path: Optional[str] = None,
    ) -> int:
        """Seed estimates from the repo's benchmark artifacts; returns #seeded.

        ``BENCH_exec.json`` gives real per-venue per-request seconds for
        the ops its workload replays; ``BENCH_kernels.json`` warm medians
        fill inline estimates for kernels the exec bench does not cover.
        Missing or malformed files are skipped (benches are artifacts, not
        inputs the service may depend on).
        """
        seeded = 0
        exec_doc = _load_json(exec_path)
        if exec_doc:
            requests = exec_doc.get("requests", {})
            for venue, stats in exec_doc.get("backends", {}).items():
                if not isinstance(stats, Mapping):
                    continue
                for key, value in stats.items():
                    if not key.endswith("_seconds"):
                        continue
                    workload = key[: -len("_seconds")]
                    count = requests.get(workload)
                    operation = workload.split("_")[0]
                    if not count or not isinstance(value, (int, float)):
                        continue
                    self.seed(operation, venue, float(value) / float(count),
                              source="bench_exec")
                    seeded += 1
        kernels_doc = _load_json(kernels_path)
        if kernels_doc:
            for name, stats in kernels_doc.get("ops", {}).items():
                if not isinstance(stats, Mapping):
                    continue
                warm = stats.get("warm_median_seconds")
                operation = _kernel_bench_op(name)
                if operation is None or not isinstance(warm, (int, float)):
                    continue
                current = self.predict(operation, "inline")
                if current is None or warm < current:
                    self.seed(operation, "inline", float(warm),
                              source="bench_kernels")
                    seeded += 1
        return seeded

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def load(self, path: str) -> None:
        doc = _load_json(path)
        if not doc or doc.get("version") != COST_MODEL_VERSION:
            return
        entries = doc.get("entries")
        if not isinstance(entries, Mapping):
            return
        with self._lock:
            for key, entry in entries.items():
                if (
                    isinstance(entry, Mapping)
                    and isinstance(entry.get("ewma"), (int, float))
                ):
                    self._entries[key] = {
                        "ewma": float(entry["ewma"]),
                        "count": int(entry.get("count", 0)),
                        "source": str(entry.get("source", "persisted")),
                    }

    def save(self, path: Optional[str] = None) -> None:
        target = path or self.path
        if target is None:
            return
        with self._lock:
            doc = {
                "version": COST_MODEL_VERSION,
                "alpha": self.alpha,
                "entries": {
                    key: dict(entry) for key, entry in self._entries.items()
                },
            }
            self._dirty = 0
        tmp = f"{target}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
            os.replace(tmp, target)
        except OSError:  # pragma: no cover - persistence is best-effort
            logger.warning("failed to persist cost model to %s", target,
                           exc_info=True)
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def close(self) -> None:
        self.save()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly table for ``/v1/stats``."""
        with self._lock:
            return {
                "alpha": self.alpha,
                "path": self.path,
                "entries": {
                    key: {
                        "ewma_seconds": round(entry["ewma"], 6),
                        "count": entry["count"],
                        "source": entry["source"],
                    }
                    for key, entry in sorted(self._entries.items())
                },
            }


def _kernel_bench_op(bench_name: str) -> Optional[str]:
    """Map a BENCH_kernels op row to the service operation it measures."""
    if bench_name.startswith("rwr_exact"):
        return None  # exact solver rows are not the service's default path
    if bench_name.startswith("rwr"):
        return "rwr"
    if bench_name.startswith("metrics"):
        return "metrics"
    if bench_name.startswith("connection_subgraph"):
        return "connection_subgraph"
    if bench_name.startswith("path"):
        return "path"
    return None


def _load_json(path: Optional[str]) -> Optional[Dict[str, Any]]:
    if not path or not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        return doc if isinstance(doc, dict) else None
    except (OSError, ValueError):
        return None

"""The dataset lifecycle: registration, lookup, stats, and hot-reload.

A :class:`DatasetRegistry` owns every open dataset a
:class:`~repro.service.service.GMineService` serves: the shared tree, the
optional full graph, the backing :class:`~repro.storage.gtree_store.GTreeStore`,
and the content fingerprint that keys the result cache.  Pulling this out
of the service proper gives the lifecycle a seam of its own:

* a :class:`DatasetHandle` is an **immutable snapshot**: tree, graph,
  store and fingerprint always describe one consistent dataset state, so
  a request that resolved its handle before a reload keeps computing (and
  cache-keying) against exactly the content it started with;
* :meth:`DatasetRegistry.reload` reopens a store-backed dataset from its
  file (picking up a rebuilt ``.gtree``) and atomically **swaps in a new
  handle**, reporting the old fingerprint so the service can invalidate
  the stale cache entries — the machinery behind
  ``POST /v1/datasets/<name>/reload``.  The superseded store is *retired*,
  not closed: live sessions and in-flight queries still hold engines over
  it, and closing their pager mid-query would turn the typed-error
  guarantee into raw ``ValueError``\\ s.  Retired stores are closed when
  the registry drains at service shutdown;
* :meth:`DatasetHandle.exec_spec` flattens a dataset to the picklable
  :class:`~repro.service.executors.DatasetExecSpec` process workers use to
  reopen it by ``(path, fingerprint)``.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..api.plans import prepared_applies
from ..api.registry import CanonicalizationContext
from ..core.editing import GraphEditor, apply_edit_script
from ..core.engine import GMineEngine
from ..core.gtree import GTree
from ..errors import DatasetNotFoundError, DatasetReadOnlyError, ServiceError
from ..graph.graph import Graph
from ..graph.io import load_graph_auto
from ..graph.matrix import PreparedGraph, PreparedViewCache
from ..graph.shm import manifest_of, shared_memory_available
from ..storage.gtree_store import GTreeStore
from .executors import DatasetExecSpec

logger = logging.getLogger(__name__)

DEFAULT_DATASET = "default"


def partition_changes(
    old_tree: GTree,
    old_parts: Dict[int, str],
    new_tree: GTree,
    new_parts: Dict[int, str],
) -> "tuple[Dict[str, str], Dict[str, str]]":
    """Diff two partition-fingerprint maps by community label.

    Returns ``(changed, retired)``: ``changed`` maps each community label
    whose sub-fingerprint differs (or is new) to its **new** value — the
    payload change-feed subscribers receive; ``retired`` maps every label
    whose **old** sub-fingerprint is no longer served (changed or
    vanished) to that old value — the keys whose cache entries and
    prepared views are now stale.
    """
    old_by_label = {
        old_tree.node(node_id).label: digest
        for node_id, digest in old_parts.items()
        if old_tree.has_node(node_id)
    }
    changed: Dict[str, str] = {}
    retired: Dict[str, str] = {}
    for node_id, digest in new_parts.items():
        label = new_tree.node(node_id).label
        if old_by_label.get(label) != digest:
            changed[label] = digest
            if label in old_by_label:
                retired[label] = old_by_label[label]
    for label, digest in old_by_label.items():
        if not new_tree.has_label(label):
            retired[label] = digest
    return changed, retired


class _PreparedCell:
    """One lazily built, thread-safe :class:`PreparedGraph` slot.

    Lives on a :class:`DatasetHandle`, which is an immutable snapshot of
    one dataset state — so the cell's lifetime *is* the invalidation
    policy: a hot-reload swaps in a replacement handle with a fresh,
    empty cell, and the old preparation retires with the old handle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._prepared: Optional[PreparedGraph] = None

    def get(self, graph: Graph, fingerprint: str) -> PreparedGraph:
        with self._lock:
            if self._prepared is None:
                self._prepared = PreparedGraph.from_graph(
                    graph, fingerprint=fingerprint
                )
            return self._prepared

    @property
    def ready(self) -> bool:
        return self._prepared is not None


class DatasetContext(CanonicalizationContext):
    """Canonicalization context over one dataset's tree: ids -> labels."""

    def __init__(self, tree: GTree) -> None:
        self._tree = tree

    def resolve_community(self, value: Any) -> Any:
        # Communities may be addressed by tree-node id or label; key on the
        # label so both spellings share one cache entry.
        if isinstance(value, int) and self._tree.has_node(value):
            return self._tree.node(value).label
        return value

    @property
    def tree(self) -> GTree:
        return self._tree


@dataclass(frozen=True)
class DatasetHandle:
    """One registered dataset: shared tree, optional graph/store, fingerprint.

    Frozen on purpose: a handle is a consistent snapshot of one dataset
    state.  Hot-reload never mutates a handle — it swaps a replacement
    into the registry — so any code holding a handle (a dispatching
    request, a session's metrics closure) sees tree, store, context and
    fingerprint that always agree with each other.
    """

    name: str
    tree: GTree
    graph: Optional[Graph]
    store: Optional[GTreeStore]
    fingerprint: str
    owns_store: bool = False
    graph_path: Optional[str] = None
    context: Optional[DatasetContext] = None
    #: Per-community Merkle sub-fingerprints (tree-node id -> digest),
    #: computed once per handle; the scoped-cache and cursor machinery
    #: read them through :meth:`scope_fingerprint`.
    partition_fingerprints: Optional[Dict[int, str]] = field(
        default=None, repr=False, compare=False
    )
    #: Registry-shared, fingerprint-keyed PreparedGraph residency; views
    #: for untouched partitions survive handle swaps because their keys
    #: (sub-fingerprints) do.  ``None`` falls back to the per-handle cell.
    prepared_views: Optional[PreparedViewCache] = field(
        default=None, repr=False, compare=False
    )
    # Per-handle PreparedGraph slot (excluded from comparison/repr: it is
    # a cache, not part of the dataset's identity).
    prepared_cell: _PreparedCell = field(
        default_factory=_PreparedCell, repr=False, compare=False
    )
    #: Publish the widest-scope preparation into a shared-memory segment
    #: so process workers attach it zero-copy.  Set by the registry
    #: (:class:`DatasetRegistry` ``share_prepared``); only meaningful for
    #: datasets served with a full graph.
    share_prepared: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.context is None:
            object.__setattr__(self, "context", DatasetContext(self.tree))
        if self.partition_fingerprints is None:
            if self.store is not None:
                parts = self.store.partition_fingerprints
            else:
                parts = self.tree.partition_fingerprints()
            object.__setattr__(self, "partition_fingerprints", dict(parts))

    @property
    def store_path(self) -> Optional[str]:
        """The backing store file, when this dataset has one."""
        return None if self.store is None else str(self.store.path)

    def scope_fingerprint(self, community: Any = None) -> str:
        """The content fingerprint governing one request scope.

        ``None`` (widest scope) is the dataset's Merkle root; a community
        label or tree-node id resolves to that partition's sub-fingerprint.
        Unknown communities fall back to the root — strictly safe: the
        root changes on *every* edit, so a fallback key can never serve a
        stale entry, it only invalidates more than necessary.
        """
        if community is None:
            return self.fingerprint
        node_id: Optional[int] = None
        if isinstance(community, str) and self.tree.has_label(community):
            node_id = self.tree.by_label(community).node_id
        elif isinstance(community, int) and not isinstance(community, bool):
            if self.tree.has_node(community):
                node_id = community
        if node_id is None:
            return self.fingerprint
        assert self.partition_fingerprints is not None
        return self.partition_fingerprints.get(node_id, self.fingerprint)

    def prepared_graph(self) -> Optional[PreparedGraph]:
        """The dataset's widest-scope :class:`PreparedGraph` (built once).

        Only datasets served with a full graph have one — the widest scope
        of a store-only dataset is re-materialised per request and has no
        stable identity to prepare against.  When the registry shares a
        :class:`PreparedViewCache`, the view is keyed by the Merkle root
        there (so an unchanged dataset re-registered under a new handle —
        a no-op reload — reuses it); otherwise the per-handle cell serves.
        """
        if self.graph is None:
            return None
        if self.prepared_views is not None:
            return self.prepared_views.get(
                self.fingerprint, self._build_widest_prepared
            )
        return self.prepared_cell.get(self.graph, self.fingerprint)

    def _build_widest_prepared(self) -> PreparedGraph:
        """Build (and, when sharing, publish) the widest-scope preparation.

        Publishing moves the buffers into a shared segment the handle's
        :meth:`exec_spec` advertises to process workers; the parent's own
        kernels keep using the same instance (its arrays are views over
        the segment, bit-identical by construction).  Any publish failure
        degrades to a plain in-process preparation — sharing is a fast
        path, never a correctness dependency.
        """
        prepared = PreparedGraph.from_graph(self.graph, fingerprint=self.fingerprint)
        if self.share_prepared:
            from ..graph.shm import SharedPreparedGraph

            try:
                return SharedPreparedGraph.publish(prepared)
            except Exception:
                logger.warning(
                    "failed to publish shared prepared graph for %s; "
                    "serving in-process",
                    self.name, exc_info=True,
                )
        return prepared

    def community_prepared(
        self, scope: Any, subgraph: Any
    ) -> Optional[PreparedGraph]:
        """Sub-fingerprint-keyed preparation for a community-scope kernel.

        The materialised community subgraph is fresh per request, but its
        *content* is addressed by the partition's Merkle sub-fingerprint —
        so the first kernel run over a community pays the O(E) conversion
        and every later run (including runs after edits that did not touch
        this partition) reuses the view.  Scopes that do not resolve to a
        known partition convert cold, exactly as before.
        """
        if self.prepared_views is None or subgraph is None or scope is None:
            return None
        if not isinstance(scope, (str, int)) or isinstance(scope, bool):
            return None
        sub_fingerprint = self.scope_fingerprint(scope)
        if sub_fingerprint == self.fingerprint:
            # Unresolved scope (or the root community itself): the root
            # fingerprint key is reserved for the full-graph preparation.
            return None
        return self.prepared_views.get(
            sub_fingerprint,
            lambda: PreparedGraph.from_graph(subgraph, fingerprint=sub_fingerprint),
        )

    def prepared_provider(self, scope: Any, subgraph: Any) -> Optional[PreparedGraph]:
        """The :class:`~repro.api.ops.OpContext` hook for this handle.

        Widest scope hands out the full-graph preparation only where
        :func:`~repro.api.plans.prepared_applies` says it may serve: the
        kernel really running on this handle's full graph.  Community
        scopes are served by :meth:`community_prepared` when a shared
        view cache is attached.
        """
        if prepared_applies(scope, subgraph, self.graph):
            return self.prepared_graph()
        return self.community_prepared(scope, subgraph)

    @property
    def kind(self) -> str:
        return "store" if self.store is not None else "tree"

    def exec_spec(self) -> DatasetExecSpec:
        """Flatten to the picklable spec process workers reopen datasets by.

        When the widest-scope preparation has been published to shared
        memory, the spec carries its manifest so workers attach the
        segment instead of rebuilding the CSR.  ``peek`` (never ``get``):
        flattening a spec must not trigger an O(E) preparation build.
        """
        manifest = None
        if self.share_prepared and self.prepared_views is not None:
            manifest = manifest_of(self.prepared_views.peek(self.fingerprint))
        return DatasetExecSpec(
            name=self.name,
            fingerprint=self.fingerprint,
            store_path=self.store_path,
            graph_path=self.graph_path,
            has_graph=self.graph is not None,
            prepared_manifest=manifest,
        )

    def make_engine(self, metrics_fn: Optional[Callable] = None) -> GMineEngine:
        """A fresh engine over the shared tree (cheap: focus + history only)."""
        return GMineEngine(
            self.tree, graph=self.graph, store=self.store, metrics_fn=metrics_fn
        )

    @property
    def mutable(self) -> bool:
        """Whether ``dataset.apply`` may edit this dataset in place.

        Only datasets served from an in-memory tree *with* a full graph
        qualify: the store pager is read-only (rebuild + reload is the
        write path for store-backed data), and edits without the full
        graph could not repair connectivity edges.
        """
        return self.store is None and self.graph is not None

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly row for ``GET /v1/datasets`` and ``/v1/stats``."""
        prepared_ready = self.prepared_cell.ready
        if self.prepared_views is not None:
            prepared_ready = (
                prepared_ready
                or self.prepared_views.peek(self.fingerprint) is not None
            )
        return {
            "name": self.name,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "store_path": self.store_path,
            "graph_path": self.graph_path,
            "tree_nodes": self.tree.num_tree_nodes,
            "partitions": 0 if self.partition_fingerprints is None
            else len(self.partition_fingerprints),
            "mutable": self.mutable,
            "prepared": prepared_ready,
        }


class DatasetRegistry:
    """Thread-safe name -> :class:`DatasetHandle` table with hot-reload."""

    def __init__(
        self, prepared_capacity: int = 64, share_prepared: bool = False
    ) -> None:
        #: Publish widest-scope preparations into shared-memory segments
        #: (process workers attach them zero-copy).  Forced off where the
        #: platform has no POSIX shared memory.
        self.share_prepared = bool(share_prepared) and shared_memory_available()
        self._lock = threading.RLock()
        self._handles: Dict[str, DatasetHandle] = {}
        # Stores superseded by reload.  They stay open — sessions and
        # in-flight queries may still hold engines over them — and are
        # closed when the registry drains at shutdown.
        self._retired_stores: List[GTreeStore] = []
        # Serialises reloads against each other so the slow I/O (store
        # reopen, graph parse) can run outside ``_lock`` without two
        # reloads racing on the same handle swap.  ``apply`` shares it:
        # a writer and a reload must never race on the same handle swap.
        self._reload_lock = threading.Lock()
        # Fingerprint-keyed PreparedGraph residency shared by every handle
        # this registry ever creates — the reason prepared views survive
        # the handle swap an edit performs.
        self.prepared_views = PreparedViewCache(capacity=prepared_capacity)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_tree(
        self,
        tree: GTree,
        graph: Optional[Graph] = None,
        name: str = DEFAULT_DATASET,
    ) -> DatasetHandle:
        """Share an in-memory G-Tree (and optionally its full graph)."""
        handle = DatasetHandle(
            name=name, tree=tree, graph=graph, store=None,
            fingerprint=tree.fingerprint(),
            prepared_views=self.prepared_views,
            share_prepared=self.share_prepared,
        )
        return self._register(handle)

    def register_store(
        self,
        store: Union[GTreeStore, str, Path],
        graph: Optional[Graph] = None,
        name: str = DEFAULT_DATASET,
        graph_path: Optional[Union[str, Path]] = None,
    ) -> DatasetHandle:
        """Share a stored G-Tree; a path is opened (and owned) by the registry.

        ``graph_path`` tells process workers where to reload the full graph
        from; without it a dataset served with a live ``graph`` falls back
        to in-parent execution (the workers could not reproduce widest-scope
        results).
        """
        if graph is None and graph_path is not None:
            # Load the graph before opening the store: a bad graph file
            # must not leak a freshly opened pager.
            graph = load_graph_auto(graph_path)
        owns = not isinstance(store, GTreeStore)
        if owns:
            store = GTreeStore(store)
        try:
            handle = DatasetHandle(
                name=name, tree=store.tree, graph=graph, store=store,
                fingerprint=store.fingerprint, owns_store=owns,
                graph_path=None if graph_path is None else str(graph_path),
                prepared_views=self.prepared_views,
                share_prepared=self.share_prepared,
            )
            return self._register(handle)
        except Exception:
            if owns:
                store.close()
            raise

    def _register(self, handle: DatasetHandle) -> DatasetHandle:
        with self._lock:
            if handle.name in self._handles:
                raise ServiceError(f"dataset {handle.name!r} is already registered")
            self._handles[handle.name] = handle
            return handle

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._handles)

    def get(self, name: Optional[str]) -> DatasetHandle:
        """Resolve a dataset name (``None`` = the only/default dataset)."""
        with self._lock:
            if name is None:
                if len(self._handles) == 1:
                    return next(iter(self._handles.values()))
                if DEFAULT_DATASET in self._handles:
                    return self._handles[DEFAULT_DATASET]
                raise ServiceError(
                    "dataset name required: service has "
                    f"{len(self._handles)} datasets registered"
                )
            if name not in self._handles:
                raise DatasetNotFoundError(f"no dataset registered under {name!r}")
            return self._handles[name]

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._handles[name].describe() for name in sorted(self._handles)]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def reload(self, name: Optional[str]) -> Dict[str, Any]:
        """Reopen a dataset from its backing file; returns a change report.

        Store-backed datasets get a fresh :class:`GTreeStore` over the same
        path (picking up a rebuilt file) and, when ``graph_path`` is known,
        a freshly loaded graph; a **replacement handle** over the new
        resources is swapped into the registry atomically.  The superseded
        store is retired — kept open for the sessions and in-flight queries
        whose engines still read it — and closed at :meth:`drain`.  When
        the reopened content is byte-identical (``changed`` is false) the
        existing handle keeps serving and nothing is retired, so periodic
        no-op reloads cost no file handles.
        In-memory tree datasets get a re-fingerprinted handle over the same
        shared tree (covering live tree edits).  The caller is responsible
        for invalidating the previous fingerprint in its result cache — the
        report carries both fingerprints for exactly that.

        The slow part — reopening the store and re-parsing the graph file —
        happens *outside* the registry lock (queries on every dataset keep
        flowing during a multi-second reload); only the handle swap takes
        it.  Concurrent reloads are serialised by a dedicated mutex, so
        the handle read at the top is still the one swapped out below.
        """
        with self._reload_lock:
            with self._lock:
                handle = self.get(name)
            previous = handle.fingerprint
            if handle.store is not None:
                # Acquire every new resource *before* touching the registry:
                # a failed reopen or graph reload must leave the dataset
                # exactly as it was (fingerprint, store, graph, cache keys
                # all still consistent with each other).
                reopened = GTreeStore(handle.store.path)
                graph = handle.graph
                if handle.graph_path is not None:
                    try:
                        graph = load_graph_auto(handle.graph_path)
                    except Exception:
                        reopened.close()
                        raise
                replacement = DatasetHandle(
                    name=handle.name,
                    tree=reopened.tree,
                    graph=graph,
                    store=reopened,
                    fingerprint=reopened.fingerprint,
                    owns_store=True,
                    graph_path=handle.graph_path,
                    prepared_views=self.prepared_views,
                    share_prepared=handle.share_prepared,
                )
            else:
                replacement = DatasetHandle(
                    name=handle.name,
                    tree=handle.tree,
                    graph=handle.graph,
                    store=None,
                    fingerprint=handle.tree.fingerprint(),
                    graph_path=handle.graph_path,
                    context=handle.context,
                    prepared_views=self.prepared_views,
                    share_prepared=handle.share_prepared,
                )
            with self._lock:
                if self._handles.get(handle.name) is not handle:
                    # Drained (service shutdown) while we were reloading.
                    if replacement.store is not None:
                        replacement.store.close()
                    raise DatasetNotFoundError(
                        f"dataset {handle.name!r} was deregistered during reload"
                    )
                if handle.store is not None:
                    if replacement.fingerprint == previous:
                        # Same content: keep serving the existing handle
                        # and drop the redundant reopen, so periodic no-op
                        # reloads don't grow the retired-store parking lot.
                        replacement.store.close()
                        replacement = handle
                    elif handle.owns_store:
                        self._retired_stores.append(handle.store)
                self._handles[replacement.name] = replacement
            changed_partitions, retired_parts = partition_changes(
                handle.tree,
                dict(handle.partition_fingerprints or {}),
                replacement.tree,
                dict(replacement.partition_fingerprints or {}),
            )
            if replacement.fingerprint != previous:
                self.prepared_views.invalidate(previous)
                for stale in retired_parts.values():
                    self.prepared_views.invalidate(stale)
            return {
                "dataset": replacement.name,
                "kind": replacement.kind,
                "fingerprint": replacement.fingerprint,
                "previous_fingerprint": previous,
                "changed": replacement.fingerprint != previous,
                "changed_partitions": changed_partitions,
                "retired_partition_fingerprints": sorted(retired_parts.values()),
            }

    def apply(self, name: Optional[str], script: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Apply an edit script copy-on-write and swap in the edited handle.

        The write path mirrors :meth:`reload`'s discipline exactly —
        readers never block and never see a torn state:

        1. clone the current handle's graph and tree **outside** the
           registry lock (queries keep flowing while the script runs);
        2. run the script through :class:`~repro.core.editing.GraphEditor`
           against the private clone, then re-validate the tree;
        3. recompute the Merkle partition map and root fingerprint;
        4. swap a replacement handle in atomically.  In-flight requests
           that resolved the old handle keep computing (and cache-keying)
           against exactly the content they started with.

        A script that fails mid-way discards the clone — the served
        dataset is untouched, which is what makes ``dataset.apply``
        atomic.  A script whose net effect is nil (``changed`` false)
        keeps the existing handle, like a no-op reload.

        The report carries everything the service needs for
        partition-scoped invalidation and the change feed: the new and
        previous root fingerprints, the changed partitions with their new
        sub-fingerprints, and the retired sub-fingerprints whose cache
        entries are now stale.
        """
        with self._reload_lock:
            with self._lock:
                handle = self.get(name)
            if not handle.mutable:
                raise DatasetReadOnlyError(
                    f"dataset {handle.name!r} ({handle.kind}) cannot be edited "
                    "in place"
                    + (
                        "; rebuild the store file and POST "
                        f"/v1/datasets/{handle.name}/reload"
                        if handle.store is not None
                        else "; register it with a full graph to enable edits"
                    )
                )
            previous = handle.fingerprint
            old_parts = dict(handle.partition_fingerprints or {})
            assert handle.graph is not None
            graph = handle.graph.copy()
            tree = handle.tree.clone()
            editor = GraphEditor(graph, tree)
            records = apply_edit_script(editor, script)
            tree.assert_valid()
            new_parts = tree.partition_fingerprints()
            fingerprint = tree.fingerprint()
            changed_partitions, retired_parts = partition_changes(
                handle.tree, old_parts, tree, new_parts
            )
            replacement = DatasetHandle(
                name=handle.name,
                tree=tree,
                graph=graph,
                store=None,
                fingerprint=fingerprint,
                # The on-disk graph file (if any) no longer matches the
                # edited content; dropping the path routes execution to
                # the parent instead of letting workers warm stale bytes.
                graph_path=None,
                partition_fingerprints=new_parts,
                prepared_views=self.prepared_views,
                share_prepared=handle.share_prepared,
            )
            changed = fingerprint != previous
            with self._lock:
                if self._handles.get(handle.name) is not handle:
                    raise DatasetNotFoundError(
                        f"dataset {handle.name!r} was deregistered during apply"
                    )
                if changed:
                    self._handles[replacement.name] = replacement
            if changed:
                # Retired preparations can never be keyed again (their
                # fingerprints are gone from every handle); drop them now
                # rather than waiting for LRU pressure.
                self.prepared_views.invalidate(previous)
                for stale in retired_parts.values():
                    self.prepared_views.invalidate(stale)
            return {
                "dataset": handle.name,
                "kind": (replacement if changed else handle).kind,
                "fingerprint": fingerprint if changed else previous,
                "previous_fingerprint": previous,
                "changed": changed,
                "edits": len(records),
                "touched_communities": sorted(
                    tree.node(node_id).label
                    for node_id in editor.touched_communities
                    if tree.has_node(node_id)
                ),
                "changed_partitions": changed_partitions,
                "retired_partition_fingerprints": sorted(retired_parts.values()),
            }

    def retired_store_count(self) -> int:
        """How many superseded stores are parked awaiting shutdown."""
        with self._lock:
            return len(self._retired_stores)

    def drain(self) -> List[DatasetHandle]:
        """Detach and return every handle; closes retired stores (shutdown).

        Also clears the shared prepared-view cache, which unlinks every
        shared-memory segment this registry published — the deterministic
        end of segment lifecycle (finalizers only back-stop crashes).
        """
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
            retired, self._retired_stores = self._retired_stores, []
        for store in retired:
            store.close()
        self.prepared_views.clear()
        return handles

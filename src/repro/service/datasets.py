"""The dataset lifecycle: registration, lookup, stats, and hot-reload.

A :class:`DatasetRegistry` owns every open dataset a
:class:`~repro.service.service.GMineService` serves: the shared tree, the
optional full graph, the backing :class:`~repro.storage.gtree_store.GTreeStore`,
and the content fingerprint that keys the result cache.  Pulling this out
of the service proper gives the lifecycle a seam of its own:

* a :class:`DatasetHandle` is an **immutable snapshot**: tree, graph,
  store and fingerprint always describe one consistent dataset state, so
  a request that resolved its handle before a reload keeps computing (and
  cache-keying) against exactly the content it started with;
* :meth:`DatasetRegistry.reload` reopens a store-backed dataset from its
  file (picking up a rebuilt ``.gtree``) and atomically **swaps in a new
  handle**, reporting the old fingerprint so the service can invalidate
  the stale cache entries — the machinery behind
  ``POST /v1/datasets/<name>/reload``.  The superseded store is *retired*,
  not closed: live sessions and in-flight queries still hold engines over
  it, and closing their pager mid-query would turn the typed-error
  guarantee into raw ``ValueError``\\ s.  Retired stores are closed when
  the registry drains at service shutdown;
* :meth:`DatasetHandle.exec_spec` flattens a dataset to the picklable
  :class:`~repro.service.executors.DatasetExecSpec` process workers use to
  reopen it by ``(path, fingerprint)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..api.plans import prepared_applies
from ..api.registry import CanonicalizationContext
from ..core.engine import GMineEngine
from ..core.gtree import GTree
from ..errors import DatasetNotFoundError, ServiceError
from ..graph.graph import Graph
from ..graph.io import load_graph_auto
from ..graph.matrix import PreparedGraph
from ..storage.gtree_store import GTreeStore
from .executors import DatasetExecSpec

DEFAULT_DATASET = "default"


class _PreparedCell:
    """One lazily built, thread-safe :class:`PreparedGraph` slot.

    Lives on a :class:`DatasetHandle`, which is an immutable snapshot of
    one dataset state — so the cell's lifetime *is* the invalidation
    policy: a hot-reload swaps in a replacement handle with a fresh,
    empty cell, and the old preparation retires with the old handle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._prepared: Optional[PreparedGraph] = None

    def get(self, graph: Graph, fingerprint: str) -> PreparedGraph:
        with self._lock:
            if self._prepared is None:
                self._prepared = PreparedGraph.from_graph(
                    graph, fingerprint=fingerprint
                )
            return self._prepared

    @property
    def ready(self) -> bool:
        return self._prepared is not None


class DatasetContext(CanonicalizationContext):
    """Canonicalization context over one dataset's tree: ids -> labels."""

    def __init__(self, tree: GTree) -> None:
        self._tree = tree

    def resolve_community(self, value: Any) -> Any:
        # Communities may be addressed by tree-node id or label; key on the
        # label so both spellings share one cache entry.
        if isinstance(value, int) and self._tree.has_node(value):
            return self._tree.node(value).label
        return value


@dataclass(frozen=True)
class DatasetHandle:
    """One registered dataset: shared tree, optional graph/store, fingerprint.

    Frozen on purpose: a handle is a consistent snapshot of one dataset
    state.  Hot-reload never mutates a handle — it swaps a replacement
    into the registry — so any code holding a handle (a dispatching
    request, a session's metrics closure) sees tree, store, context and
    fingerprint that always agree with each other.
    """

    name: str
    tree: GTree
    graph: Optional[Graph]
    store: Optional[GTreeStore]
    fingerprint: str
    owns_store: bool = False
    graph_path: Optional[str] = None
    context: Optional[DatasetContext] = None
    # Per-handle PreparedGraph slot (excluded from comparison/repr: it is
    # a cache, not part of the dataset's identity).
    prepared_cell: _PreparedCell = field(
        default_factory=_PreparedCell, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.context is None:
            object.__setattr__(self, "context", DatasetContext(self.tree))

    @property
    def store_path(self) -> Optional[str]:
        """The backing store file, when this dataset has one."""
        return None if self.store is None else str(self.store.path)

    def prepared_graph(self) -> Optional[PreparedGraph]:
        """The dataset's widest-scope :class:`PreparedGraph` (built once).

        Only datasets served with a full graph have one — the widest scope
        of a store-only dataset is re-materialised per request and has no
        stable identity to prepare against.
        """
        if self.graph is None:
            return None
        return self.prepared_cell.get(self.graph, self.fingerprint)

    def prepared_provider(self, scope: Any, subgraph: Any) -> Optional[PreparedGraph]:
        """The :class:`~repro.api.ops.OpContext` hook for this handle.

        Hands out the cached preparation only where
        :func:`~repro.api.plans.prepared_applies` says it may serve: the
        kernel really running on this handle's full graph at widest scope.
        """
        if not prepared_applies(scope, subgraph, self.graph):
            return None
        return self.prepared_graph()

    @property
    def kind(self) -> str:
        return "store" if self.store is not None else "tree"

    def exec_spec(self) -> DatasetExecSpec:
        """Flatten to the picklable spec process workers reopen datasets by."""
        return DatasetExecSpec(
            name=self.name,
            fingerprint=self.fingerprint,
            store_path=self.store_path,
            graph_path=self.graph_path,
            has_graph=self.graph is not None,
        )

    def make_engine(self, metrics_fn: Optional[Callable] = None) -> GMineEngine:
        """A fresh engine over the shared tree (cheap: focus + history only)."""
        return GMineEngine(
            self.tree, graph=self.graph, store=self.store, metrics_fn=metrics_fn
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly row for ``GET /v1/datasets`` and ``/v1/stats``."""
        return {
            "name": self.name,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "store_path": self.store_path,
            "graph_path": self.graph_path,
            "tree_nodes": self.tree.num_tree_nodes,
            "prepared": self.prepared_cell.ready,
        }


class DatasetRegistry:
    """Thread-safe name -> :class:`DatasetHandle` table with hot-reload."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._handles: Dict[str, DatasetHandle] = {}
        # Stores superseded by reload.  They stay open — sessions and
        # in-flight queries may still hold engines over them — and are
        # closed when the registry drains at shutdown.
        self._retired_stores: List[GTreeStore] = []
        # Serialises reloads against each other so the slow I/O (store
        # reopen, graph parse) can run outside ``_lock`` without two
        # reloads racing on the same handle swap.
        self._reload_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_tree(
        self,
        tree: GTree,
        graph: Optional[Graph] = None,
        name: str = DEFAULT_DATASET,
    ) -> DatasetHandle:
        """Share an in-memory G-Tree (and optionally its full graph)."""
        handle = DatasetHandle(
            name=name, tree=tree, graph=graph, store=None,
            fingerprint=tree.fingerprint(),
        )
        return self._register(handle)

    def register_store(
        self,
        store: Union[GTreeStore, str, Path],
        graph: Optional[Graph] = None,
        name: str = DEFAULT_DATASET,
        graph_path: Optional[Union[str, Path]] = None,
    ) -> DatasetHandle:
        """Share a stored G-Tree; a path is opened (and owned) by the registry.

        ``graph_path`` tells process workers where to reload the full graph
        from; without it a dataset served with a live ``graph`` falls back
        to in-parent execution (the workers could not reproduce widest-scope
        results).
        """
        if graph is None and graph_path is not None:
            # Load the graph before opening the store: a bad graph file
            # must not leak a freshly opened pager.
            graph = load_graph_auto(graph_path)
        owns = not isinstance(store, GTreeStore)
        if owns:
            store = GTreeStore(store)
        try:
            handle = DatasetHandle(
                name=name, tree=store.tree, graph=graph, store=store,
                fingerprint=store.fingerprint, owns_store=owns,
                graph_path=None if graph_path is None else str(graph_path),
            )
            return self._register(handle)
        except Exception:
            if owns:
                store.close()
            raise

    def _register(self, handle: DatasetHandle) -> DatasetHandle:
        with self._lock:
            if handle.name in self._handles:
                raise ServiceError(f"dataset {handle.name!r} is already registered")
            self._handles[handle.name] = handle
            return handle

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._handles)

    def get(self, name: Optional[str]) -> DatasetHandle:
        """Resolve a dataset name (``None`` = the only/default dataset)."""
        with self._lock:
            if name is None:
                if len(self._handles) == 1:
                    return next(iter(self._handles.values()))
                if DEFAULT_DATASET in self._handles:
                    return self._handles[DEFAULT_DATASET]
                raise ServiceError(
                    "dataset name required: service has "
                    f"{len(self._handles)} datasets registered"
                )
            if name not in self._handles:
                raise DatasetNotFoundError(f"no dataset registered under {name!r}")
            return self._handles[name]

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._handles[name].describe() for name in sorted(self._handles)]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def reload(self, name: Optional[str]) -> Dict[str, Any]:
        """Reopen a dataset from its backing file; returns a change report.

        Store-backed datasets get a fresh :class:`GTreeStore` over the same
        path (picking up a rebuilt file) and, when ``graph_path`` is known,
        a freshly loaded graph; a **replacement handle** over the new
        resources is swapped into the registry atomically.  The superseded
        store is retired — kept open for the sessions and in-flight queries
        whose engines still read it — and closed at :meth:`drain`.  When
        the reopened content is byte-identical (``changed`` is false) the
        existing handle keeps serving and nothing is retired, so periodic
        no-op reloads cost no file handles.
        In-memory tree datasets get a re-fingerprinted handle over the same
        shared tree (covering live tree edits).  The caller is responsible
        for invalidating the previous fingerprint in its result cache — the
        report carries both fingerprints for exactly that.

        The slow part — reopening the store and re-parsing the graph file —
        happens *outside* the registry lock (queries on every dataset keep
        flowing during a multi-second reload); only the handle swap takes
        it.  Concurrent reloads are serialised by a dedicated mutex, so
        the handle read at the top is still the one swapped out below.
        """
        with self._reload_lock:
            with self._lock:
                handle = self.get(name)
            previous = handle.fingerprint
            if handle.store is not None:
                # Acquire every new resource *before* touching the registry:
                # a failed reopen or graph reload must leave the dataset
                # exactly as it was (fingerprint, store, graph, cache keys
                # all still consistent with each other).
                reopened = GTreeStore(handle.store.path)
                graph = handle.graph
                if handle.graph_path is not None:
                    try:
                        graph = load_graph_auto(handle.graph_path)
                    except Exception:
                        reopened.close()
                        raise
                replacement = DatasetHandle(
                    name=handle.name,
                    tree=reopened.tree,
                    graph=graph,
                    store=reopened,
                    fingerprint=reopened.fingerprint,
                    owns_store=True,
                    graph_path=handle.graph_path,
                )
            else:
                replacement = DatasetHandle(
                    name=handle.name,
                    tree=handle.tree,
                    graph=handle.graph,
                    store=None,
                    fingerprint=handle.tree.fingerprint(),
                    graph_path=handle.graph_path,
                    context=handle.context,
                )
            with self._lock:
                if self._handles.get(handle.name) is not handle:
                    # Drained (service shutdown) while we were reloading.
                    if replacement.store is not None:
                        replacement.store.close()
                    raise DatasetNotFoundError(
                        f"dataset {handle.name!r} was deregistered during reload"
                    )
                if handle.store is not None:
                    if replacement.fingerprint == previous:
                        # Same content: keep serving the existing handle
                        # and drop the redundant reopen, so periodic no-op
                        # reloads don't grow the retired-store parking lot.
                        replacement.store.close()
                        replacement = handle
                    elif handle.owns_store:
                        self._retired_stores.append(handle.store)
                self._handles[replacement.name] = replacement
            return {
                "dataset": replacement.name,
                "kind": replacement.kind,
                "fingerprint": replacement.fingerprint,
                "previous_fingerprint": previous,
                "changed": replacement.fingerprint != previous,
            }

    def retired_store_count(self) -> int:
        """How many superseded stores are parked awaiting shutdown."""
        with self._lock:
            return len(self._retired_stores)

    def drain(self) -> List[DatasetHandle]:
        """Detach and return every handle; closes retired stores (shutdown)."""
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
            retired, self._retired_stores = self._retired_stores, []
        for store in retired:
            store.close()
        return handles

"""Pluggable execution backends: *where* a compute plan runs.

The GMine service funnels every expensive kernel (RWR power iteration,
metric suites, connection subgraphs) through one of three backends:

* :class:`InlineBackend` — the plan runs on the calling thread.  Zero
  overhead; throughput is whatever the caller's own concurrency delivers
  (under the GIL, roughly one core).
* :class:`ThreadBackend` — plans run on a dedicated kernel thread pool,
  bounding how many kernels execute at once independently of how many
  requests are in flight.  Same GIL ceiling as inline, but the kernel
  concurrency knob is explicit.
* :class:`ProcessBackend` — plans are pickled to a pool of **warm worker
  processes** that pre-load each dataset's :class:`~repro.storage.gtree_store.GTreeStore`
  by ``(path, fingerprint)`` and keep it open across tasks, so only the
  first task per dataset pays the open cost.  This is the backend that
  scales CPU-bound mining with cores: each worker owns its own
  interpreter, its own GIL, and its own buffer pool.

All three execute the *same* :class:`~repro.api.plans.ComputePlan` through
:func:`~repro.api.plans.run_plan`; a backend never sees a service or an
engine, only a plan plus a :class:`DatasetExecSpec` describing how a worker
may rematerialise the dataset.  Results come back as the rich mining
objects — the wire encode step always happens in the parent.

Ops that cannot be shipped (no planner, ``cost="cheap"``, or a dataset the
workers cannot reopen by path) run through the ``local`` fallback the
service provides, so every backend serves the full protocol surface.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..api.plans import ComputePlan, prepared_applies, run_plan
from ..errors import DeadlineExceededError, ServiceError, WorkerDeadlineCancelled
from ..graph.shm import SharedGraphManifest, shm_stats
from .resilience import CircuitBreaker, Deadline

logger = logging.getLogger(__name__)

#: Backend names accepted by :func:`make_backend` / ``gmine serve --backend``.
BACKEND_NAMES = ("inline", "thread", "process", "auto", "sharded")

#: Default worker count for pooled backends.
DEFAULT_BACKEND_WORKERS = 4


class StaleDatasetError(ServiceError):
    """A worker's on-disk store no longer matches the spec's fingerprint.

    Raised inside worker processes when the dataset file was rebuilt (and
    typically hot-reloaded in the parent) after the shipping request
    resolved its handle.  Picklable across the pool boundary; the process
    backend catches it and serves the request from the parent, whose
    retired store still holds the content the request's fingerprint names.
    """


@dataclass(frozen=True)
class DatasetExecSpec:
    """How a worker process can rebuild one dataset's scope resolver.

    Entirely picklable: paths and the content fingerprint, never live
    objects.  ``has_graph`` records whether the parent serves the dataset
    with a full graph attached — a worker that cannot reload that graph
    (no ``graph_path``) would resolve widest-scope requests differently,
    so such datasets are not process-capable and fall back to the parent.
    """

    name: str
    fingerprint: str
    store_path: Optional[str] = None
    graph_path: Optional[str] = None
    has_graph: bool = False
    #: Shared-memory manifest of the parent's published
    #: :class:`~repro.graph.shm.SharedPreparedGraph` for this fingerprint,
    #: when one exists.  A worker that receives it attaches the segment
    #: zero-copy instead of rebuilding the CSR from the adjacency dicts;
    #: a worker that cannot attach (segment retired, exotic platform)
    #: rebuilds cold — the manifest is a fast path, never a correctness
    #: dependency.
    prepared_manifest: Optional[SharedGraphManifest] = None

    @property
    def process_capable(self) -> bool:
        """Whether a worker can reproduce the parent's scope resolution."""
        if self.store_path is None:
            return False
        return (not self.has_graph) or (self.graph_path is not None)


class ExecutionBackend:
    """Common interface + shared accounting for every backend."""

    name = "base"

    def __init__(self) -> None:
        self._stats_lock = threading.Lock()
        self._executed = 0
        self._shipped = 0
        self._fallbacks = 0
        self._errors = 0
        self._deadline_rejected = 0
        self._deadline_abandoned = 0
        self._deadline_worker_cancelled = 0

    # ------------------------------------------------------------------ #
    # interface
    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: DatasetExecSpec,
        plan: ComputePlan,
        local: Callable[[], Any],
        deadline: Optional[Deadline] = None,
    ) -> Any:
        """Execute one plan; ``local`` runs it in the parent as a fallback.

        ``deadline``, when given, bounds the whole run: an already-expired
        budget is rejected before any work, and a plan still running past
        it is abandoned (result discarded, ``DEADLINE_EXCEEDED`` raised,
        pools left healthy).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # deadline bookkeeping shared by every backend
    # ------------------------------------------------------------------ #
    def _admit(self, deadline: Optional[Deadline]) -> None:
        """Reject before dispatch if the budget is already spent."""
        if deadline is not None and deadline.expired:
            self._count(deadline_rejected=1)
            raise DeadlineExceededError(
                f"deadline of {deadline.budget_ms:g}ms expired before dispatch"
            )

    def _abandon(self, deadline: Deadline) -> None:
        """Discard an in-flight result that finished (or hung) past budget."""
        self._count(deadline_abandoned=1)
        raise DeadlineExceededError(
            f"plan exceeded its {deadline.budget_ms:g}ms deadline; "
            "result abandoned"
        )

    def _finish(self, deadline: Optional[Deadline]) -> None:
        """Post-completion check: a result computed past budget is discarded."""
        if deadline is not None and deadline.expired:
            self._abandon(deadline)

    def warm(self, spec: DatasetExecSpec, handle: Any = None) -> None:
        """Hint that a dataset was registered (process pools pre-load it).

        ``handle`` is the live :class:`~repro.service.datasets.DatasetHandle`
        when the caller has one: a sharded backend needs the tree/graph
        objects themselves to plan the split, while path-based pools only
        consume the picklable ``spec``.
        """

    def close(self) -> None:
        """Release pools; idempotent."""

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def _count(
        self,
        *,
        executed=0,
        shipped=0,
        fallbacks=0,
        errors=0,
        deadline_rejected=0,
        deadline_abandoned=0,
        deadline_worker_cancelled=0,
    ) -> None:
        with self._stats_lock:
            self._executed += executed
            self._shipped += shipped
            self._fallbacks += fallbacks
            self._errors += errors
            self._deadline_rejected += deadline_rejected
            self._deadline_abandoned += deadline_abandoned
            self._deadline_worker_cancelled += deadline_worker_cancelled

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (surfaced through ``/v1/stats``)."""
        with self._stats_lock:
            return {
                "name": self.name,
                "executed": self._executed,
                "shipped": self._shipped,
                "fallbacks": self._fallbacks,
                "errors": self._errors,
                "deadline": {
                    "rejected": self._deadline_rejected,
                    "abandoned": self._deadline_abandoned,
                    "worker_cancelled": self._deadline_worker_cancelled,
                },
            }


class InlineBackend(ExecutionBackend):
    """Run every plan on the calling thread (the pre-v2 behaviour)."""

    name = "inline"

    def run(self, spec, plan, local, deadline=None):
        self._admit(deadline)
        self._count(executed=1)
        value = local()
        # Inline has nowhere to park an overdue computation, so the check
        # happens after the fact: the result is discarded, the overrun
        # counted, and the caller gets the typed deadline failure.
        self._finish(deadline)
        return value


class ThreadBackend(ExecutionBackend):
    """Run plans on a dedicated kernel thread pool (GIL-bound)."""

    name = "thread"

    def __init__(self, workers: int = DEFAULT_BACKEND_WORKERS) -> None:
        super().__init__()
        if workers < 1:
            raise ServiceError(f"thread backend needs >= 1 worker, got {workers}")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="gmine-kernel"
                )
            return self._pool

    def run(self, spec, plan, local, deadline=None):
        self._admit(deadline)
        self._count(executed=1)
        future = self._ensure_pool().submit(local)
        try:
            value = future.result(
                timeout=None if deadline is None else max(0.0, deadline.remaining())
            )
        except FuturesTimeoutError:
            # Abandon: the worker thread keeps running (daemonic pool, GIL
            # shared anyway) but its result is discarded and the caller is
            # unblocked with the typed deadline failure.
            self._abandon(deadline)
        self._finish(deadline)
        return value

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def stats(self) -> Dict[str, Any]:
        payload = super().stats()
        payload["workers"] = self.workers
        return payload


# --------------------------------------------------------------------------- #
# process backend: warm workers keyed by (store path, fingerprint)
# --------------------------------------------------------------------------- #
#: Per-worker dataset cache: (store_path, graph_path) -> (fingerprint, ctx).
#: Module-level so it survives across tasks — that is what makes the
#: workers "warm": the store skeleton is parsed and the buffer pool filled
#: once, then every subsequent plan for the same fingerprint reuses them.
_WORKER_DATASETS: Dict[Tuple[str, Optional[str]], Tuple[str, Any]] = {}


class _WorkerPrepared:
    """A worker's :class:`~repro.graph.matrix.PreparedGraph` slot.

    One per warm dataset context, mirroring the parent's per-handle cell:
    built once (eagerly at warm time, lazily on the first plan otherwise)
    and handed to kernels only for widest-scope plans over the context's
    full graph.  Dies with the context on fingerprint change, so a
    hot-reloaded dataset is re-prepared exactly once per worker.

    Workers execute one task at a time, so no lock is needed — which also
    keeps the context it lives on simple.
    """

    def __init__(
        self,
        graph,
        fingerprint: str,
        manifest: Optional[SharedGraphManifest] = None,
    ) -> None:
        self._graph = graph
        self._fingerprint = fingerprint
        self._manifest = manifest
        self._prepared = None

    def prepare(self) -> None:
        """Materialise the prepared view now (called by the warm task).

        Preference order: attach the parent's shared segment (zero-copy,
        O(1) in edges), else rebuild from the graph exactly as before.  An
        attach failure — the parent retired the segment between pickling
        the spec and this task running — falls back to the rebuild, so the
        manifest can never make a worker wrong, only fast.
        """
        if self._graph is None or self._prepared is not None:
            return
        if self._manifest is not None:
            from ..graph.shm import SHM_STATS, SharedPreparedGraph

            try:
                self._prepared = SharedPreparedGraph.attach(self._manifest)
                return
            except Exception as error:
                SHM_STATS.fallback()
                logger.warning(
                    "shared prepared attach failed for %s (%s); rebuilding",
                    self._fingerprint[:12], error,
                )
                self._manifest = None
        from ..graph.matrix import PreparedGraph

        self._prepared = PreparedGraph.from_graph(
            self._graph, fingerprint=self._fingerprint
        )

    def close(self) -> None:
        """Detach the shared segment when this slot's context retires."""
        prepared, self._prepared = self._prepared, None
        release = getattr(prepared, "release", None)
        if release is not None:
            release()

    def __call__(self, scope, subgraph):
        if not prepared_applies(scope, subgraph, self._graph):
            return None
        self.prepare()
        return self._prepared


def _worker_context(spec: DatasetExecSpec):
    """Return (creating if needed) this worker's resolver for ``spec``.

    The store is reopened whenever the expected fingerprint changes —
    exactly what happens after a dataset hot-reload in the parent — and a
    store whose content does not match the parent's fingerprint is
    rejected rather than silently serving stale or torn data.
    """
    from ..api.ops import OpContext
    from ..core.engine import GMineEngine
    from ..graph.io import load_graph_auto
    from ..storage.gtree_store import GTreeStore

    if spec.store_path is None:  # pragma: no cover - guarded by process_capable
        raise ServiceError(f"dataset {spec.name!r} has no store path to reopen")
    key = (spec.store_path, spec.graph_path)
    cached = _WORKER_DATASETS.get(key)
    if cached is not None and cached[0] == spec.fingerprint:
        return cached[1]
    store = GTreeStore(spec.store_path)
    if store.fingerprint != spec.fingerprint:
        # A stale plan (the parent hot-reloaded after this request took
        # its handle) must not wreck the warm context other plans use —
        # leave the cache alone and let the parent serve this one.
        fingerprint = store.fingerprint
        store.close()
        raise StaleDatasetError(
            f"worker reopened {spec.store_path} with fingerprint "
            f"{fingerprint[:12]}… but the plan expects "
            f"{spec.fingerprint[:12]}…"
        )
    try:
        graph = load_graph_auto(spec.graph_path) if spec.graph_path else None
        context = OpContext(
            engine=GMineEngine(tree=store.tree, graph=graph, store=store),
            prepared_provider=_WorkerPrepared(
                graph, spec.fingerprint, manifest=spec.prepared_manifest
            ),
        )
    except Exception:
        store.close()
        raise
    # Only retire the previous context once its replacement is fully
    # built: a failed graph load must leave the cache serving the old
    # (still-open) context, never a closed one.
    if cached is not None:
        del _WORKER_DATASETS[key]
        cached[1].engine.store.close()
        retiring = getattr(cached[1], "prepared_provider", None)
        if retiring is not None and hasattr(retiring, "close"):
            retiring.close()
    _WORKER_DATASETS[key] = (spec.fingerprint, context)
    return context


def _process_warm(spec: DatasetExecSpec) -> Dict[str, Any]:
    """Pre-load one dataset in this worker; returns a warm report.

    Warming opens the store *and* materialises the dataset's prepared
    view — by shared-segment attach when the spec carries a manifest,
    by the O(E) rebuild otherwise — so the first real plan pays neither
    the file open nor the matrix conversion.  The report carries this
    worker's shared-memory counters back to the parent, which aggregates
    them per pid: that is how ``/v1/stats`` (and the bench gate) can
    assert the zero-copy path actually served.
    """
    context = _worker_context(spec)
    context.prepared_provider.prepare()
    return {
        "fingerprint": context.engine.store.fingerprint,
        "pid": os.getpid(),
        "shm": shm_stats(),
    }


def _log_warm_failure(future) -> None:
    """Surface a failed warm-up task instead of dropping it silently.

    Warming stays best-effort — the first real plan will retry and raise
    properly — but an operator watching the log should still see that the
    pre-load did not take (bad path, fingerprint drift, worker death).
    """
    try:
        error = future.exception()
    except BaseException as cancelled:  # pragma: no cover - shutdown race
        error = cancelled
    if error is not None:
        logger.warning("dataset warm-up failed (first plan will retry): %s", error)


def deadline_wall_clock(deadline: Optional[Deadline]) -> Optional[float]:
    """Translate a deadline's remaining budget to absolute wall-clock time.

    Deadlines are monotonic-clock objects and cannot cross a process
    boundary; what can is "the instant, in ``time.time()`` terms, after
    which the work is pointless".  Workers compare against their own wall
    clock — same-host processes share it, so skew is microseconds against
    millisecond budgets.
    """
    if deadline is None:
        return None
    return time.time() + max(0.0, deadline.remaining())


def _check_worker_deadline(deadline_at: Optional[float], label: str) -> None:
    """Cancel overdue work at task start, inside the worker."""
    if deadline_at is not None and time.time() >= deadline_at:
        raise WorkerDeadlineCancelled(
            f"deadline expired before the worker started {label}; "
            "cancelled in the worker"
        )


def _process_execute(
    spec: DatasetExecSpec,
    plan: ComputePlan,
    deadline_at: Optional[float] = None,
) -> Any:
    """Run one plan in this worker against its warm dataset context.

    A task that reaches the front of the queue after ``deadline_at`` is
    cancelled here rather than computed: the parent has already abandoned
    (or will reject) the result, so finishing it would only keep the
    worker busy past every caller's interest.
    """
    _check_worker_deadline(deadline_at, f"plan {plan.operation!r}")
    context = _worker_context(spec)
    return run_plan(plan, context.community_subgraph, context.prepared_for)


def _pick_mp_context():
    """Prefer ``forkserver``; never ``fork``.

    The pool is created lazily, on the first ``warm()``/``run()`` — by
    then the HTTP server and the batch thread pool are usually running,
    and forking a multi-threaded process can deadlock children on locks
    some other thread held at fork time (CPython deprecated that in 3.12
    for exactly this reason).  ``forkserver`` keeps most of fork's cheap
    worker startup without that hazard: workers fork from a dedicated,
    single-threaded server process.  Where it is unavailable, ``spawn``
    applies; workers then re-import the package, which the module-level
    task functions are written for.
    """
    if "forkserver" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


class ProcessBackend(ExecutionBackend):
    """Ship plans to warm worker processes (true multi-core execution)."""

    name = "process"

    def __init__(
        self,
        workers: int = DEFAULT_BACKEND_WORKERS,
        mp_context=None,
        breaker: Union[CircuitBreaker, None, str] = "default",
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ServiceError(f"process backend needs >= 1 worker, got {workers}")
        self.workers = workers
        if breaker == "default":
            # Trips on repeated pool deaths (BrokenProcessPool), not on
            # plan errors: a venue that keeps losing workers stops being
            # offered work and every plan runs in the parent until the
            # half-open probe proves the pool healthy again.
            breaker = CircuitBreaker(
                name="process-pool", failure_threshold=3, reset_timeout=10.0
            )
        self.breaker = breaker
        self._breaker_skips = 0
        self._mp_context = mp_context or _pick_mp_context()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._warmed: List[DatasetExecSpec] = []
        #: Latest shared-memory counters reported by each worker pid (the
        #: warm tasks carry them back) — proof in ``/v1/stats`` that
        #: workers attached segments instead of rebuilding.
        self._worker_shm: Dict[int, Dict[str, int]] = {}

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self._mp_context
                )
            return self._pool

    def warm(self, spec: DatasetExecSpec, handle: Any = None) -> None:
        """Ask every worker to pre-load ``spec`` (best effort, non-blocking).

        One warm task per worker slot: idle workers pick them up and open
        the store before the first real plan arrives.  The pool gives no
        affinity, so one idle worker may drain several warm tasks and
        leave its siblings to pay the cold open on their first real plan —
        acceptable for a hint.  Failures are logged and otherwise surface
        on the first real task, so warming never wedges registration.
        """
        if not spec.process_capable:
            return
        with self._pool_lock:
            if spec in self._warmed:
                # Identical spec (same paths, fingerprint and manifest)
                # already warmed: the workers hold it, and re-submitting
                # another N warm futures is pure pool churn.
                return
            self._warmed = [
                known for known in self._warmed if known.name != spec.name
            ]
            self._warmed.append(spec)
        pool = self._ensure_pool()
        for _ in range(self.workers):
            pool.submit(_process_warm, spec).add_done_callback(self._warm_done)

    def _note_worker_cancelled(self, future) -> None:
        """Done callback: tally tasks the worker itself cancelled as overdue."""
        if future.cancelled():
            return
        try:
            error = future.exception()
        except BaseException:  # pragma: no cover - shutdown race
            return
        if isinstance(error, WorkerDeadlineCancelled):
            self._count(deadline_worker_cancelled=1)

    def _warm_done(self, future) -> None:
        """Collect a warm report (or log the failure) off the pool thread."""
        _log_warm_failure(future)
        try:
            report = future.result()
        except BaseException:
            return
        if isinstance(report, dict) and "pid" in report:
            with self._stats_lock:
                self._worker_shm[report["pid"]] = report.get("shm", {})

    def run(self, spec, plan, local, deadline=None):
        self._admit(deadline)
        if not spec.process_capable:
            self._count(executed=1, fallbacks=1)
            value = local()
            self._finish(deadline)
            return value
        if self.breaker is not None and not self.breaker.allow():
            # Venue quarantined: serve from the parent without touching
            # (or creating) the pool.
            with self._stats_lock:
                self._breaker_skips += 1
            self._count(executed=1, fallbacks=1)
            value = local()
            self._finish(deadline)
            return value
        pool = self._ensure_pool()
        future = pool.submit(
            _process_execute, spec, plan, deadline_wall_clock(deadline)
        )
        if deadline is not None:
            # Count in-worker cancellations exactly once, even when this
            # caller timed out first and abandoned the future: the callback
            # fires whenever the task resolves, observed or not.
            future.add_done_callback(self._note_worker_cancelled)
        try:
            value = future.result(
                timeout=None if deadline is None else max(0.0, deadline.remaining())
            )
        except FuturesTimeoutError:
            # Abandon the result but leave the pool healthy: the worker
            # finishes (or keeps warming its dataset) and serves the next
            # request; only this caller's wait is cut short.
            self._abandon(deadline)
        except WorkerDeadlineCancelled:
            # The worker refused overdue work before computing it.  The
            # venue did its job (transported the refusal), so the breaker
            # records a success; the counter rides the done callback.
            if self.breaker is not None:
                self.breaker.record_success()
            raise
        except StaleDatasetError:
            # The file on disk moved past this request's fingerprint (a
            # hot-reload raced the dispatch).  The parent still holds the
            # retired store this fingerprint names, so local() serves the
            # request correctly instead of surfacing a spurious error.
            # Not a venue failure: the pool did its job.
            if self.breaker is not None:
                self.breaker.record_success()
            self._count(executed=1, fallbacks=1)
            value = local()
            self._finish(deadline)
            return value
        except BrokenProcessPool:
            # A worker died (OOM, hard kill).  Recreate the pool lazily and
            # keep serving this request from the parent.  This *is* the
            # venue failure the breaker watches for.
            with self._pool_lock:
                broken, self._pool = self._pool, None
            if broken is not None:
                broken.shutdown(wait=False)
            if self.breaker is not None:
                self.breaker.record_failure()
            self._count(executed=1, fallbacks=1, errors=1)
            value = local()
            self._finish(deadline)
            return value
        except BaseException:
            # The plan itself failed in the worker (typed mining/service
            # error, pickled back).  It still executed and shipped — count
            # it so backend accounting agrees across venues for identical
            # traffic — and re-raise for the normal error envelope path.
            # The venue worked (it transported the failure), so the
            # breaker records a success.
            if self.breaker is not None:
                self.breaker.record_success()
            self._count(executed=1, shipped=1, errors=1)
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        self._count(executed=1, shipped=1)
        self._finish(deadline)
        return value

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def stats(self) -> Dict[str, Any]:
        payload = super().stats()
        payload["workers"] = self.workers
        payload["warm_datasets"] = [spec.name for spec in self._warmed]
        if self.breaker is not None:
            payload["breaker"] = self.breaker.describe()
        with self._stats_lock:
            payload["breaker_skips"] = self._breaker_skips
            reports = dict(self._worker_shm)
        payload["worker_shm"] = {
            "workers_reporting": len(reports),
            "attaches": sum(r.get("attaches", 0) for r in reports.values()),
            "attach_fallbacks": sum(
                r.get("attach_fallbacks", 0) for r in reports.values()
            ),
        }
        return payload


class AutoBackend(ExecutionBackend):
    """Pick the venue per plan — measured cost when available, static rule else.

    ``gmine serve --backend auto`` stops making the operator choose: the
    service already keeps **cheap** ops in the parent (the cost class
    declared on each :class:`~repro.api.registry.OpSpec` — they never
    reach any backend).  For the expensive plannable plans that do arrive
    here, the **static rule** is the baseline:

    * ``inline`` on a single-core host — pools cannot beat the GIL there,
      so pool overhead is pure loss;
    * ``process`` when the host has cores to scale across *and* the
      dataset is process-capable (reopenable by path+fingerprint);
    * ``thread`` otherwise — bounded kernel concurrency for datasets the
      workers cannot rematerialise.

    With a :class:`~repro.service.costmodel.CostModel` attached (``gmine
    serve --backend auto`` wires one next to the cache DB, seeded from
    ``BENCH_exec``/``BENCH_kernels``), each decision instead takes the
    eligible venue with the lowest *measured* EWMA latency for that
    operation — but the static choice is only ever displaced by a venue
    whose measurement is strictly better than the static choice's own, so
    the model can never pick a venue its measurements say is worse than
    the static rule's pick.  Observed ``run`` latencies feed back into
    the model, which persists across restarts.

    Every decision is recorded per operation and surfaced through
    ``/v1/stats`` (``backend.choices`` counters plus the latest
    ``decisions`` basis and the model table itself), together with the
    honest ``cpu_count`` it was based on and the delegate pools' own
    counters.
    """

    name = "auto"

    def __init__(
        self,
        workers: int = DEFAULT_BACKEND_WORKERS,
        cpu_count: Optional[int] = None,
        cost_model=None,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ServiceError(f"auto backend needs >= 1 worker, got {workers}")
        self.workers = workers
        self.cpu_count = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        self.cost_model = cost_model
        self._thread = ThreadBackend(workers=workers)
        self._process = (
            ProcessBackend(workers=min(workers, self.cpu_count))
            if self.cpu_count >= 2
            else None
        )
        self._choice_lock = threading.Lock()
        self._choices: Counter = Counter()
        #: operation -> latest decision basis (what ``/v1/stats`` shows).
        self._decisions: Dict[str, Dict[str, Any]] = {}

    def _static_choice(self, spec: DatasetExecSpec) -> str:
        """The declared-cost-class rule the model must never lose to."""
        if self.cpu_count < 2:
            return "inline"
        if self._process is not None and spec.process_capable:
            return "process"
        return "thread"

    def _eligible(self, spec: DatasetExecSpec) -> List[str]:
        venues = ["inline", "thread"]
        if self._process is not None and spec.process_capable:
            venues.append("process")
        return venues

    def _venue_penalties(self) -> Optional[Dict[str, float]]:
        """Cost multipliers for venues whose circuit breaker is not closed.

        Reads the breaker's ``state`` property — a non-consuming peek, so
        routing decisions never eat the half-open probe slots the process
        backend itself needs to recover.
        """
        if self._process is None or self._process.breaker is None:
            return None
        state = self._process.breaker.state
        if state == "closed":
            return None
        from .costmodel import BREAKER_HALF_OPEN_PENALTY, BREAKER_OPEN_PENALTY

        factor = (
            BREAKER_OPEN_PENALTY if state == "open" else BREAKER_HALF_OPEN_PENALTY
        )
        return {"process": factor}

    def _choose(self, spec: DatasetExecSpec, operation: str) -> Tuple[str, Dict[str, Any]]:
        static = self._static_choice(spec)
        if self.cost_model is None:
            return static, {"rule": "static", "static": static}
        return self.cost_model.choose(
            operation, self._eligible(spec), static,
            penalties=self._venue_penalties(),
        )

    def run(self, spec, plan, local, deadline=None):
        self._admit(deadline)
        choice, basis = self._choose(spec, plan.operation)
        if deadline is not None and self.cost_model is not None:
            # Admission control: the measured EWMA latency for this venue
            # is the best estimate of what the plan will cost.  A plan
            # predicted to blow the budget is rejected *before* compute —
            # the client learns in microseconds, not after the deadline.
            predicted = self.cost_model.predict(plan.operation, choice)
            if predicted is not None and predicted > deadline.remaining():
                self._count(deadline_rejected=1)
                raise DeadlineExceededError(
                    f"{plan.operation} predicted to take {predicted * 1000:.1f}ms "
                    f"on {choice!r} but only {max(0.0, deadline.remaining()) * 1000:.1f}ms "
                    "of budget remains"
                )
        with self._choice_lock:
            self._choices[f"{plan.operation}:{choice}"] += 1
            self._decisions[plan.operation] = dict(basis, venue=choice)
        started = time.perf_counter()
        if choice == "process":
            value = self._process.run(spec, plan, local, deadline=deadline)
        elif choice == "thread":
            value = self._thread.run(spec, plan, local, deadline=deadline)
        else:
            self._count(executed=1)
            value = local()
            self._finish(deadline)
        if self.cost_model is not None:
            # Only successful completions reach here; abandoned/rejected
            # runs raise above, so timeout waits never poison the model.
            self.cost_model.observe(
                plan.operation, choice, time.perf_counter() - started
            )
        return value

    def warm(self, spec: DatasetExecSpec, handle: Any = None) -> None:
        if self._process is not None:
            self._process.warm(spec)

    def close(self) -> None:
        self._thread.close()
        if self._process is not None:
            self._process.close()
        if self.cost_model is not None:
            self.cost_model.close()

    def stats(self) -> Dict[str, Any]:
        """Aggregated counters + the per-op choice ledger (``/v1/stats``)."""
        own = super().stats()
        delegates = {"thread": self._thread.stats()}
        if self._process is not None:
            delegates["process"] = self._process.stats()
        with self._choice_lock:
            choices = dict(sorted(self._choices.items()))
            decisions = {op: dict(basis) for op, basis in self._decisions.items()}
        for counter in ("executed", "shipped", "fallbacks", "errors"):
            own[counter] += sum(stats[counter] for stats in delegates.values())
        for counter in ("rejected", "abandoned", "worker_cancelled"):
            own["deadline"][counter] += sum(
                stats["deadline"][counter] for stats in delegates.values()
            )
        own["name"] = self.name
        own["workers"] = self.workers
        own["cpu_count"] = self.cpu_count
        own["choices"] = choices
        own["decisions"] = decisions
        own["cost_model"] = (
            self.cost_model.describe() if self.cost_model is not None else None
        )
        own["delegates"] = delegates
        return own


def make_backend(
    backend: Union[str, ExecutionBackend, None],
    workers: int = DEFAULT_BACKEND_WORKERS,
    cost_model=None,
) -> ExecutionBackend:
    """Resolve a backend selector: an instance, ``None``, or ``"name[:N]"``.

    ``"thread:8"`` / ``"process:2"`` / ``"sharded:4"`` override the
    worker/shard count inline — handy for the CLI, benchmarks, and
    Makefile one-liners.  ``cost_model`` applies to ``auto`` (venue
    choice) and ``sharded`` (per-shard venue latency estimates); the
    other backends have no decision to feed.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return InlineBackend()
    name, _, count = str(backend).partition(":")
    if count:
        try:
            workers = int(count)
        except ValueError:
            raise ServiceError(
                f"backend worker count must be an integer, got {backend!r}"
            ) from None
    if name == "inline":
        return InlineBackend()
    if name == "thread":
        return ThreadBackend(workers=workers)
    if name == "process":
        return ProcessBackend(workers=workers)
    if name == "auto":
        return AutoBackend(workers=workers, cost_model=cost_model)
    if name == "sharded":
        # Imported lazily: the shard subsystem imports this module for the
        # backend base class, so a top-level import would be circular.
        from ..shard.backend import ShardedBackend

        return ShardedBackend(shards=workers, cost_model=cost_model)
    raise ServiceError(
        f"unknown execution backend {backend!r}; expected one of {BACKEND_NAMES}"
    )

"""The GMine query service: shared datasets, many sessions, cached mining.

The paper's GMine is a single-user desktop tool.  This module turns the same
machinery into a multi-session query service:

* one :class:`GMineService` owns a shared :class:`~repro.core.gtree.GTree`
  (in-memory or backed by a :class:`~repro.storage.gtree_store.GTreeStore`)
  per registered dataset — the open handles live in a
  :class:`~repro.service.datasets.DatasetRegistry` that also implements
  hot-reload (``POST /v1/datasets/<name>/reload``),
* every user gets an independent :class:`ServiceSession` (its own focus and
  history) created/resumed/expired through the :class:`SessionManager`,
* every operation is **declared, not hand-dispatched**: the service executes
  whatever the GMine Protocol v2 registry (:mod:`repro.api.ops`) declares
  — dataset-scoped mining ops and session-scoped ops alike.
  Validation, canonicalization and cache keys all derive from each op's
  :class:`~repro.api.registry.OpSpec`, so the service has no per-op
  ``if/elif`` branching left,
* every **expensive** op compiles to a pure, picklable
  :class:`~repro.api.plans.ComputePlan` and runs on the configured
  :class:`~repro.service.executors.ExecutionBackend` —
  ``backend="inline"`` (calling thread), ``"thread"`` (kernel thread
  pool), or ``"process"`` (warm worker processes that pre-load stores by
  path+fingerprint and scale CPU-bound mining with cores).  Cheap ops
  always run in the parent; encoding always happens in the parent,
* results are memoised in a thread-safe :class:`~repro.service.cache.ResultCache`
  keyed by ``(tree fingerprint, operation, spec-ordered canonical args)``;
  with ``cache_path=`` the cache resides in a SQLite file shared across
  processes and restarts,
* :meth:`GMineService.batch` deduplicates identical requests in flight and
  fans independent ones out over a worker pool, with per-request error
  isolation: one failing request poisons only its own result.

Remote access lives in :mod:`repro.api`: the HTTP front-end and the
:class:`~repro.api.client.GMineClient` both route through this class.
"""

from __future__ import annotations

import logging
import threading
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..api.ops import DEFAULT_REGISTRY, DelegatedResult, OpContext, ServiceOpContext
from ..api.registry import OperationRegistry, OpSpec
from ..api.wire import error_code_for, exception_for_code
from ..core.builder import build_gtree
from ..core.gtree import GTree
from ..core.session import ExplorationSession
from ..errors import GMineError, InvalidArgumentError, ServiceError
from ..graph.graph import Graph
from ..graph.io import load_graph_auto
from ..graph.shm import shm_stats
from ..mining.rwr import RWRResult, refresh_rwr
from ..storage.gtree_store import GTreeStore, save_gtree
from .cache import ResultCache, SQLiteCacheStore, StaleServe
from .costmodel import CostModel
from .datasets import DEFAULT_DATASET, DatasetHandle, DatasetRegistry
from .executors import ExecutionBackend, make_backend
from .feeds import ChangeFeed
from .resilience import Deadline
from .sessions import DEFAULT_SESSION_TTL, ServiceSession, SessionManager

logger = logging.getLogger(__name__)

#: Steady states remembered per dataset for incremental RWR refresh.
RWR_KEEPER_CAPACITY = 32

#: Server-side ceiling on one ``dataset.subscribe`` long-poll wait.  Clients
#: wanting to wait longer re-issue the poll from the returned ``next_since``.
MAX_SUBSCRIBE_TIMEOUT = 30.0

#: Operations the default registry declares (kept for backward compatibility;
#: the authoritative source is ``GMineService.registry``).
OPERATIONS = DEFAULT_REGISTRY.names()


@dataclass
class QueryRequest:
    """One service request: an operation plus canonicalizable arguments."""

    operation: str
    args: Dict[str, Any] = field(default_factory=dict)
    dataset: Optional[str] = None
    #: Total latency budget in milliseconds (``None`` = no deadline).
    deadline_ms: Optional[float] = None

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryRequest":
        """Build a request from a JSON-ish dict (``op``/``operation`` keys)."""
        operation = payload.get("operation", payload.get("op"))
        if not operation:
            raise ServiceError(f"request payload has no operation: {payload!r}")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
        return cls(
            operation=str(operation),
            args=dict(payload.get("args", {})),
            dataset=payload.get("dataset"),
            deadline_ms=deadline_ms,
        )


@dataclass
class QueryResult:
    """Outcome of one request: either a value or an isolated error.

    ``code`` carries the stable GMine Protocol error code (taxonomy in
    :mod:`repro.api.wire`) alongside the raw exception type name, so both
    transports surface the same structured failure.
    """

    request: QueryRequest
    ok: bool
    value: Any = None
    error: str = ""
    error_type: str = ""
    code: str = ""
    cached: bool = False
    #: True when the value is an expired cache entry served because the
    #: backing computation failed (degraded mode); ``cached`` is also set.
    degraded: bool = False
    #: Structured extras for the wire error (e.g. a GPath parse error's
    #: source span); forwarded verbatim into ``WireError.details``.
    error_details: Optional[Dict[str, Any]] = None
    #: Scope fingerprint of the dataset snapshot that actually produced
    #: ``value`` (populated for streamable ops only).  The stream router
    #: stamps cursors with it, so a cursor issued for one content version
    #: can never serve pages computed on another — even when an edit
    #: lands between fingerprint read and dispatch.
    fingerprint: Optional[str] = None

    def unwrap(self) -> Any:
        """Return the value, re-raising the recorded failure as a typed error.

        The exception class is resolved from the structured error code —
        an expired session raises :class:`~repro.errors.SessionExpiredError`,
        a bad argument raises :class:`~repro.errors.InvalidArgumentError`,
        and so on; every one is a :class:`~repro.errors.GMineError`.
        """
        if not self.ok:
            message = (
                f"request {self.request.operation!r} failed: "
                f"{self.error_type}: {self.error}"
            )
            if self.code:
                raise exception_for_code(self.code, message)
            raise ServiceError(message)
        return self.value


class GMineService:
    """Concurrent multi-session query engine over shared G-Trees.

    Parameters
    ----------
    cache_capacity / cache_ttl:
        Sizing of the shared :class:`ResultCache`.
    session_ttl:
        Seconds of inactivity after which a session expires
        (``None`` disables expiry).
    max_workers:
        Worker threads used by :meth:`batch` (and the default worker count
        for pooled execution backends).
    clock:
        Injectable monotonic time source shared by cache and sessions.
    registry:
        The :class:`~repro.api.registry.OperationRegistry` to serve;
        defaults to the GMine Protocol v2 table.  Every op the service can
        execute is declared there — there is no other dispatch path.
    backend:
        Where expensive compute plans run: ``"inline"`` (default; the
        calling thread), ``"thread"``/``"thread:N"``, ``"process"``/
        ``"process:N"``, or a pre-built
        :class:`~repro.service.executors.ExecutionBackend` instance.
    cache_path:
        Optional SQLite file for the result cache.  Entries persist across
        restarts and are shared by every process pointing at the same file
        (keys carry the tree fingerprint, so a rebuilt dataset never serves
        stale answers).
    shared_prepared:
        Publish widest-scope :class:`~repro.graph.matrix.PreparedGraph`
        buffers into shared-memory segments process workers attach
        zero-copy.  Defaults to on for the ``process`` and ``auto``
        backends (the only ones with workers to share with), off
        otherwise; forced off where the platform lacks shared memory.
    cost_model_path:
        JSON file persisting the ``auto`` backend's measured per-(op,
        venue) latency model.  Defaults to ``<cache_path>.cost.json``
        when a cache path is set (the "small table next to the cache
        DB"); with neither, the model is in-memory only for backend
        strings of ``auto`` and absent otherwise.
    """

    def __init__(
        self,
        cache_capacity: int = 512,
        cache_ttl: Optional[float] = None,
        session_ttl: Optional[float] = DEFAULT_SESSION_TTL,
        max_workers: int = 4,
        clock=None,
        registry: Optional[OperationRegistry] = None,
        backend: Union[str, ExecutionBackend, None] = "inline",
        cache_path: Optional[Union[str, Path]] = None,
        shared_prepared: Optional[bool] = None,
        cost_model_path: Optional[Union[str, Path]] = None,
        fault_injector: Optional[Any] = None,
    ) -> None:
        import time

        clock = clock or time.monotonic
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._injector = fault_injector
        self._clock = clock
        store = None
        if cache_path is not None:
            store = SQLiteCacheStore(cache_path, capacity=cache_capacity)
        self.cache = ResultCache(
            capacity=cache_capacity,
            ttl=cache_ttl,
            clock=clock,
            store=store,
            injector=fault_injector,
        )
        backend_name = (
            backend.name if isinstance(backend, ExecutionBackend)
            else str(backend or "inline").partition(":")[0]
        )
        cost_model = None
        if backend_name in ("auto", "sharded") and not isinstance(
            backend, ExecutionBackend
        ):
            path = cost_model_path
            if path is None and cache_path is not None:
                path = f"{cache_path}.cost.json"
            cost_model = CostModel(path=None if path is None else str(path))
        self.backend = make_backend(
            backend, workers=max_workers, cost_model=cost_model
        )
        self.sessions = SessionManager(default_ttl=session_ttl, clock=clock)
        self.max_workers = max_workers
        if shared_prepared is None:
            shared_prepared = backend_name in ("process", "auto", "sharded")
        self.registry_of_datasets = DatasetRegistry(share_prepared=shared_prepared)
        self._lock = threading.RLock()
        self._compute_counts: Counter = Counter()
        self._executor: Optional[ThreadPoolExecutor] = None
        # Per-dataset change feeds driving ``dataset.subscribe``; created
        # lazily so subscribing to a dataset that never changes costs one
        # small ring buffer at most.
        self._feeds: Dict[str, ChangeFeed] = {}
        self._closing = False
        # Per-dataset LRU of the most recent converged power-iteration
        # steady states, keyed by canonical args (no fingerprint): the warm
        # starts ``dataset.apply {refresh_rwr: true}`` reseeds from.
        self._rwr_states: Dict[str, "OrderedDict[Tuple, Dict[str, Any]]"] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down workers, the backend, the cache store, and owned stores.

        The executor is detached under the lock but shut down outside it:
        in-flight worker tasks take the service lock themselves, so waiting
        for them while holding it would deadlock.  Stores are closed only
        after the workers have drained.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            feeds = list(self._feeds.values())
            self._closing = True
        # Wake long-polling subscribers first: worker threads blocked in
        # ``dataset.subscribe`` return immediately instead of sleeping out
        # their timeout, so the executor shutdown below cannot hang.
        for feed in feeds:
            feed.close()
        if executor is not None:
            executor.shutdown(wait=True)
        self.backend.close()
        for handle in self.registry_of_datasets.drain():
            if handle.owns_store and handle.store is not None:
                handle.store.close()
        self.cache.close()

    def __enter__(self) -> "GMineService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dataset registry
    # ------------------------------------------------------------------ #
    def register_tree(
        self, tree: GTree, graph: Optional[Graph] = None, name: str = DEFAULT_DATASET
    ) -> str:
        """Share an in-memory G-Tree (and optionally its full graph)."""
        handle = self.registry_of_datasets.register_tree(tree, graph=graph, name=name)
        self._warm_backend(handle)
        return handle.name

    def _warm_backend(self, handle: DatasetHandle) -> None:
        """Warm the backend for ``handle`` — publishing the prepared view first.

        With sharing on, the widest-scope preparation is built (and its
        buffers published to a shared segment) *before* the spec is
        flattened, so the warm tasks carry the segment manifest and the
        workers attach zero-copy instead of rebuilding the CSR.
        """
        if self.registry_of_datasets.share_prepared and handle.graph is not None:
            handle.prepared_graph()
        self.backend.warm(handle.exec_spec(), handle)

    def register_store(
        self,
        store: Union[GTreeStore, str, Path],
        graph: Optional[Graph] = None,
        name: str = DEFAULT_DATASET,
        graph_path: Optional[Union[str, Path]] = None,
    ) -> str:
        """Share a stored G-Tree; a path is opened (and owned) by the service.

        ``graph_path`` lets process-backend workers reload the full graph
        by file; when a live ``graph`` is attached without it, plans that
        need the graph fall back to in-parent execution.
        """
        handle = self.registry_of_datasets.register_store(
            store, graph=graph, name=name, graph_path=graph_path
        )
        self._warm_backend(handle)
        return handle.name

    def ingest_dataset(
        self,
        name: str,
        path: Union[str, Path],
        fanout: int = 5,
        levels: int = 5,
        seed: int = 0,
        store: Optional[Union[str, Path]] = None,
    ) -> Dict[str, Any]:
        """Load a user graph file, build its G-Tree, register it live.

        The loading pipeline behind the ``dataset.ingest`` op and the
        ``gmine ingest`` CLI: read the graph (format by suffix — see
        :func:`~repro.graph.io.load_graph_auto`), partition it into a
        G-Tree, and register the result so every op, session, stream and
        cache immediately serves it.  With ``store`` the built tree is
        persisted and served from the store file (process workers reload
        the graph by ``path``); otherwise it stays in memory.
        """
        if name in self.registry_of_datasets.names():
            raise InvalidArgumentError(
                f"dataset {name!r} is already registered"
            )
        try:
            graph = load_graph_auto(path)
        except OSError as error:
            raise InvalidArgumentError(
                f"cannot read graph file {str(path)!r}: {error}"
            ) from error
        if graph.num_nodes == 0:
            raise InvalidArgumentError(
                f"graph file {str(path)!r} contains no vertices"
            )
        tree = build_gtree(graph, fanout=fanout, levels=levels, seed=seed)
        if store is not None:
            save_gtree(tree, store)
            registered = self.register_store(
                store, graph=graph, name=name, graph_path=path
            )
        else:
            registered = self.register_tree(tree, graph=graph, name=name)
        handle = self._dataset(registered)
        return {
            "dataset": registered,
            "fingerprint": handle.fingerprint,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "tree": {
                "communities": tree.num_tree_nodes,
                "leaves": len(tree.leaves()),
                "depth": tree.depth(),
            },
            "store": None if store is None else str(store),
            "source": str(path),
        }

    def datasets(self) -> List[str]:
        """Names of every registered dataset."""
        return self.registry_of_datasets.names()

    def describe_datasets(self) -> List[Dict[str, Any]]:
        """Full dataset table: kind, fingerprint, backing paths."""
        return self.registry_of_datasets.describe()

    def reload_dataset(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Hot-reload a dataset from its backing file and invalidate its cache.

        Reopens the store (picking up a rebuilt ``.gtree``), swaps a fresh
        immutable :class:`~repro.service.datasets.DatasetHandle` into the
        registry, drops every cached result keyed by the *previous*
        fingerprint, and re-warms process workers.  Live sessions and
        requests already dispatched keep working: they hold the old handle,
        whose store stays open (retired, closed at shutdown) — everything
        they compute is keyed by the old fingerprint against the old tree,
        a consistent pair, so nothing stale is ever served under the new
        key and nothing wrong under the old one.
        """
        report = self.registry_of_datasets.reload(name)
        report["invalidated"] = self._invalidate_for(report)
        self._warm_backend(self.registry_of_datasets.get(report["dataset"]))
        if report["changed"]:
            self._publish_change(report, kind="reload")
        return report

    def apply_dataset(
        self,
        name: Optional[str] = None,
        script: Sequence[Dict[str, Any]] = (),
        refresh_rwr: bool = False,
    ) -> Dict[str, Any]:
        """Apply an edit script to a mutable dataset (``dataset.apply``).

        Delegates the copy-on-write edit and handle swap to
        :meth:`~repro.service.datasets.DatasetRegistry.apply`, then does the
        service-side bookkeeping the swap mandates: drops every cached
        result keyed by the previous **root** fingerprint or by a retired
        partition sub-fingerprint (entries for untouched communities keep
        their keys and survive), optionally warm-refreshes the remembered
        RWR steady states whose scope was touched (``refresh_rwr=True`` —
        results match a cold solve within the convergence tolerance, with
        an explicit cold fallback; the default query path stays cold and
        bitwise-reproducible), and publishes the change event subscribers
        long-polling ``dataset.subscribe`` are waiting on.
        """
        report = self.registry_of_datasets.apply(name, list(script))
        report["invalidated"] = self._invalidate_for(report)
        if report["changed"]:
            handle = self._dataset(report["dataset"])
            if refresh_rwr:
                report["rwr_refresh"] = self._refresh_rwr_states(handle, report)
            self._warm_backend(handle)
            self._publish_change(report, kind="apply")
        return report

    def subscribe(
        self,
        dataset: Optional[str] = None,
        since: int = 0,
        timeout: float = 0.0,
        community: Optional[Union[int, str]] = None,
    ) -> Dict[str, Any]:
        """Long-poll a dataset's change feed (``dataset.subscribe``).

        Returns every change event after sequence number ``since``
        (optionally filtered to those touching ``community``), waiting up
        to ``timeout`` seconds (capped server-side at
        :data:`MAX_SUBSCRIBE_TIMEOUT`) for one to arrive.  The reply
        always carries the dataset's **current** root fingerprint and the
        ``next_since`` watermark to resume from, so a poll loop never
        misses or re-reads an event; ``lagged`` warns that the bounded
        feed history overflowed the gap and a full resync is in order.
        """
        handle = self._dataset(dataset)
        scope = community
        if (
            isinstance(scope, int)
            and not isinstance(scope, bool)
            and handle.tree.has_node(scope)
        ):
            scope = handle.tree.node(scope).label
        wait = min(max(0.0, float(timeout)), MAX_SUBSCRIBE_TIMEOUT)
        events, lagged, next_since = self._feed(handle.name).wait_for(
            int(since), wait, scope if isinstance(scope, str) else None
        )
        # Re-resolve for the freshest fingerprint (the dataset may have
        # been swapped while we waited) — but a wake caused by shutdown
        # finds the registry already cleared, so fall back to the handle
        # resolved at entry rather than failing the (clean) long-poll.
        try:
            fingerprint = self._dataset(dataset).fingerprint
        except GMineError:
            fingerprint = handle.fingerprint
        return {
            "dataset": handle.name,
            "fingerprint": fingerprint,
            "since": int(since),
            "next_since": next_since,
            "lagged": lagged,
            "events": [event.as_payload() for event in events],
        }

    def _feed(self, name: str) -> ChangeFeed:
        with self._lock:
            feed = self._feeds.setdefault(name, ChangeFeed(injector=self._injector))
            if self._closing:
                # A long-poll that races service shutdown must not park on
                # a fresh feed nobody will ever wake.
                feed.close()
            return feed

    def _invalidate_for(self, report: Dict[str, Any]) -> int:
        """Drop cache entries retired by one apply/reload change report.

        The previous root fingerprint keys every widest-scope entry; each
        retired partition sub-fingerprint keys the entries scoped to a
        community the change touched.  Entries keyed by a *surviving*
        sub-fingerprint are deliberately left in place — that survival is
        the point of partition-scoped keys.

        Invalidation is best-effort residency cleanup: by the time it runs
        the handle swap has already committed, and every retired key is
        unreachable anyway (cache keys derive from the fingerprints the
        *current* handle serves).  A failing cache store therefore must not
        fail the edit or swallow its change event; failures are counted in
        the report's ``invalidation_errors`` and logged.
        """
        if not report["changed"]:
            return 0
        invalidated = 0
        errors = 0
        stale_fingerprints = (
            report["previous_fingerprint"],
            *report.get("retired_partition_fingerprints", ()),
        )
        for stale in stale_fingerprints:
            try:
                invalidated += self.cache.invalidate_fingerprint(stale)
            except Exception:  # noqa: BLE001 — residency cleanup only
                errors += 1
                logger.warning(
                    "cache invalidation failed for retired fingerprint %s "
                    "of dataset %r; entries are unreachable and will age out",
                    stale, report["dataset"], exc_info=True,
                )
        if errors:
            report["invalidation_errors"] = errors
        return invalidated

    def _publish_change(self, report: Dict[str, Any], kind: str) -> None:
        # The edit has already committed; a broken feed (or an injected
        # ``feed.publish`` fault) must not turn a successful apply into an
        # error.  Subscribers that miss the event resync via ``lagged``.
        try:
            self._feed(report["dataset"]).publish(
                dataset=report["dataset"],
                kind=kind,
                fingerprint=report["fingerprint"],
                previous_fingerprint=report["previous_fingerprint"],
                changed_partitions=dict(report.get("changed_partitions", {})),
                edits=int(report.get("edits", 0)),
            )
        except Exception:  # noqa: BLE001 — notification is best-effort
            logger.warning(
                "change-feed publish failed for dataset %r (%s); subscribers "
                "will observe the change as a lag/resync",
                report["dataset"], kind, exc_info=True,
            )

    def fingerprint(self, dataset: Optional[str] = None) -> str:
        """The cache-key fingerprint of a dataset's tree."""
        return self._dataset(dataset).fingerprint

    def stream_fingerprint(
        self, dataset: Optional[str], operation: str, args: Dict[str, Any]
    ) -> str:
        """The content fingerprint a stream cursor for this request pins.

        Partition-scoped ops pin the community's Merkle sub-fingerprint, so
        a cursor over a community an edit did not touch stays valid across
        ``dataset.apply``; everything else pins the root, expiring on any
        change.  The router validates resumed cursors against this value.
        """
        spec = self.registry.get(operation)
        if spec.scope == "session":
            # Session-context variants stream against the *session's*
            # dataset, and a defaulted community resolves to its focus —
            # mirroring the handler's delegation, so the cursor pins the
            # very sub-fingerprint the delegated dispatch keys by.
            canonical = spec.canonicalize(dict(args))
            session = self.peek_session(canonical["session_id"])
            handle = self._dataset(session.dataset)
            if spec.partition_arg is None:
                return handle.fingerprint
            scope = handle.context.resolve_community(
                canonical.get(spec.partition_arg)
            )
            if scope is None:
                scope = session.engine.focus.label
            return handle.scope_fingerprint(scope)
        handle = self._dataset(dataset)
        if spec.scope != "dataset" or spec.partition_arg is None:
            return handle.fingerprint
        canonical = spec.canonicalize(dict(args), handle.context)
        return self._scope_fp(handle, spec, canonical)

    def describe_ops(self) -> List[Dict[str, Any]]:
        """The registry's op table (name, schema, cacheability, cost class)."""
        return self.registry.describe()

    def _dataset(self, name: Optional[str]) -> DatasetHandle:
        return self.registry_of_datasets.get(name)

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def open_session(
        self,
        dataset: Optional[str] = None,
        ttl: Optional[float] = None,
        focus: Optional[Union[int, str]] = None,
        name: str = "session",
    ) -> ServiceSession:
        """Create an independent exploration session over a shared dataset.

        The session's engine routes its metric computations through the
        shared result cache, so interactive calls benefit from (and feed)
        the same memoisation as direct service calls.
        """
        handle = self._dataset(dataset)
        engine = handle.make_engine(metrics_fn=self._session_metrics_fn(handle))
        session = self.sessions.create(handle.name, engine, ttl=ttl, name=name)
        if focus is not None:
            if isinstance(focus, int):
                focus = handle.tree.node(focus).label
            session.recording.focus(focus)
        return session

    def resume_session(self, session_id: str) -> ServiceSession:
        """Return a live session, refreshing its TTL.

        Raises the structured taxonomy errors —
        :class:`~repro.errors.SessionExpiredError` for an aged-out id and
        :class:`~repro.errors.SessionNotFoundError` for one never issued —
        which both transports map to ``SESSION_EXPIRED`` /
        ``SESSION_NOT_FOUND`` wire codes.
        """
        return self.sessions.resume(session_id)

    def restore_session(
        self, payload: Dict[str, Any], dataset: Optional[str] = None
    ) -> ServiceSession:
        """Recreate a session from a serialized ``state_dict`` payload.

        The focus, bookmarks and recorded steps come back; the session gets
        a fresh id (state files can be restored more than once).
        """
        handle = self._dataset(dataset or payload.get("dataset"))
        engine = handle.make_engine(metrics_fn=self._session_metrics_fn(handle))
        recording = ExplorationSession.restore(engine, payload)
        session = self.sessions.create(
            handle.name, engine, name=recording.name
        )
        session.recording = recording
        return session

    def peek_session(self, session_id: str) -> ServiceSession:
        """Return a live session without refreshing its TTL (read-only)."""
        return self.sessions.peek(session_id)

    def close_session(self, session_id: str) -> None:
        """End a session explicitly (idempotent)."""
        self.sessions.close(session_id)

    def _session_metrics_fn(self, handle: DatasetHandle):
        """Metrics seam injected into session engines: cache by community.

        The cache key is built through the registry's ``metrics`` spec, so a
        session's interactive call and a direct service call for the same
        community share one cache entry by construction.
        """
        spec = self.registry.get("metrics")

        def metrics_fn(subgraph: Graph, community_label: str, hop_sample_size):
            canonical = spec.canonicalize(
                {"community": community_label, "hop_sample_size": hop_sample_size},
                handle.context,
            )
            key = spec.cache_key(self._scope_fp(handle, spec, canonical), canonical)
            return self.cache.get_or_compute(
                key,
                lambda: self._computed(
                    "metrics",
                    lambda: _metrics_on_subgraph(subgraph, canonical),
                ),
            )

        return metrics_fn

    # ------------------------------------------------------------------ #
    # cached operations
    # ------------------------------------------------------------------ #
    def call(self, operation: str, dataset: Optional[str] = None, **args) -> Any:
        """Execute one registered operation through the cache; raises on failure."""
        spec = self.registry.get(operation)
        if spec.scope != "dataset":
            value, _, _, _ = self._dispatch_session(
                spec, self._session_args(spec, args, dataset)
            )
            return value
        handle = self._dataset(dataset)
        value, _, _ = self._dispatch(handle, operation, args)
        return value

    def metrics(self, community=None, dataset=None, hop_sample_size=None):
        """Cached subgraph metric suite for a community (root by default)."""
        return self.call(
            "metrics", dataset=dataset,
            community=community, hop_sample_size=hop_sample_size,
        )

    def rwr(
        self,
        sources: Sequence,
        community=None,
        dataset=None,
        restart_probability: float = 0.15,
        solver: str = "power",
    ):
        """Cached RWR steady state over a community (or the full graph)."""
        return self.call(
            "rwr", dataset=dataset,
            sources=list(sources), community=community,
            restart_probability=restart_probability, solver=solver,
        )

    def connection_subgraph(
        self,
        sources: Sequence,
        community=None,
        dataset=None,
        budget: int = 30,
        restart_probability: float = 0.15,
    ):
        """Cached multi-source connection-subgraph extraction."""
        return self.call(
            "connection_subgraph", dataset=dataset,
            sources=list(sources), community=community,
            budget=budget, restart_probability=restart_probability,
        )

    def connectivity(self, community=None, dataset=None):
        """Cached connectivity edges among a community's children."""
        return self.call("connectivity", dataset=dataset, community=community)

    def inspect_edge(self, community_a, community_b, dataset=None):
        """Cached cross-edge inspection between two communities."""
        return self.call(
            "inspect_edge", dataset=dataset,
            community_a=community_a, community_b=community_b,
        )

    # ------------------------------------------------------------------ #
    # request execution and batching
    # ------------------------------------------------------------------ #
    def execute(self, request: Union[QueryRequest, Dict[str, Any]]) -> QueryResult:
        """Run one request, converting any failure into an errored result.

        Session-scoped operations dispatch through the same registry path
        as dataset ops; their failures — including an expired session
        inside a batch — carry the structured taxonomy code
        (``SESSION_EXPIRED``/``SESSION_NOT_FOUND``), never a generic one.
        """
        if isinstance(request, dict):
            request = QueryRequest.from_dict(request)
        fingerprint: Optional[str] = None
        degraded = False
        try:
            deadline = (
                None
                if request.deadline_ms is None
                else Deadline(request.deadline_ms, clock=self._clock)
            )
            spec = self.registry.get(request.operation)
            if spec.scope != "dataset":
                if deadline is not None:
                    deadline.check("dispatch")
                value, cached, degraded, fingerprint = self._dispatch_session(
                    spec,
                    self._session_args(spec, dict(request.args), request.dataset),
                )
            else:
                handle = self._dataset(request.dataset)
                value, cached, degraded = self._dispatch(
                    handle, request.operation, dict(request.args),
                    deadline=deadline,
                )
                if spec.stream is not None:
                    # Streamed results carry the fingerprint of the very
                    # snapshot the dispatch keyed by (same handle object),
                    # so cursors and content can never disagree.
                    canonical = spec.canonicalize(
                        dict(request.args), handle.context
                    )
                    fingerprint = self._scope_fp(handle, spec, canonical)
        except (GMineError, KeyError, TypeError, ValueError) as error:
            wire_details = getattr(error, "wire_details", None)
            return QueryResult(
                request=request,
                ok=False,
                error=str(error),
                error_type=type(error).__name__,
                code=error_code_for(error),
                error_details=(
                    wire_details() if callable(wire_details) else None
                ),
            )
        return QueryResult(
            request=request, ok=True, value=value, cached=cached,
            degraded=degraded, fingerprint=fingerprint,
        )

    def batch(
        self,
        requests: Sequence[Union[QueryRequest, Dict[str, Any]]],
        max_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Execute many requests: dedup identical ones, parallelise the rest.

        Identical requests (same dataset fingerprint, operation and
        canonical arguments) are executed once and their result is shared;
        independent requests run concurrently on the worker pool.  A request
        that fails (unknown community, unloadable leaf, bad arguments)
        yields an errored :class:`QueryResult` without affecting any other
        request in the batch.
        """
        parsed: List[Union[QueryRequest, QueryResult]] = []
        for item in requests:
            if isinstance(item, QueryRequest):
                parsed.append(item)
                continue
            try:
                parsed.append(QueryRequest.from_dict(item))
            except (GMineError, TypeError, AttributeError) as error:
                # A malformed entry is isolated like any other failure: it
                # becomes an errored result without sinking the batch.
                placeholder = QueryRequest(operation="<malformed>", args={})
                parsed.append(
                    QueryResult(
                        request=placeholder,
                        ok=False,
                        error=str(error),
                        error_type=type(error).__name__,
                        code=error_code_for(error),
                    )
                )
        order: List[Any] = []  # dedup key per request, in submission order
        unique: Dict[Any, QueryRequest] = {}
        for position, request in enumerate(parsed):
            if isinstance(request, QueryResult):
                order.append(None)
                continue
            # Only cacheable dataset ops have a stable request identity to
            # dedup on.  Session-scoped ops act on live, mutable session
            # state (two identical session.step requests must both apply)
            # and non-cacheable ops promise a fresh execution — both run
            # once per occurrence.
            key: Any = ("__undeduplicable__", position)
            try:
                spec = self.registry.get(request.operation)
                if spec.scope == "dataset" and spec.cacheable:
                    handle = self._dataset(request.dataset)
                    canonical = spec.canonicalize(request.args, handle.context)
                    # Requests with different deadlines are not identical:
                    # one may fast-reject while its twin completes.
                    key = (
                        spec.cache_key(
                            self._scope_fp(handle, spec, canonical), canonical
                        ),
                        request.deadline_ms,
                    )
            except (GMineError, TypeError, ValueError):
                pass
            order.append(key)
            unique.setdefault(key, request)

        executor = self._ensure_executor(max_workers)
        futures = {
            key: executor.submit(self.execute, request)
            for key, request in unique.items()
        }
        shared = {key: future.result() for key, future in futures.items()}
        results: List[QueryResult] = []
        for position, request in enumerate(parsed):
            if isinstance(request, QueryResult):
                results.append(request)
                continue
            outcome = shared[order[position]]
            if outcome.request is request:
                results.append(outcome)
            else:  # a deduplicated duplicate: same value, its own request
                results.append(
                    QueryResult(
                        request=request,
                        ok=outcome.ok,
                        value=outcome.value,
                        error=outcome.error,
                        error_type=outcome.error_type,
                        code=outcome.code,
                        cached=True,
                        degraded=outcome.degraded,
                        error_details=outcome.error_details,
                        fingerprint=outcome.fingerprint,
                    )
                )
        return results

    def _ensure_executor(self, max_workers: Optional[int]) -> ThreadPoolExecutor:
        stale: Optional[ThreadPoolExecutor] = None
        with self._lock:
            if (
                max_workers is not None
                and self._executor is not None
                and max_workers != self.max_workers
            ):
                stale, self._executor = self._executor, None
            if max_workers is not None:
                self.max_workers = max_workers
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="gmine-service",
                )
            executor = self._executor
        if stale is not None:
            # Outside the lock: its tasks may need the lock to finish.
            stale.shutdown(wait=True)
        return executor

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def compute_counts(self) -> Dict[str, int]:
        """How many times each operation was actually computed (not cached)."""
        with self._lock:
            return dict(self._compute_counts)

    def stats(self) -> Dict[str, Any]:
        """One JSON-friendly snapshot of cache, backend, compute and sessions."""
        with self._lock:
            computed = dict(self._compute_counts)
        with self._lock:
            feeds = {name: feed.last_seq for name, feed in self._feeds.items()}
        backend_stats = self.backend.stats()
        return {
            "cache": self.cache.describe(),
            "backend": backend_stats,
            "resilience": self._resilience_stats(backend_stats),
            "computed": computed,
            "sessions": {
                "active": len(self.sessions),
                "ids": self.sessions.active_ids(),
            },
            "datasets": self.datasets(),
            "dataset_info": self.describe_datasets(),
            "prepared_views": self.registry_of_datasets.prepared_views.describe(),
            "prepared_shared": dict(
                shm_stats(),
                enabled=self.registry_of_datasets.share_prepared,
            ),
            "feeds": feeds,
        }

    def _breaker_states(
        self, backend_stats: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        """Every circuit breaker's ``describe()`` across backend and cache."""
        found: List[Dict[str, Any]] = []

        def walk(node: Any) -> None:
            if not isinstance(node, dict):
                return
            breaker = node.get("breaker")
            if isinstance(breaker, dict) and "state" in breaker:
                found.append(breaker)
            for value in node.values():
                if isinstance(value, dict):
                    walk(value)

        walk(backend_stats if backend_stats is not None else self.backend.stats())
        store_breaker = getattr(self.cache.store, "breaker", None)
        if store_breaker is not None:
            found.append(store_breaker.describe())
        return found

    def _resilience_stats(
        self, backend_stats: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """The ``resilience`` block of ``/v1/stats``: breakers, deadlines, degradation."""
        if backend_stats is None:
            backend_stats = self.backend.stats()
        cache_stats = self.cache.stats.as_dict()
        payload: Dict[str, Any] = {
            "breakers": self._breaker_states(backend_stats),
            "deadline": dict(
                backend_stats.get(
                    "deadline",
                    {"rejected": 0, "abandoned": 0, "worker_cancelled": 0},
                )
            ),
            "stale_serves": cache_stats.get("stale_serves", 0),
            "store_errors": cache_stats.get("store_errors", 0),
        }
        if self._injector is not None and hasattr(self._injector, "describe"):
            payload["faults"] = self._injector.describe()
        return payload

    def health(self) -> Dict[str, Any]:
        """Liveness/readiness snapshot backing ``/healthz`` and ``/readyz``.

        ``ok`` is liveness (the service object answers at all); ``ready``
        means it can serve real traffic: at least one dataset is
        registered and no circuit breaker is currently open.  Half-open
        breakers count as ready — probes are how they heal.
        """
        breakers = self._breaker_states()
        open_breakers = [
            breaker["name"] for breaker in breakers if breaker["state"] == "open"
        ]
        datasets = self.datasets()
        return {
            "ok": True,
            "ready": bool(datasets) and not open_breakers,
            "datasets": len(datasets),
            "open_breakers": open_breakers,
        }

    def _computed(self, operation: str, compute: Callable[[], Any]) -> Any:
        """Run a computation, counting it against ``operation``."""
        value = compute()
        with self._lock:
            self._compute_counts[operation] += 1
        return value

    # ------------------------------------------------------------------ #
    # operation dispatch (fully registry-driven)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _session_args(spec: OpSpec, args: Dict[str, Any], dataset: Optional[str]):
        """Fold an envelope-level dataset into a session op's arguments.

        Session ops that accept a ``dataset`` argument (``session.create``,
        ``session.restore``) honour the request envelope's ``dataset``
        field when the argument itself was not given, so both spellings
        behave identically.
        """
        args = dict(args)
        if (
            dataset is not None
            and "dataset" in spec.arg_names
            and args.get("dataset") is None
        ):
            args["dataset"] = dataset
        return args

    def _dispatch_session(self, spec: OpSpec, args: Dict[str, Any]):
        """Run one session- or service-scoped op.

        Returns ``(value, cached, degraded, fingerprint)`` — the
        fingerprint is the delegated dataset snapshot's scope fingerprint
        for streamable mining variants, ``None`` for lifecycle ops.

        Session ops canonicalize through their spec exactly like dataset
        ops but bypass the result cache — their outcomes depend on live
        session state the cache key cannot see.  The session-context
        mining variants delegate the heavy kernel back into the dataset
        dispatch (wrapped in a :class:`~repro.api.ops.DelegatedResult`),
        so it still runs on the configured backend and shares cache
        entries with direct calls; only those delegations report honest
        ``cached`` flags, and their compute is counted under the dataset
        op's name by the inner dispatch.
        """
        canonical = spec.canonicalize(args)
        value = spec.handler(ServiceOpContext(service=self), canonical)
        if isinstance(value, DelegatedResult):
            return value.value, value.cached, value.degraded, value.fingerprint
        with self._lock:
            self._compute_counts[spec.name] += 1
        return value, False, False, None

    def dispatch_in_session(self, session: ServiceSession, operation: str, args):
        """Dataset dispatch under a session's dataset.

        The seam the registry's session-context mining variants call back
        into: same validation, cache keying and backend execution as a
        direct dataset call.  Returns ``(value, cached, fingerprint)``;
        the fingerprint (streamable twins only) is the scope fingerprint
        of the exact handle snapshot the dispatch ran against, so session
        stream cursors pin the content version that produced their pages.
        Returns ``(value, cached, degraded, fingerprint)``.
        """
        handle = self._dataset(session.dataset)
        value, cached, degraded = self._dispatch(handle, operation, dict(args))
        spec = self.registry.get(operation)
        fingerprint = None
        if spec.stream is not None:
            canonical = spec.canonicalize(dict(args), handle.context)
            fingerprint = self._scope_fp(handle, spec, canonical)
        return value, cached, degraded, fingerprint

    def _dispatch(
        self,
        handle: DatasetHandle,
        operation: str,
        args: Dict[str, Any],
        deadline: Optional[Deadline] = None,
    ):
        """Run one registered operation; returns ``(value, cached, degraded)``.

        The spec supplies everything: validation and canonicalization
        (:meth:`OpSpec.canonicalize`), the cache key derived from spec
        field order (:meth:`OpSpec.cache_key`), the compute handler, and —
        for plannable expensive ops — the picklable plan the configured
        backend executes.  Non-cacheable ops bypass the result cache
        entirely.

        Cacheable ops ask the cache for ``stale_ok`` degraded serving: if
        the compute fails with anything but a deadline expiry and an
        expired entry for the key is still resident, that stale value is
        served with ``degraded=True`` instead of the error.
        """
        spec = self.registry.get(operation)
        canonical = spec.canonicalize(args, handle.context)

        def compute() -> Any:
            performed.append(True)
            return self._computed(
                operation,
                lambda: self._execute_op(handle, spec, canonical, deadline),
            )

        performed: List[bool] = []
        if deadline is not None:
            deadline.check("dispatch")
        if not spec.cacheable:
            return compute(), False, False
        key = spec.cache_key(self._scope_fp(handle, spec, canonical), canonical)
        value = self.cache.get_or_compute(key, compute, stale_ok=True)
        if isinstance(value, StaleServe):
            # Expired entry served because the backend failed: honest flags,
            # and no warm-start bookkeeping from possibly-outdated numbers.
            return value.value, True, True
        if operation == "rwr":
            self._remember_rwr(handle, canonical, value)
        return value, not performed, False

    @staticmethod
    def _scope_fp(handle: DatasetHandle, spec: OpSpec, canonical) -> str:
        """The fingerprint keying one canonical request: root or partition.

        Ops whose spec declares a ``partition_arg`` (their result is a pure
        function of that community's induced content) key on the Merkle
        sub-fingerprint, so their entries survive edits that do not touch
        the community; everything else keys on the root as before.
        """
        if spec.partition_arg is None:
            return handle.fingerprint
        return handle.scope_fingerprint(canonical.get(spec.partition_arg))

    # ------------------------------------------------------------------ #
    # incremental RWR refresh
    # ------------------------------------------------------------------ #
    def _remember_rwr(self, handle: DatasetHandle, canonical, value) -> None:
        """Record a converged power-iteration steady state as a warm start."""
        if canonical.get("solver") != "power":
            return
        if not isinstance(value, RWRResult) or not value.converged:
            return
        spec = self.registry.get("rwr")
        key = spec.cache_fields(canonical)
        with self._lock:
            keeper = self._rwr_states.setdefault(handle.name, OrderedDict())
            keeper[key] = {"canonical": dict(canonical), "result": value}
            keeper.move_to_end(key)
            while len(keeper) > RWR_KEEPER_CAPACITY:
                keeper.popitem(last=False)

    def _refresh_rwr_states(
        self, handle: DatasetHandle, report: Dict[str, Any]
    ) -> Dict[str, int]:
        """Warm-refresh remembered steady states whose scope an edit touched.

        Each entry is re-solved on the edited content seeded from its
        pre-edit fixed point (:func:`~repro.mining.rwr.refresh_rwr`), and
        installed in the cache under its **new** scoped key — so the first
        query after the edit hits warm.  Entries scoped to an untouched
        community are skipped outright: their cache entries survived the
        edit by key construction, and overwriting a surviving cold result
        with a warm one would trade bitwise reproducibility for nothing.
        Entries whose sources vanished from the edited graph are dropped.
        """
        spec = self.registry.get("rwr")
        changed_labels = set(report.get("changed_partitions", {}))
        with self._lock:
            keeper = self._rwr_states.get(handle.name)
            entries = list(keeper.items()) if keeper else []
        counts = {"entries": len(entries), "refreshed": 0, "cold": 0,
                  "skipped": 0, "dropped": 0}
        for key, entry in entries:
            canonical = entry["canonical"]
            scope = canonical.get("community")
            touched = (
                scope is None
                or scope in changed_labels
                # A scope the edited tree cannot resolve keys on the root
                # now; its old sub-fingerprint entry is gone either way.
                or handle.scope_fingerprint(scope) == handle.fingerprint
            )
            if not touched:
                counts["skipped"] += 1
                continue
            try:
                engine = handle.make_engine()
                ctx = OpContext(
                    engine=engine, prepared_provider=handle.prepared_provider
                )
                subgraph = ctx.community_subgraph(scope)
                results, warm = refresh_rwr(
                    subgraph,
                    [canonical["sources"]],
                    [entry["result"]],
                    restart_probability=canonical["restart_probability"],
                    strict=False,
                    prepared=ctx.prepared_for(scope, subgraph),
                )
            except GMineError:
                with self._lock:
                    keeper = self._rwr_states.get(handle.name)
                    if keeper is not None:
                        keeper.pop(key, None)
                counts["dropped"] += 1
                continue
            result = results[0]
            if not result.converged:
                counts["dropped"] += 1
                continue
            counts["refreshed" if warm[0] else "cold"] += 1
            self.cache.put(
                spec.cache_key(self._scope_fp(handle, spec, canonical), canonical),
                result,
            )
            with self._lock:
                self._compute_counts["rwr_refresh"] += 1
            self._remember_rwr(handle, canonical, result)
        return counts

    def _execute_op(
        self,
        handle: DatasetHandle,
        spec: OpSpec,
        canonical: Dict[str, Any],
        deadline: Optional[Deadline] = None,
    ) -> Any:
        """Run one canonicalized op on the right venue.

        Expensive plannable ops go to the execution backend (which may ship
        the plan to a worker process, run it on a kernel thread, or fall
        back to the parent); cheap ops — tree lookups, edge inspection —
        always run in the parent, honouring the spec's declared cost class.
        The deadline travels with the plan so backends can fast-reject and
        abandon; injected ``worker.run``/``store.read`` faults fire at the
        same boundaries real backend/store failures occur.
        """
        injector = self._injector

        def local() -> Any:
            if injector is not None:
                injector.fire("store.read")
            return spec.handler(
                OpContext(
                    engine=handle.make_engine(),
                    prepared_provider=handle.prepared_provider,
                ),
                canonical,
            )

        if spec.planner is None or spec.cost != "expensive":
            return local()
        if injector is not None:
            injector.fire("worker.run")
        plan = spec.plan(canonical)
        return self.backend.run(handle.exec_spec(), plan, local, deadline=deadline)


def _metrics_on_subgraph(subgraph: Graph, canonical: Dict[str, Any]):
    """Run the metrics kernel against an already-materialised subgraph.

    Delegates to the same :data:`~repro.api.plans.KERNELS` entry the
    execution backends run, so the session path and the plan path cannot
    drift apart while sharing cache keys.
    """
    from ..api.plans import KERNELS

    return KERNELS["metrics"](subgraph, canonical)

"""Resilience primitives: deadlines, retry policies, circuit breakers.

Three small, dependency-free building blocks shared by the whole stack:

- :class:`Deadline` — a request's total latency budget, created once at
  the edge from the envelope's ``deadline_ms`` and threaded through
  dispatch so every layer can cheaply ask "is there still time?".
- :class:`RetryPolicy` — bounded exponential backoff with injectable
  jitter source, sleep, and clock.  Used opt-in by the client for
  idempotent (cacheable) operations and by :class:`SQLiteCacheStore`
  for ``database is locked`` contention.
- :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine guarding a failure-prone venue (the process pool, the SQLite
  cache store).  While open, callers skip the venue entirely and fall
  back (local execution, cache miss, stale serve) instead of queueing
  behind a broken dependency.

Everything takes its clock (and, for retries, its RNG and sleep) as a
constructor argument so the chaos suite drives each state machine
deterministically; defaults are the real ``time`` module.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, Optional

from ..errors import DeadlineExceededError

__all__ = ["CircuitBreaker", "Deadline", "RetryPolicy"]


class Deadline:
    """A monotonic expiry point for one request.

    Immutable after construction; sharable across threads.  ``remaining()``
    is in seconds (may be negative once past due) so it can feed directly
    into ``future.result(timeout=...)`` and cost-model comparisons.
    """

    __slots__ = ("budget_ms", "expires_at", "_clock")

    def __init__(
        self, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        budget = float(budget_ms)
        if budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms!r}")
        self.budget_ms = budget
        self._clock = clock
        self.expires_at = clock() + budget / 1000.0

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        """Raise ``DeadlineExceededError`` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.budget_ms:g}ms exceeded ({stage})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(budget_ms={self.budget_ms:g}, remaining={self.remaining():.4f}s)"


class RetryPolicy:
    """Bounded exponential backoff with injectable jitter/sleep/clock.

    ``delay(attempt)`` for attempt ``0..attempts-2`` is
    ``min(max_delay, base_delay * multiplier**attempt)`` scaled by up to
    ``jitter`` fraction of itself (drawn from ``rng``, so a seeded
    ``random.Random`` makes the schedule reproducible).  An explicit
    ``retry_after`` hint from the server overrides the computed delay.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts!r}")
        if base_delay < 0 or max_delay < 0 or jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self.retries = 0

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        if retry_after is not None:
            return max(0.0, float(retry_after))
        base = min(self.max_delay, self.base_delay * (self.multiplier ** attempt))
        if self.jitter:
            with self._lock:
                base *= 1.0 + self.jitter * self._rng.random()
        return base

    def pause(self, attempt: int, retry_after: Optional[float] = None) -> None:
        """Sleep out the backoff before retry number ``attempt + 1``."""
        with self._lock:
            self.retries += 1
        self._sleep(self.delay(attempt, retry_after))

    def run(
        self,
        fn: Callable[[], Any],
        retryable: Callable[[BaseException], bool],
    ) -> Any:
        """Call ``fn``, retrying failures ``retryable`` deems transient."""
        for attempt in range(self.attempts):
            try:
                return fn()
            except Exception as error:
                if attempt >= self.attempts - 1 or not retryable(error):
                    raise
                self.pause(attempt, getattr(error, "retry_after", None))
        raise AssertionError("unreachable")  # pragma: no cover

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            retries = self.retries
        return {
            "attempts": self.attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "retries": retries,
        }


#: CircuitBreaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open breaker around a failure-prone venue.

    ``allow()`` gates entry: closed always admits; open rejects until
    ``reset_timeout`` has elapsed, then transitions to half-open and
    admits up to ``success_threshold`` concurrent probes.  Probe results
    feed back through ``record_success``/``record_failure``: enough
    successes re-close the breaker, any failure re-opens it (and resets
    the recovery clock).  Failures while closed only trip the breaker
    once ``failure_threshold`` *consecutive* failures accumulate — a
    single success resets the count.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        success_threshold: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1 or success_threshold < 1:
            raise ValueError("breaker thresholds must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.success_threshold = int(success_threshold)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive failures while closed
        self._probes = 0  # probes admitted while half-open
        self._probe_successes = 0
        self._opened_at = 0.0
        self.trips = 0
        self.rejections = 0

    # ---------------------------------------------------------------- #
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # caller holds the lock
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._probes = 0
            self._probe_successes = 0

    def _trip(self) -> None:
        # caller holds the lock
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self.trips += 1

    def allow(self) -> bool:
        """True if the caller may attempt the protected venue now."""
        with self._lock:
            if self._state == CLOSED:
                return True
            self._maybe_half_open()
            if self._state == OPEN:
                self.rejections += 1
                return False
            if self._probes < self.success_threshold:
                self._probes += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.success_threshold:
                    self._state = CLOSED
                    self._failures = 0
            else:
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return
            if self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()

    def remaining_open(self) -> float:
        """Seconds until an open breaker starts probing (0 otherwise)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "trips": self.trips,
                "rejections": self.rejections,
            }

"""Thread-safe LRU+TTL cache for mining results, with in-flight dedup.

The service layer sits many concurrent exploration sessions on top of one
shared G-Tree; the expensive calls they issue — RWR steady states, subgraph
metric suites, connection subgraphs, cross-edge inspections — are pure
functions of (tree contents, operation, arguments).  :class:`ResultCache`
memoises them under exactly that key:

* **LRU** bounds residency the same way the storage buffer pool bounds leaf
  subgraphs: hot results stay, cold ones are evicted in recency order.
* **TTL** (optional) ages results out so a long-lived service does not pin
  stale answers for datasets that get rebuilt under the same name.
* **Single-flight** in-flight dedup: when two sessions ask the same question
  concurrently, the first computes and every other waiter blocks on the same
  computation instead of repeating it — the "compute once, reuse" contract
  holds even under races.

Keys are built by :func:`canonical_args`, which normalises argument
structures (dict ordering, lists vs tuples, sets) so equivalent requests
collide on the same entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple

from ..errors import ServiceError


def canonical_args(value: Any) -> Hashable:
    """Normalise an argument structure into a deterministic hashable form.

    Dicts become ``("{}", sorted (key, value) pairs)``, lists/tuples become
    tuples, sets become sorted tuples; scalars pass through.  Two calls that
    differ only in container type or dict ordering therefore produce the
    same key.
    """
    if isinstance(value, Mapping):
        return ("{}",) + tuple(
            (str(key), canonical_args(value[key])) for key in sorted(value, key=str)
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical_args(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonical_args(item) for item in value), key=repr))
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    # Fall back to repr for exotic argument objects; deterministic per type.
    return repr(value)


def make_cache_key(fingerprint: str, operation: str, args: Mapping[str, Any]) -> Tuple:
    """Build the cache key for one request: (tree fingerprint, op, args)."""
    return (fingerprint, operation, canonical_args(args))


@dataclass
class CacheStats:
    """Hit/miss/eviction/expiry accounting for one result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    coalesced: int = 0  # waiters that piggybacked on an in-flight computation

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses + coalesced waits)."""
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a fresh computation."""
        if self.accesses == 0:
            return 0.0
        return (self.hits + self.coalesced) / self.accesses

    def as_dict(self) -> Dict[str, float]:
        """Flatten to JSON-friendly primitives (for the CLI and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "coalesced": self.coalesced,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.coalesced = 0


@dataclass
class _InFlight:
    """Bookkeeping for one computation currently being produced."""

    done: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: Optional[BaseException] = None


class ResultCache:
    """Capacity-bounded, optionally time-bounded memo table for query results.

    Parameters
    ----------
    capacity:
        Maximum number of results held at once (>= 1).
    ttl:
        Seconds a result stays valid, or ``None`` for no age limit.
    clock:
        Monotonic time source; injectable so tests can advance time
        deterministically.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"result cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ServiceError(f"result cache ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self.stats = CacheStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, Optional[float]]]" = OrderedDict()
        self._inflight: Dict[Hashable, _InFlight] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return self._fresh(key)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it at most once.

        Concurrent callers with the same key coalesce onto one computation;
        if that computation raises, every coalesced waiter sees the same
        exception and nothing is cached (the next request retries).
        """
        while True:
            with self._lock:
                if self._fresh(key):
                    self.stats.hits += 1
                    self._entries.move_to_end(key)
                    return self._entries[key][0]
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    owner = True
                else:
                    owner = False
            if owner:
                break
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.stats.coalesced += 1
            return flight.value

        # This thread owns the computation.
        try:
            value = compute()
        except BaseException as error:
            flight.error = error
            with self._lock:
                self._inflight.pop(key, None)
                self.stats.misses += 1
            flight.done.set()
            raise
        with self._lock:
            self.stats.misses += 1
            self._store(key, value)
            self._inflight.pop(key, None)
        flight.value = value
        flight.done.set()
        return value

    def peek(self, key: Hashable) -> Any:
        """Return the cached value without recording a hit; KeyError on miss."""
        with self._lock:
            if not self._fresh(key):
                raise KeyError(key)
            return self._entries[key][0]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh a value directly (bypasses single-flight)."""
        with self._lock:
            self._store(key, value)

    def invalidate(self, key: Hashable) -> None:
        """Drop one key (no-op when absent)."""
        with self._lock:
            self._entries.pop(key, None)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry whose key belongs to ``fingerprint``; return count."""
        with self._lock:
            stale = [key for key in self._entries
                     if isinstance(key, tuple) and key and key[0] == fingerprint]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Empty the cache (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def sweep(self) -> int:
        """Evict every expired entry now; return how many were dropped."""
        with self._lock:
            now = self._clock()
            expired = [
                key
                for key, (_, expires_at) in self._entries.items()
                if expires_at is not None and expires_at <= now
            ]
            for key in expired:
                del self._entries[key]
                self.stats.expirations += 1
            return len(expired)

    # ------------------------------------------------------------------ #
    # internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _fresh(self, key: Hashable) -> bool:
        """Whether ``key`` is resident and unexpired; expired keys are dropped."""
        if key not in self._entries:
            return False
        _, expires_at = self._entries[key]
        if expires_at is not None and expires_at <= self._clock():
            del self._entries[key]
            self.stats.expirations += 1
            return False
        return True

    def _store(self, key: Hashable, value: Any) -> None:
        expires_at = None if self.ttl is None else self._clock() + self.ttl
        if key in self._entries:
            self._entries[key] = (value, expires_at)
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = (value, expires_at)

"""Result caching over pluggable stores: in-memory LRU and persistent SQLite.

The service layer sits many concurrent exploration sessions on top of one
shared G-Tree; the expensive calls they issue — RWR steady states, subgraph
metric suites, connection subgraphs, cross-edge inspections — are pure
functions of (tree contents, operation, arguments).  :class:`ResultCache`
memoises them under exactly that key.

Execution engine v2 splits the cache into policy and residency:

* :class:`ResultCache` keeps the **policy**: hit/miss/eviction/expiry
  accounting, the TTL knob, and single-flight in-flight dedup (when two
  sessions ask the same question concurrently, the first computes and
  every other waiter blocks on the same computation);
* a :class:`CacheStore` keeps the **residency**:

  - :class:`MemoryCacheStore` — the original bounded LRU ``OrderedDict``
    (per-process, vanishes on exit);
  - :class:`SQLiteCacheStore` — a persistent table (``--cache-path``)
    whose pickled entries survive restarts and are shared by every
    process pointing at the same file, keyed by the same tree
    fingerprints, so a warm restart answers from disk instead of
    recomputing.

Keys are built by :func:`canonical_args`, which normalises argument
structures (dict ordering, lists vs tuples, sets) so equivalent requests
collide on the same entry; the key's leading element is the dataset's
content fingerprint, which is what :meth:`ResultCache.invalidate_fingerprint`
(dataset hot-reload) sweeps by.
"""

from __future__ import annotations

import logging
import os
import pickle
import sqlite3
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple, Union

from ..errors import CircuitOpenError, DeadlineExceededError, ServiceError
from .resilience import CircuitBreaker, RetryPolicy

logger = logging.getLogger(__name__)


class StaleServe:
    """Marker wrapping a value served from an *expired* entry (degraded).

    :meth:`ResultCache.get_or_compute` returns one of these instead of the
    raw value when the computation failed but an expired entry was still
    resident and ``stale_ok`` was set — the caller unwraps ``.value`` and
    stamps ``degraded: true`` on the response.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def canonical_args(value: Any) -> Hashable:
    """Normalise an argument structure into a deterministic hashable form.

    Dicts become ``("{}", sorted (key, value) pairs)``, lists/tuples become
    tuples, sets become sorted tuples; scalars pass through.  Two calls that
    differ only in container type or dict ordering therefore produce the
    same key.
    """
    if isinstance(value, Mapping):
        return ("{}",) + tuple(
            (str(key), canonical_args(value[key])) for key in sorted(value, key=str)
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical_args(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonical_args(item) for item in value), key=repr))
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    # Fall back to repr for exotic argument objects; deterministic per type.
    return repr(value)


def make_cache_key(fingerprint: str, operation: str, args: Mapping[str, Any]) -> Tuple:
    """Build the cache key for one request: (tree fingerprint, op, args)."""
    return (fingerprint, operation, canonical_args(args))


def fingerprint_of_key(key: Hashable) -> str:
    """The dataset fingerprint a cache key belongs to (``""`` if untagged)."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return ""


@dataclass
class CacheStats:
    """Hit/miss/eviction/expiry accounting for one result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    coalesced: int = 0  # waiters that piggybacked on an in-flight computation
    adopted: int = 0  # results taken over from another *process*'s computation
    stale_serves: int = 0  # degraded: expired entry served after compute failure
    store_errors: int = 0  # store get/put failures absorbed (treated as misses)

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses + coalesced/adopted waits)."""
        return self.hits + self.misses + self.coalesced + self.adopted

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a fresh computation."""
        if self.accesses == 0:
            return 0.0
        return (self.hits + self.coalesced + self.adopted) / self.accesses

    def as_dict(self) -> Dict[str, float]:
        """Flatten to JSON-friendly primitives (for the CLI and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "coalesced": self.coalesced,
            "adopted": self.adopted,
            "stale_serves": self.stale_serves,
            "store_errors": self.store_errors,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.coalesced = 0
        self.adopted = 0
        self.stale_serves = 0
        self.store_errors = 0


# --------------------------------------------------------------------------- #
# stores
# --------------------------------------------------------------------------- #
class CacheStore:
    """Residency contract every cache store implements.

    ``get`` returns ``(status, value)`` with status ``"hit"``, ``"miss"``
    or ``"expired"``.  Expired entries stay *resident* until refreshed,
    evicted, or swept: they are the raw material for degraded stale
    serving (:meth:`get_stale`), which the policy layer reaches for when
    a fresh computation fails.  ``put`` returns how many entries were
    evicted to make room.  Stores own their clock — the memory store takes an injectable (monotonic) one, the
    SQLite store uses wall-clock time because its expiries must survive
    process restarts.

    Stores shared across processes may additionally advertise
    ``supports_claims`` and implement :meth:`try_claim` /
    :meth:`release_claim`, the cross-process single-flight primitive
    :class:`ResultCache` uses so two *processes* never compute the same
    entry twice.
    """

    kind = "base"

    #: Whether this store implements the cross-process claim protocol.
    supports_claims = False

    def try_claim(self, key: Hashable, owner: str) -> bool:
        """Claim the right to compute ``key``; ``True`` when acquired."""
        raise NotImplementedError

    def release_claim(self, key: Hashable, owner: str) -> None:
        """Release a claim previously acquired by ``owner`` (idempotent)."""
        raise NotImplementedError

    def get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        raise NotImplementedError

    def get_stale(self, key: Hashable) -> Tuple[str, Any]:
        """Last-resort read: ``("stale", value)`` even for expired entries.

        Returns ``("miss", None)`` only when nothing at all is resident.
        """
        raise NotImplementedError

    def put(self, key: Hashable, fingerprint: str, value: Any,
            ttl: Optional[float]) -> int:
        raise NotImplementedError

    def delete(self, key: Hashable) -> bool:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def sweep(self) -> int:
        raise NotImplementedError

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing resources (idempotent)."""

    def __len__(self) -> int:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly store description (surfaced through ``/v1/stats``)."""
        return {"kind": self.kind, "entries": len(self)}


class MemoryCacheStore(CacheStore):
    """The original per-process bounded LRU over an ``OrderedDict``."""

    kind = "memory"

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache store capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, Optional[float], str]]" = (
            OrderedDict()
        )

    def get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return "miss", None
            value, expires_at, _ = entry
            if expires_at is not None and expires_at <= self._clock():
                # Keep the entry resident: it is the degraded-serving
                # fallback if the recomputation fails (get_stale).
                return "expired", None
            if touch:
                self._entries.move_to_end(key)
            return "hit", value

    def get_stale(self, key: Hashable) -> Tuple[str, Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return "miss", None
            return "stale", entry[0]

    def put(self, key, fingerprint, value, ttl) -> int:
        expires_at = None if ttl is None else self._clock() + ttl
        with self._lock:
            if key in self._entries:
                self._entries[key] = (value, expires_at, fingerprint)
                self._entries.move_to_end(key)
                return 0
            evicted = 0
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._entries[key] = (value, expires_at, fingerprint)
            return evicted

    def delete(self, key) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def sweep(self) -> int:
        with self._lock:
            now = self._clock()
            expired = [
                key
                for key, (_, expires_at, _) in self._entries.items()
                if expires_at is not None and expires_at <= now
            ]
            for key in expired:
                del self._entries[key]
            return len(expired)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        with self._lock:
            stale = [
                key
                for key, (_, _, tagged) in self._entries.items()
                if tagged == fingerprint or fingerprint_of_key(key) == fingerprint
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SQLiteCacheStore(CacheStore):
    """Persistent, cross-process cache residency in one SQLite file.

    Entries are pickled rich results keyed by the deterministic ``repr``
    of the tuple cache key, tagged with the dataset fingerprint so
    hot-reload invalidation is a single indexed ``DELETE``.  Expiries are
    wall-clock (they must mean the same thing to the process that wrote
    them and the process that reads them after a restart); recency is a
    monotonically increasing access sequence, giving cross-process LRU
    eviction without clock comparisons.

    Concurrency: one connection per store, serialised by a lock in this
    process; across processes SQLite's file locking (plus a generous busy
    timeout) arbitrates.  The connection runs in autocommit, and every
    read-modify-write sequence — allocating the next recency number,
    the existed/insert/evict trio in :meth:`put`, the touch in
    :meth:`get` — runs inside one ``BEGIN IMMEDIATE`` transaction, so two
    processes can neither assign duplicate sequence numbers nor interleave
    eviction accounting.

    **Cross-process single-flight.**  A ``claims`` table holds one row per
    in-flight computation: before computing a missing entry, a process
    inserts (inside ``BEGIN IMMEDIATE``, so claims serialise with puts) a
    claim row for the key; losers of that race poll the results table and
    adopt the winner's value instead of recomputing.  A claim older than
    ``claim_timeout`` is presumed orphaned (its owner crashed mid-compute)
    and is stolen.  Claim traffic is counted — acquired / waited-on /
    stolen — and surfaced through :meth:`describe` into ``/v1/stats``.

    **Resilience.**  Every DB-touching operation runs through two guards:
    a bounded :class:`RetryPolicy` that absorbs transient
    ``database is locked`` / ``database is busy`` contention (anything
    else — disk I/O errors, corruption — still raises immediately), and
    a :class:`CircuitBreaker` that opens after repeated ``sqlite3.Error``
    failures so a broken cache file degrades to misses (reads) and
    skipped writes instead of stalling every request behind a dead disk.
    ``try_claim`` raises :class:`CircuitOpenError` while open, which the
    policy layer's claim protocol already degrades to claim-less compute.
    Pass ``lock_retry=None`` / ``breaker=None`` to disable either guard.
    """

    kind = "sqlite"
    supports_claims = True

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS results (
        key         TEXT PRIMARY KEY,
        fingerprint TEXT NOT NULL,
        value       BLOB NOT NULL,
        expires_at  REAL,
        last_used   INTEGER NOT NULL,
        created_at  REAL NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_results_fingerprint
        ON results (fingerprint);
    CREATE INDEX IF NOT EXISTS idx_results_last_used
        ON results (last_used);
    CREATE TABLE IF NOT EXISTS claims (
        key        TEXT PRIMARY KEY,
        owner      TEXT NOT NULL,
        claimed_at REAL NOT NULL
    );
    """

    def __init__(
        self,
        path: Union[str, Path],
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
        claim_timeout: float = 120.0,
        claim_poll_interval: float = 0.05,
        lock_retry: Union[RetryPolicy, None, str] = "default",
        breaker: Union[CircuitBreaker, None, str] = "default",
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache store capacity must be >= 1, got {capacity}")
        if claim_timeout <= 0:
            raise ServiceError(f"claim timeout must be positive, got {claim_timeout}")
        if claim_poll_interval <= 0:
            raise ServiceError(
                f"claim poll interval must be positive, got {claim_poll_interval}"
            )
        if lock_retry == "default":
            # No jitter: the schedule must be deterministic, and lock
            # contention is already randomized by the OS scheduler.
            lock_retry = RetryPolicy(
                attempts=4, base_delay=0.02, multiplier=2.0, max_delay=0.2, jitter=0.0
            )
        if breaker == "default":
            breaker = CircuitBreaker(
                name="cache-store", failure_threshold=5, reset_timeout=5.0
            )
        self.lock_retry = lock_retry
        self.breaker = breaker
        self._breaker_skips = 0
        self.path = Path(path)
        self.capacity = capacity
        #: Seconds after which an unreleased claim is presumed orphaned.
        #: Must exceed the slowest honest kernel; a stolen live claim only
        #: costs a duplicate computation, never a wrong answer.
        self.claim_timeout = claim_timeout
        #: How often claim losers re-poll for the winner's value.
        self.claim_poll_interval = claim_poll_interval
        self._clock = clock
        self._claims_acquired = 0
        self._claims_stolen = 0
        self._claim_waits = 0
        self._lock = threading.Lock()
        # Autocommit: single statements are atomic on their own, and the
        # multi-statement read-modify-write paths open explicit BEGIN
        # IMMEDIATE transactions (taking the cross-process write lock up
        # front) through :meth:`_txn`.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA busy_timeout = 5000")
        try:  # WAL lets concurrent readers coexist with a writer
            self._conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - fs-dependent
            pass
        with self._lock:
            self._conn.executescript(self._SCHEMA)

    @contextmanager
    def _txn(self):
        """One cross-process-atomic write transaction (caller holds the lock).

        ``commit`` sits inside the ``try``: if it fails (busy writer past
        the timeout, I/O error) the rollback still runs, leaving the
        connection outside any transaction — otherwise the next ``BEGIN``
        would wedge on 'cannot start a transaction within a transaction'.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise

    def _next_sequence(self) -> int:
        # Only meaningful inside a _txn: the IMMEDIATE write lock is what
        # keeps two processes from reading the same MAX and colliding.
        row = self._conn.execute("SELECT MAX(last_used) FROM results").fetchone()
        return (row[0] or 0) + 1

    # ------------------------------------------------------------------ #
    # resilience guards
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_lock_contention(error: BaseException) -> bool:
        """True only for transient cross-process lock contention.

        Deliberately narrow: ``disk I/O error``, ``database disk image is
        malformed`` and friends are *not* retryable — retrying them only
        delays the breaker's verdict.
        """
        if not isinstance(error, sqlite3.OperationalError):
            return False
        message = str(error).lower()
        return "locked" in message or "busy" in message

    def _resilient(self, fn: Callable[[], Any], fallback: Any) -> Any:
        """Run one DB operation through the lock-retry and breaker guards.

        ``fallback`` is returned (called, if callable) instead of touching
        the DB while the breaker is open; pass ``None`` fallback semantics
        via ``lambda: ...`` when ``None`` itself is not a sentinel.  A
        fallback of :class:`CircuitOpenError` *type* means "raise while
        open" (used by ``try_claim``).
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            with self._lock:
                self._breaker_skips += 1
            if fallback is CircuitOpenError:
                raise CircuitOpenError(
                    f"cache store breaker {breaker.name!r} is open",
                    retry_after=breaker.remaining_open() or None,
                )
            return fallback() if callable(fallback) else fallback
        try:
            if self.lock_retry is not None:
                value = self.lock_retry.run(fn, self._is_lock_contention)
            else:
                value = fn()
        except sqlite3.Error:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return value

    def get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        return self._resilient(
            lambda: self._get_impl(key, touch), lambda: ("miss", None)
        )

    def _get_impl(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        text = repr(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT value, expires_at FROM results WHERE key = ?", (text,)
            ).fetchone()
            if row is None:
                return "miss", None
            blob, expires_at = row
            if expires_at is not None and expires_at <= self._clock():
                # Keep the row resident: it is the degraded-serving
                # fallback if the recomputation fails (get_stale).  The
                # refreshing put overwrites it; sweep() reclaims the rest.
                return "expired", None
            try:
                value = pickle.loads(blob)
            except Exception:  # noqa: BLE001 — schema/class drift: treat as miss
                # Scope by the corrupt blob itself so a concurrent rewrite
                # of the key survives.
                self._conn.execute(
                    "DELETE FROM results WHERE key = ? AND value = ?",
                    (text, blob),
                )
                return "miss", None
            if touch:
                with self._txn():
                    self._conn.execute(
                        "UPDATE results SET last_used = ? WHERE key = ?",
                        (self._next_sequence(), text),
                    )
            return "hit", value

    def get_stale(self, key: Hashable) -> Tuple[str, Any]:
        # Last-resort read for degraded serving: not breaker-gated — when
        # the store is the broken venue this is the one read still worth
        # attempting, and its failure is absorbed by the policy layer.
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM results WHERE key = ?", (repr(key),)
            ).fetchone()
            if row is None:
                return "miss", None
            try:
                return "stale", pickle.loads(row[0])
            except Exception:  # noqa: BLE001 — corrupt blob: nothing to serve
                return "miss", None

    def put(self, key, fingerprint, value, ttl) -> int:
        return self._resilient(
            lambda: self._put_impl(key, fingerprint, value, ttl), 0
        )

    def _put_impl(self, key, fingerprint, value, ttl) -> int:
        text = repr(key)
        now = self._clock()
        expires_at = None if ttl is None else now + ttl
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock, self._txn():
            existed = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (text,)
            ).fetchone()
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, fingerprint, value, expires_at, last_used, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (text, fingerprint, blob, expires_at, self._next_sequence(), now),
            )
            evicted = 0
            if existed is None:
                over = (
                    self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
                    - self.capacity
                )
                if over > 0:
                    cursor = self._conn.execute(
                        "DELETE FROM results WHERE key IN ("
                        "SELECT key FROM results ORDER BY last_used ASC LIMIT ?)",
                        (over,),
                    )
                    evicted = cursor.rowcount
            return evicted

    def delete(self, key) -> bool:
        return self._resilient(lambda: self._delete_impl(key), False)

    def _delete_impl(self, key) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE key = ?", (repr(key),)
            )
            return cursor.rowcount > 0

    def clear(self) -> None:
        def impl():
            with self._lock:
                self._conn.execute("DELETE FROM results")

        self._resilient(impl, None)

    def sweep(self) -> int:
        def impl():
            with self._lock:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE expires_at IS NOT NULL "
                    "AND expires_at <= ?",
                    (self._clock(),),
                )
                return cursor.rowcount

        return self._resilient(impl, 0)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        # Not breaker-skipped: serving stale entries for a dataset that
        # was just rewritten would be wrong, so invalidation must either
        # succeed or raise (the service already counts those failures).
        def impl():
            with self._lock:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
                )
                return cursor.rowcount

        breaker = self.breaker
        try:
            if self.lock_retry is not None:
                count = self.lock_retry.run(impl, self._is_lock_contention)
            else:
                count = impl()
        except sqlite3.Error:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return count

    # ------------------------------------------------------------------ #
    # cross-process single-flight claims
    # ------------------------------------------------------------------ #
    def try_claim(self, key: Hashable, owner: str) -> bool:
        """Claim ``key`` for ``owner``; ``True`` when this process may compute.

        Runs inside ``BEGIN IMMEDIATE`` so two processes racing for the
        same key serialise on SQLite's write lock: exactly one insert
        wins.  A claim whose ``claimed_at`` is older than
        :attr:`claim_timeout` is stolen (counted in ``claims_stolen``);
        re-claiming one's own key refreshes the stamp instead of failing,
        so a retry loop can never deadlock on itself.

        While the breaker is open this raises :class:`CircuitOpenError`
        (the ``fallback is CircuitOpenError`` contract of
        :meth:`_resilient`), which the policy layer's
        ``_claim_or_adopt`` degrades to claim-less computation.
        """
        return self._resilient(
            lambda: self._try_claim_impl(key, owner), CircuitOpenError
        )

    def _try_claim_impl(self, key: Hashable, owner: str) -> bool:
        text = repr(key)
        now = self._clock()
        with self._lock, self._txn():
            row = self._conn.execute(
                "SELECT owner, claimed_at FROM claims WHERE key = ?", (text,)
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO claims (key, owner, claimed_at) VALUES (?, ?, ?)",
                    (text, owner, now),
                )
                self._claims_acquired += 1
                return True
            held_by, claimed_at = row
            if held_by == owner or claimed_at <= now - self.claim_timeout:
                self._conn.execute(
                    "UPDATE claims SET owner = ?, claimed_at = ? WHERE key = ?",
                    (owner, now, text),
                )
                self._claims_acquired += 1
                if held_by != owner:
                    self._claims_stolen += 1
                return True
            return False

    def release_claim(self, key: Hashable, owner: str) -> None:
        """Drop ``owner``'s claim on ``key`` (no-op if stolen meanwhile).

        Skipped while the breaker is open: an orphaned row is reclaimed by
        ``claim_timeout``, and hammering a broken DB to clean up after it
        would only keep the breaker open longer.
        """

        def impl():
            with self._lock:
                self._conn.execute(
                    "DELETE FROM claims WHERE key = ? AND owner = ?",
                    (repr(key), owner),
                )

        self._resilient(impl, None)

    def note_claim_wait(self) -> None:
        """Count one adopted computation (this process waited, not worked)."""
        with self._lock:
            self._claim_waits += 1

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - double close
                pass

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def describe(self) -> Dict[str, Any]:
        try:
            payload = super().describe()
        except sqlite3.Error:  # broken DB must not break /v1/stats
            payload = {"kind": self.kind, "entries": -1}
        payload["path"] = str(self.path)
        with self._lock:
            try:
                active = self._conn.execute(
                    "SELECT COUNT(*) FROM claims"
                ).fetchone()[0]
            except sqlite3.Error:
                active = -1
            payload["claims"] = {
                "acquired": self._claims_acquired,
                "waited": self._claim_waits,
                "stolen": self._claims_stolen,
                "active": active,
            }
            payload["breaker_skips"] = self._breaker_skips
        if self.breaker is not None:
            payload["breaker"] = self.breaker.describe()
        if self.lock_retry is not None:
            payload["lock_retry"] = self.lock_retry.describe()
        return payload


@dataclass
class _InFlight:
    """Bookkeeping for one computation currently being produced."""

    done: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: Optional[BaseException] = None


class ResultCache:
    """Capacity-bounded, optionally time-bounded memo table for query results.

    Parameters
    ----------
    capacity:
        Maximum number of results held at once (>= 1); applies to the
        default memory store (an explicit ``store`` brings its own bound).
    ttl:
        Seconds a result stays valid, or ``None`` for no age limit.
    clock:
        Monotonic time source for the default memory store; injectable so
        tests can advance time deterministically.
    store:
        Residency backend; defaults to a fresh :class:`MemoryCacheStore`.
        Pass a :class:`SQLiteCacheStore` for persistent, cross-process
        caching (the service builds one from ``cache_path``).
    injector:
        Optional fault injector (:class:`~repro.service.faults.FaultPlan`)
        fired at the ``cache.get`` / ``cache.put`` seams.  ``None`` (the
        default) costs one identity check per lookup.

    Store failures on the lookup/insert path are absorbed (counted in
    ``stats.store_errors``): a broken residency layer degrades the cache
    to a pass-through, it never fails a request the kernel could serve.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        store: Optional[CacheStore] = None,
        injector: Optional[Any] = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"result cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ServiceError(f"result cache ttl must be positive, got {ttl}")
        self.store = store if store is not None else MemoryCacheStore(
            capacity=capacity, clock=clock
        )
        self.capacity = getattr(self.store, "capacity", capacity)
        self.ttl = ttl
        self._injector = injector
        self.stats = CacheStats()
        self._stats_lock = threading.Lock()
        self._flight_lock = threading.Lock()
        self._inflight: Dict[Hashable, _InFlight] = {}
        # Claim identity for cross-process single-flight.  One token per
        # cache instance is enough: the per-process flight table already
        # guarantees at most one thread per key reaches the claim protocol.
        self._claim_owner = f"{os.getpid()}:{uuid.uuid4().hex[:12]}"

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, key: Hashable) -> bool:
        status, _ = self.store.get(key, touch=False)
        if status == "expired":
            with self._stats_lock:
                self.stats.expirations += 1
        return status == "hit"

    def close(self) -> None:
        """Release the backing store (idempotent)."""
        self.store.close()

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _store_get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        """Store lookup with the ``cache.get`` seam and error absorption."""
        try:
            if self._injector is not None:
                self._injector.fire("cache.get")
            return self.store.get(key, touch=touch)
        except Exception:  # noqa: BLE001 — residency failure degrades to miss
            with self._stats_lock:
                self.stats.store_errors += 1
            logger.warning("cache store get failed for %r; treating as miss",
                           key, exc_info=True)
            return "miss", None

    def _stale_value(self, key: Hashable) -> Optional[StaleServe]:
        """The expired-but-resident value for ``key``, if any (best-effort)."""
        try:
            status, value = self.store.get_stale(key)
        except Exception:  # noqa: BLE001 — no stale value to serve, that's all
            return None
        if status != "stale":
            return None
        return StaleServe(value)

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        stale_ok: bool = False,
    ) -> Any:
        """Return the cached value for ``key``, computing it at most once.

        Concurrent callers with the same key coalesce onto one computation;
        if that computation raises, every coalesced waiter sees the same
        exception and nothing is cached (the next request retries).

        With ``stale_ok=True`` a failing computation falls back to the
        expired-but-resident entry, returned wrapped in
        :class:`StaleServe` (coalesced waiters see the same wrapper) so
        the caller can mark the response degraded.  Deadline failures are
        exempt: a request past its budget wants ``DEADLINE_EXCEEDED``,
        not old data.
        """
        while True:
            status, value = self._store_get(key)
            if status == "hit":
                with self._stats_lock:
                    self.stats.hits += 1
                return value
            if status == "expired":
                with self._stats_lock:
                    self.stats.expirations += 1
            with self._flight_lock:
                flight = self._inflight.get(key)
                if flight is None:
                    # Re-check residency before claiming ownership: the
                    # previous owner stores its value *before* removing the
                    # in-flight entry, so a thread that missed pre-store but
                    # arrived here post-removal finds the value now — the
                    # "compute once" contract holds across the two locks.
                    # touch=False: never open a store write transaction
                    # while holding the global flight lock.
                    status, value = self._store_get(key, touch=False)
                    if status == "hit":
                        with self._stats_lock:
                            self.stats.hits += 1
                        return value
                    flight = _InFlight()
                    self._inflight[key] = flight
                    owner = True
                else:
                    owner = False
            if owner:
                break
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._stats_lock:
                self.stats.coalesced += 1
            return flight.value

        # This thread owns the computation (within this process).  With a
        # claim-capable (cross-process) store it must first win the claim
        # for the key — or adopt the value a peer process computed.
        claimed = False
        adopted = False
        try:
            if self.store.supports_claims:
                mode, value = self._claim_or_adopt(key)
                claimed = mode == "claimed"
                adopted = mode == "adopted"
            if not adopted:
                value = compute()
        except BaseException as error:
            if claimed:
                self._release_claim(key)
            stale = None
            if (
                stale_ok
                and isinstance(error, Exception)
                and not isinstance(error, DeadlineExceededError)
            ):
                stale = self._stale_value(key)
            if stale is not None:
                # Degraded serving: the computation failed but an expired
                # entry is still resident.  Publish the *wrapped* value to
                # coalesced waiters (same degraded answer for everyone)
                # and never re-put it — its expiry stamp stays old, so a
                # healed backend refreshes it on the next request.
                with self._stats_lock:
                    self.stats.misses += 1
                    self.stats.stale_serves += 1
                with self._flight_lock:
                    self._inflight.pop(key, None)
                flight.value = stale
                flight.done.set()
                logger.warning(
                    "serving stale cache entry for %r after compute failure: %s",
                    key, error,
                )
                return stale
            flight.error = error
            with self._flight_lock:
                self._inflight.pop(key, None)
            with self._stats_lock:
                self.stats.misses += 1
            flight.done.set()
            raise
        # Residency is best-effort: the value is already computed, so a
        # failing store (SQLite busy past its timeout, unpicklable result,
        # full disk) must not fail the request — and above all must not
        # strand the in-flight entry, which would hang every future caller
        # for this key on flight.done.wait().  The finally block publishes
        # the value and releases the flight (and the cross-process claim —
        # after the put, so a peer can never observe claim-gone while the
        # value is still missing) even when a BaseException
        # (KeyboardInterrupt during a blocked put) escapes the guard.
        evicted = 0
        try:
            if not adopted:
                try:
                    if self._injector is not None:
                        self._injector.fire("cache.put")
                    evicted = self.store.put(
                        key, fingerprint_of_key(key), value, self.ttl
                    )
                except Exception:  # noqa: BLE001 — residency failure, value is good
                    with self._stats_lock:
                        self.stats.store_errors += 1
                    logger.warning(
                        "cache store put failed; serving uncached value for %r",
                        key, exc_info=True,
                    )
        finally:
            if claimed:
                self._release_claim(key)
            with self._stats_lock:
                if adopted:
                    self.stats.adopted += 1
                else:
                    self.stats.misses += 1
                self.stats.evictions += evicted
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.value = value
            flight.done.set()
        return value

    def _claim_or_adopt(self, key: Hashable):
        """Win the cross-process claim for ``key``, or adopt a peer's value.

        Returns ``(mode, value)``: ``("claimed", None)`` when this process
        holds the claim and must compute, ``("adopted", value)`` when
        another process computed the entry while we waited, and
        ``("unclaimed", None)`` when the claim protocol itself failed —
        the caller then computes *without* a claim, because dedup is an
        optimisation and a broken coordination store must never fail (or
        stall) a request the kernel could serve.

        Because the winner stores its value before releasing its claim, a
        released claim with no stored value means the previous owner
        failed — in which case re-claiming and recomputing is exactly
        right.  A claim held longer than the store's ``claim_timeout`` is
        presumed orphaned (owner crashed) and stolen by ``try_claim``.
        """
        store = self.store
        owner = self._claim_owner
        poll = getattr(store, "claim_poll_interval", 0.05)
        waited = False
        try:
            while True:
                if store.try_claim(key, owner):
                    # The claim may have been acquired just after a peer
                    # released theirs: re-check residency before working.
                    status, value = store.get(key, touch=False)
                    if status == "hit":
                        self._release_claim(key)
                        if waited:
                            store.note_claim_wait()
                        return "adopted", value
                    return "claimed", None
                # Another process owns the computation: poll for its result.
                waited = True
                time.sleep(poll)
                status, value = store.get(key, touch=False)
                if status == "hit":
                    store.note_claim_wait()
                    return "adopted", value
        except Exception:  # noqa: BLE001 — coordination failure, not compute
            logger.warning(
                "cross-process claim protocol failed for %r; "
                "computing without dedup", key, exc_info=True,
            )
            # We may have just won the claim before the failure (e.g. the
            # residency re-check raised): release best-effort so peers do
            # not stall on an orphan row until claim_timeout.
            self._release_claim(key)
            return "unclaimed", None

    def _release_claim(self, key: Hashable) -> None:
        """Drop this process's claim; never let release failure mask a result."""
        try:
            self.store.release_claim(key, self._claim_owner)
        except Exception:  # noqa: BLE001 — a stuck row only delays peers
            logger.warning("cache claim release failed for %r", key, exc_info=True)

    def peek(self, key: Hashable) -> Any:
        """Return the cached value without recording a hit; KeyError on miss."""
        status, value = self.store.get(key, touch=False)
        if status == "expired":
            with self._stats_lock:
                self.stats.expirations += 1
        if status != "hit":
            raise KeyError(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh a value directly (bypasses single-flight)."""
        evicted = self.store.put(key, fingerprint_of_key(key), value, self.ttl)
        with self._stats_lock:
            self.stats.evictions += evicted

    def invalidate(self, key: Hashable) -> None:
        """Drop one key (no-op when absent)."""
        self.store.delete(key)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry whose key belongs to ``fingerprint``; return count."""
        return self.store.invalidate_fingerprint(fingerprint)

    def clear(self) -> None:
        """Empty the cache (statistics are kept)."""
        self.store.clear()

    def sweep(self) -> int:
        """Evict every expired entry now; return how many were dropped."""
        expired = self.store.sweep()
        with self._stats_lock:
            self.stats.expirations += expired
        return expired

    def describe(self) -> Dict[str, Any]:
        """Accounting plus residency description (drives ``/v1/stats``)."""
        payload: Dict[str, Any] = self.stats.as_dict()
        payload["store"] = self.store.describe()
        return payload

"""Result caching over pluggable stores: in-memory LRU and persistent SQLite.

The service layer sits many concurrent exploration sessions on top of one
shared G-Tree; the expensive calls they issue — RWR steady states, subgraph
metric suites, connection subgraphs, cross-edge inspections — are pure
functions of (tree contents, operation, arguments).  :class:`ResultCache`
memoises them under exactly that key.

Execution engine v2 splits the cache into policy and residency:

* :class:`ResultCache` keeps the **policy**: hit/miss/eviction/expiry
  accounting, the TTL knob, and single-flight in-flight dedup (when two
  sessions ask the same question concurrently, the first computes and
  every other waiter blocks on the same computation);
* a :class:`CacheStore` keeps the **residency**:

  - :class:`MemoryCacheStore` — the original bounded LRU ``OrderedDict``
    (per-process, vanishes on exit);
  - :class:`SQLiteCacheStore` — a persistent table (``--cache-path``)
    whose pickled entries survive restarts and are shared by every
    process pointing at the same file, keyed by the same tree
    fingerprints, so a warm restart answers from disk instead of
    recomputing.

Keys are built by :func:`canonical_args`, which normalises argument
structures (dict ordering, lists vs tuples, sets) so equivalent requests
collide on the same entry; the key's leading element is the dataset's
content fingerprint, which is what :meth:`ResultCache.invalidate_fingerprint`
(dataset hot-reload) sweeps by.
"""

from __future__ import annotations

import logging
import os
import pickle
import sqlite3
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple, Union

from ..errors import ServiceError

logger = logging.getLogger(__name__)


def canonical_args(value: Any) -> Hashable:
    """Normalise an argument structure into a deterministic hashable form.

    Dicts become ``("{}", sorted (key, value) pairs)``, lists/tuples become
    tuples, sets become sorted tuples; scalars pass through.  Two calls that
    differ only in container type or dict ordering therefore produce the
    same key.
    """
    if isinstance(value, Mapping):
        return ("{}",) + tuple(
            (str(key), canonical_args(value[key])) for key in sorted(value, key=str)
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical_args(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonical_args(item) for item in value), key=repr))
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    # Fall back to repr for exotic argument objects; deterministic per type.
    return repr(value)


def make_cache_key(fingerprint: str, operation: str, args: Mapping[str, Any]) -> Tuple:
    """Build the cache key for one request: (tree fingerprint, op, args)."""
    return (fingerprint, operation, canonical_args(args))


def fingerprint_of_key(key: Hashable) -> str:
    """The dataset fingerprint a cache key belongs to (``""`` if untagged)."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return ""


@dataclass
class CacheStats:
    """Hit/miss/eviction/expiry accounting for one result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    coalesced: int = 0  # waiters that piggybacked on an in-flight computation
    adopted: int = 0  # results taken over from another *process*'s computation

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses + coalesced/adopted waits)."""
        return self.hits + self.misses + self.coalesced + self.adopted

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a fresh computation."""
        if self.accesses == 0:
            return 0.0
        return (self.hits + self.coalesced + self.adopted) / self.accesses

    def as_dict(self) -> Dict[str, float]:
        """Flatten to JSON-friendly primitives (for the CLI and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "coalesced": self.coalesced,
            "adopted": self.adopted,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.coalesced = 0
        self.adopted = 0


# --------------------------------------------------------------------------- #
# stores
# --------------------------------------------------------------------------- #
class CacheStore:
    """Residency contract every cache store implements.

    ``get`` returns ``(status, value)`` with status ``"hit"``, ``"miss"``
    or ``"expired"`` (expired entries are dropped on discovery); ``put``
    returns how many entries were evicted to make room.  Stores own their
    clock — the memory store takes an injectable (monotonic) one, the
    SQLite store uses wall-clock time because its expiries must survive
    process restarts.

    Stores shared across processes may additionally advertise
    ``supports_claims`` and implement :meth:`try_claim` /
    :meth:`release_claim`, the cross-process single-flight primitive
    :class:`ResultCache` uses so two *processes* never compute the same
    entry twice.
    """

    kind = "base"

    #: Whether this store implements the cross-process claim protocol.
    supports_claims = False

    def try_claim(self, key: Hashable, owner: str) -> bool:
        """Claim the right to compute ``key``; ``True`` when acquired."""
        raise NotImplementedError

    def release_claim(self, key: Hashable, owner: str) -> None:
        """Release a claim previously acquired by ``owner`` (idempotent)."""
        raise NotImplementedError

    def get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        raise NotImplementedError

    def put(self, key: Hashable, fingerprint: str, value: Any,
            ttl: Optional[float]) -> int:
        raise NotImplementedError

    def delete(self, key: Hashable) -> bool:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def sweep(self) -> int:
        raise NotImplementedError

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing resources (idempotent)."""

    def __len__(self) -> int:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly store description (surfaced through ``/v1/stats``)."""
        return {"kind": self.kind, "entries": len(self)}


class MemoryCacheStore(CacheStore):
    """The original per-process bounded LRU over an ``OrderedDict``."""

    kind = "memory"

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache store capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, Optional[float], str]]" = (
            OrderedDict()
        )

    def get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return "miss", None
            value, expires_at, _ = entry
            if expires_at is not None and expires_at <= self._clock():
                del self._entries[key]
                return "expired", None
            if touch:
                self._entries.move_to_end(key)
            return "hit", value

    def put(self, key, fingerprint, value, ttl) -> int:
        expires_at = None if ttl is None else self._clock() + ttl
        with self._lock:
            if key in self._entries:
                self._entries[key] = (value, expires_at, fingerprint)
                self._entries.move_to_end(key)
                return 0
            evicted = 0
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._entries[key] = (value, expires_at, fingerprint)
            return evicted

    def delete(self, key) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def sweep(self) -> int:
        with self._lock:
            now = self._clock()
            expired = [
                key
                for key, (_, expires_at, _) in self._entries.items()
                if expires_at is not None and expires_at <= now
            ]
            for key in expired:
                del self._entries[key]
            return len(expired)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        with self._lock:
            stale = [
                key
                for key, (_, _, tagged) in self._entries.items()
                if tagged == fingerprint or fingerprint_of_key(key) == fingerprint
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SQLiteCacheStore(CacheStore):
    """Persistent, cross-process cache residency in one SQLite file.

    Entries are pickled rich results keyed by the deterministic ``repr``
    of the tuple cache key, tagged with the dataset fingerprint so
    hot-reload invalidation is a single indexed ``DELETE``.  Expiries are
    wall-clock (they must mean the same thing to the process that wrote
    them and the process that reads them after a restart); recency is a
    monotonically increasing access sequence, giving cross-process LRU
    eviction without clock comparisons.

    Concurrency: one connection per store, serialised by a lock in this
    process; across processes SQLite's file locking (plus a generous busy
    timeout) arbitrates.  The connection runs in autocommit, and every
    read-modify-write sequence — allocating the next recency number,
    the existed/insert/evict trio in :meth:`put`, the touch in
    :meth:`get` — runs inside one ``BEGIN IMMEDIATE`` transaction, so two
    processes can neither assign duplicate sequence numbers nor interleave
    eviction accounting.

    **Cross-process single-flight.**  A ``claims`` table holds one row per
    in-flight computation: before computing a missing entry, a process
    inserts (inside ``BEGIN IMMEDIATE``, so claims serialise with puts) a
    claim row for the key; losers of that race poll the results table and
    adopt the winner's value instead of recomputing.  A claim older than
    ``claim_timeout`` is presumed orphaned (its owner crashed mid-compute)
    and is stolen.  Claim traffic is counted — acquired / waited-on /
    stolen — and surfaced through :meth:`describe` into ``/v1/stats``.
    """

    kind = "sqlite"
    supports_claims = True

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS results (
        key         TEXT PRIMARY KEY,
        fingerprint TEXT NOT NULL,
        value       BLOB NOT NULL,
        expires_at  REAL,
        last_used   INTEGER NOT NULL,
        created_at  REAL NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_results_fingerprint
        ON results (fingerprint);
    CREATE INDEX IF NOT EXISTS idx_results_last_used
        ON results (last_used);
    CREATE TABLE IF NOT EXISTS claims (
        key        TEXT PRIMARY KEY,
        owner      TEXT NOT NULL,
        claimed_at REAL NOT NULL
    );
    """

    def __init__(
        self,
        path: Union[str, Path],
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
        claim_timeout: float = 120.0,
        claim_poll_interval: float = 0.05,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache store capacity must be >= 1, got {capacity}")
        if claim_timeout <= 0:
            raise ServiceError(f"claim timeout must be positive, got {claim_timeout}")
        if claim_poll_interval <= 0:
            raise ServiceError(
                f"claim poll interval must be positive, got {claim_poll_interval}"
            )
        self.path = Path(path)
        self.capacity = capacity
        #: Seconds after which an unreleased claim is presumed orphaned.
        #: Must exceed the slowest honest kernel; a stolen live claim only
        #: costs a duplicate computation, never a wrong answer.
        self.claim_timeout = claim_timeout
        #: How often claim losers re-poll for the winner's value.
        self.claim_poll_interval = claim_poll_interval
        self._clock = clock
        self._claims_acquired = 0
        self._claims_stolen = 0
        self._claim_waits = 0
        self._lock = threading.Lock()
        # Autocommit: single statements are atomic on their own, and the
        # multi-statement read-modify-write paths open explicit BEGIN
        # IMMEDIATE transactions (taking the cross-process write lock up
        # front) through :meth:`_txn`.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA busy_timeout = 5000")
        try:  # WAL lets concurrent readers coexist with a writer
            self._conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - fs-dependent
            pass
        with self._lock:
            self._conn.executescript(self._SCHEMA)

    @contextmanager
    def _txn(self):
        """One cross-process-atomic write transaction (caller holds the lock).

        ``commit`` sits inside the ``try``: if it fails (busy writer past
        the timeout, I/O error) the rollback still runs, leaving the
        connection outside any transaction — otherwise the next ``BEGIN``
        would wedge on 'cannot start a transaction within a transaction'.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise

    def _next_sequence(self) -> int:
        # Only meaningful inside a _txn: the IMMEDIATE write lock is what
        # keeps two processes from reading the same MAX and colliding.
        row = self._conn.execute("SELECT MAX(last_used) FROM results").fetchone()
        return (row[0] or 0) + 1

    def get(self, key: Hashable, touch: bool = True) -> Tuple[str, Any]:
        text = repr(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT value, expires_at FROM results WHERE key = ?", (text,)
            ).fetchone()
            if row is None:
                return "miss", None
            blob, expires_at = row
            if expires_at is not None and expires_at <= self._clock():
                # Re-assert the expiry in the DELETE: another process may
                # have refreshed the key since our SELECT, and an unscoped
                # delete would throw away its brand-new entry.
                self._conn.execute(
                    "DELETE FROM results WHERE key = ? "
                    "AND expires_at IS NOT NULL AND expires_at <= ?",
                    (text, self._clock()),
                )
                return "expired", None
            try:
                value = pickle.loads(blob)
            except Exception:  # noqa: BLE001 — schema/class drift: treat as miss
                # Scope by the corrupt blob itself so a concurrent rewrite
                # of the key survives.
                self._conn.execute(
                    "DELETE FROM results WHERE key = ? AND value = ?",
                    (text, blob),
                )
                return "miss", None
            if touch:
                with self._txn():
                    self._conn.execute(
                        "UPDATE results SET last_used = ? WHERE key = ?",
                        (self._next_sequence(), text),
                    )
            return "hit", value

    def put(self, key, fingerprint, value, ttl) -> int:
        text = repr(key)
        now = self._clock()
        expires_at = None if ttl is None else now + ttl
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock, self._txn():
            existed = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (text,)
            ).fetchone()
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, fingerprint, value, expires_at, last_used, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (text, fingerprint, blob, expires_at, self._next_sequence(), now),
            )
            evicted = 0
            if existed is None:
                over = (
                    self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
                    - self.capacity
                )
                if over > 0:
                    cursor = self._conn.execute(
                        "DELETE FROM results WHERE key IN ("
                        "SELECT key FROM results ORDER BY last_used ASC LIMIT ?)",
                        (over,),
                    )
                    evicted = cursor.rowcount
            return evicted

    def delete(self, key) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE key = ?", (repr(key),)
            )
            return cursor.rowcount > 0

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")

    def sweep(self) -> int:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE expires_at IS NOT NULL "
                "AND expires_at <= ?",
                (self._clock(),),
            )
            return cursor.rowcount

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
            )
            return cursor.rowcount

    # ------------------------------------------------------------------ #
    # cross-process single-flight claims
    # ------------------------------------------------------------------ #
    def try_claim(self, key: Hashable, owner: str) -> bool:
        """Claim ``key`` for ``owner``; ``True`` when this process may compute.

        Runs inside ``BEGIN IMMEDIATE`` so two processes racing for the
        same key serialise on SQLite's write lock: exactly one insert
        wins.  A claim whose ``claimed_at`` is older than
        :attr:`claim_timeout` is stolen (counted in ``claims_stolen``);
        re-claiming one's own key refreshes the stamp instead of failing,
        so a retry loop can never deadlock on itself.
        """
        text = repr(key)
        now = self._clock()
        with self._lock, self._txn():
            row = self._conn.execute(
                "SELECT owner, claimed_at FROM claims WHERE key = ?", (text,)
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO claims (key, owner, claimed_at) VALUES (?, ?, ?)",
                    (text, owner, now),
                )
                self._claims_acquired += 1
                return True
            held_by, claimed_at = row
            if held_by == owner or claimed_at <= now - self.claim_timeout:
                self._conn.execute(
                    "UPDATE claims SET owner = ?, claimed_at = ? WHERE key = ?",
                    (owner, now, text),
                )
                self._claims_acquired += 1
                if held_by != owner:
                    self._claims_stolen += 1
                return True
            return False

    def release_claim(self, key: Hashable, owner: str) -> None:
        """Drop ``owner``'s claim on ``key`` (no-op if stolen meanwhile)."""
        with self._lock:
            self._conn.execute(
                "DELETE FROM claims WHERE key = ? AND owner = ?",
                (repr(key), owner),
            )

    def note_claim_wait(self) -> None:
        """Count one adopted computation (this process waited, not worked)."""
        with self._lock:
            self._claim_waits += 1

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - double close
                pass

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def describe(self) -> Dict[str, Any]:
        payload = super().describe()
        payload["path"] = str(self.path)
        with self._lock:
            active = self._conn.execute(
                "SELECT COUNT(*) FROM claims"
            ).fetchone()[0]
            payload["claims"] = {
                "acquired": self._claims_acquired,
                "waited": self._claim_waits,
                "stolen": self._claims_stolen,
                "active": active,
            }
        return payload


@dataclass
class _InFlight:
    """Bookkeeping for one computation currently being produced."""

    done: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: Optional[BaseException] = None


class ResultCache:
    """Capacity-bounded, optionally time-bounded memo table for query results.

    Parameters
    ----------
    capacity:
        Maximum number of results held at once (>= 1); applies to the
        default memory store (an explicit ``store`` brings its own bound).
    ttl:
        Seconds a result stays valid, or ``None`` for no age limit.
    clock:
        Monotonic time source for the default memory store; injectable so
        tests can advance time deterministically.
    store:
        Residency backend; defaults to a fresh :class:`MemoryCacheStore`.
        Pass a :class:`SQLiteCacheStore` for persistent, cross-process
        caching (the service builds one from ``cache_path``).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        store: Optional[CacheStore] = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"result cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ServiceError(f"result cache ttl must be positive, got {ttl}")
        self.store = store if store is not None else MemoryCacheStore(
            capacity=capacity, clock=clock
        )
        self.capacity = getattr(self.store, "capacity", capacity)
        self.ttl = ttl
        self.stats = CacheStats()
        self._stats_lock = threading.Lock()
        self._flight_lock = threading.Lock()
        self._inflight: Dict[Hashable, _InFlight] = {}
        # Claim identity for cross-process single-flight.  One token per
        # cache instance is enough: the per-process flight table already
        # guarantees at most one thread per key reaches the claim protocol.
        self._claim_owner = f"{os.getpid()}:{uuid.uuid4().hex[:12]}"

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, key: Hashable) -> bool:
        status, _ = self.store.get(key, touch=False)
        if status == "expired":
            with self._stats_lock:
                self.stats.expirations += 1
        return status == "hit"

    def close(self) -> None:
        """Release the backing store (idempotent)."""
        self.store.close()

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it at most once.

        Concurrent callers with the same key coalesce onto one computation;
        if that computation raises, every coalesced waiter sees the same
        exception and nothing is cached (the next request retries).
        """
        while True:
            status, value = self.store.get(key)
            if status == "hit":
                with self._stats_lock:
                    self.stats.hits += 1
                return value
            if status == "expired":
                with self._stats_lock:
                    self.stats.expirations += 1
            with self._flight_lock:
                flight = self._inflight.get(key)
                if flight is None:
                    # Re-check residency before claiming ownership: the
                    # previous owner stores its value *before* removing the
                    # in-flight entry, so a thread that missed pre-store but
                    # arrived here post-removal finds the value now — the
                    # "compute once" contract holds across the two locks.
                    # touch=False: never open a store write transaction
                    # while holding the global flight lock.
                    status, value = self.store.get(key, touch=False)
                    if status == "hit":
                        with self._stats_lock:
                            self.stats.hits += 1
                        return value
                    flight = _InFlight()
                    self._inflight[key] = flight
                    owner = True
                else:
                    owner = False
            if owner:
                break
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._stats_lock:
                self.stats.coalesced += 1
            return flight.value

        # This thread owns the computation (within this process).  With a
        # claim-capable (cross-process) store it must first win the claim
        # for the key — or adopt the value a peer process computed.
        claimed = False
        adopted = False
        try:
            if self.store.supports_claims:
                mode, value = self._claim_or_adopt(key)
                claimed = mode == "claimed"
                adopted = mode == "adopted"
            if not adopted:
                value = compute()
        except BaseException as error:
            if claimed:
                self._release_claim(key)
            flight.error = error
            with self._flight_lock:
                self._inflight.pop(key, None)
            with self._stats_lock:
                self.stats.misses += 1
            flight.done.set()
            raise
        # Residency is best-effort: the value is already computed, so a
        # failing store (SQLite busy past its timeout, unpicklable result,
        # full disk) must not fail the request — and above all must not
        # strand the in-flight entry, which would hang every future caller
        # for this key on flight.done.wait().  The finally block publishes
        # the value and releases the flight (and the cross-process claim —
        # after the put, so a peer can never observe claim-gone while the
        # value is still missing) even when a BaseException
        # (KeyboardInterrupt during a blocked put) escapes the guard.
        evicted = 0
        try:
            if not adopted:
                try:
                    evicted = self.store.put(
                        key, fingerprint_of_key(key), value, self.ttl
                    )
                except Exception:  # noqa: BLE001 — residency failure, value is good
                    logger.warning(
                        "cache store put failed; serving uncached value for %r",
                        key, exc_info=True,
                    )
        finally:
            if claimed:
                self._release_claim(key)
            with self._stats_lock:
                if adopted:
                    self.stats.adopted += 1
                else:
                    self.stats.misses += 1
                self.stats.evictions += evicted
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.value = value
            flight.done.set()
        return value

    def _claim_or_adopt(self, key: Hashable):
        """Win the cross-process claim for ``key``, or adopt a peer's value.

        Returns ``(mode, value)``: ``("claimed", None)`` when this process
        holds the claim and must compute, ``("adopted", value)`` when
        another process computed the entry while we waited, and
        ``("unclaimed", None)`` when the claim protocol itself failed —
        the caller then computes *without* a claim, because dedup is an
        optimisation and a broken coordination store must never fail (or
        stall) a request the kernel could serve.

        Because the winner stores its value before releasing its claim, a
        released claim with no stored value means the previous owner
        failed — in which case re-claiming and recomputing is exactly
        right.  A claim held longer than the store's ``claim_timeout`` is
        presumed orphaned (owner crashed) and stolen by ``try_claim``.
        """
        store = self.store
        owner = self._claim_owner
        poll = getattr(store, "claim_poll_interval", 0.05)
        waited = False
        try:
            while True:
                if store.try_claim(key, owner):
                    # The claim may have been acquired just after a peer
                    # released theirs: re-check residency before working.
                    status, value = store.get(key, touch=False)
                    if status == "hit":
                        self._release_claim(key)
                        if waited:
                            store.note_claim_wait()
                        return "adopted", value
                    return "claimed", None
                # Another process owns the computation: poll for its result.
                waited = True
                time.sleep(poll)
                status, value = store.get(key, touch=False)
                if status == "hit":
                    store.note_claim_wait()
                    return "adopted", value
        except Exception:  # noqa: BLE001 — coordination failure, not compute
            logger.warning(
                "cross-process claim protocol failed for %r; "
                "computing without dedup", key, exc_info=True,
            )
            # We may have just won the claim before the failure (e.g. the
            # residency re-check raised): release best-effort so peers do
            # not stall on an orphan row until claim_timeout.
            self._release_claim(key)
            return "unclaimed", None

    def _release_claim(self, key: Hashable) -> None:
        """Drop this process's claim; never let release failure mask a result."""
        try:
            self.store.release_claim(key, self._claim_owner)
        except Exception:  # noqa: BLE001 — a stuck row only delays peers
            logger.warning("cache claim release failed for %r", key, exc_info=True)

    def peek(self, key: Hashable) -> Any:
        """Return the cached value without recording a hit; KeyError on miss."""
        status, value = self.store.get(key, touch=False)
        if status == "expired":
            with self._stats_lock:
                self.stats.expirations += 1
        if status != "hit":
            raise KeyError(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh a value directly (bypasses single-flight)."""
        evicted = self.store.put(key, fingerprint_of_key(key), value, self.ttl)
        with self._stats_lock:
            self.stats.evictions += evicted

    def invalidate(self, key: Hashable) -> None:
        """Drop one key (no-op when absent)."""
        self.store.delete(key)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry whose key belongs to ``fingerprint``; return count."""
        return self.store.invalidate_fingerprint(fingerprint)

    def clear(self) -> None:
        """Empty the cache (statistics are kept)."""
        self.store.clear()

    def sweep(self) -> int:
        """Evict every expired entry now; return how many were dropped."""
        expired = self.store.sweep()
        with self._stats_lock:
            self.stats.expirations += expired
        return expired

    def describe(self) -> Dict[str, Any]:
        """Accounting plus residency description (drives ``/v1/stats``)."""
        payload: Dict[str, Any] = self.stats.as_dict()
        payload["store"] = self.store.describe()
        return payload

"""Managed exploration sessions: create, resume, touch, expire.

The original GMine is single-user; the service layer lets many users
explore one shared G-Tree at once.  Each user holds a :class:`ServiceSession`
— an id, its own :class:`~repro.core.engine.GMineEngine` (cheap: a focus
pointer and a history list over the shared tree), and a recorded
:class:`~repro.core.session.ExplorationSession`.  The
:class:`SessionManager` owns the id space and the TTL policy: a session that
is not touched within its TTL is expired and must be recreated, exactly like
a web session cookie.

All session state that matters across processes (focus, bookmarks, recorded
steps) serialises through ``state_dict``/``ExplorationSession.to_dict``, so
a session can be persisted, shipped elsewhere, and resumed against a store
reopened from the same file.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.engine import GMineEngine
from ..core.session import ExplorationSession
from ..errors import SessionExpiredError, SessionNotFoundError

DEFAULT_SESSION_TTL = 1800.0  # seconds; matches a typical web-session policy

#: How many expired session ids are remembered (for "expired" vs "unknown"
#: error messages); the oldest tombstones are forgotten beyond this, after
#: which a very old id simply reports as unknown.
EXPIRED_TOMBSTONE_LIMIT = 1024


@dataclass
class ServiceSession:
    """One user's live exploration state over a shared dataset."""

    session_id: str
    dataset: str
    engine: GMineEngine
    recording: ExplorationSession
    ttl: Optional[float]
    created_at: float
    last_used_at: float
    touches: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def state_dict(self) -> Dict[str, Any]:
        """Serialise everything needed to resume this session elsewhere."""
        payload = self.recording.to_dict()
        payload["session_id"] = self.session_id
        payload["dataset"] = self.dataset
        return payload

    def info(self) -> Dict[str, Any]:
        """JSON-safe summary — the protocol's ``session`` payload shape."""
        return {
            "session_id": self.session_id,
            "dataset": self.dataset,
            "focus": self.engine.focus.label,
            "steps": len(self.recording.steps),
            "touches": self.touches,
            "ttl": self.ttl,
        }


class SessionManager:
    """Thread-safe registry of live sessions with TTL-based expiry."""

    def __init__(
        self,
        default_ttl: Optional[float] = DEFAULT_SESSION_TTL,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default_ttl = default_ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: Dict[str, ServiceSession] = {}
        # id -> the TTL it expired under; bounded tombstones for messages
        self._expired: "OrderedDict[str, float]" = OrderedDict()
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def active_ids(self) -> List[str]:
        """Ids of sessions that are currently live (expired ones swept)."""
        with self._lock:
            self.sweep()
            return sorted(self._sessions)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self,
        dataset: str,
        engine: GMineEngine,
        ttl: Optional[float] = None,
        session_id: Optional[str] = None,
        name: str = "session",
    ) -> ServiceSession:
        """Register a new session over ``engine`` and return it."""
        with self._lock:
            if session_id is None:
                session_id = f"{dataset}-{next(self._counter):04d}"
            if session_id in self._sessions:
                raise SessionNotFoundError(
                    f"session id {session_id!r} is already in use"
                )
            now = self._clock()
            session = ServiceSession(
                session_id=session_id,
                dataset=dataset,
                engine=engine,
                recording=ExplorationSession(engine, name=name),
                ttl=self.default_ttl if ttl is None else ttl,
                created_at=now,
                last_used_at=now,
            )
            self._sessions[session_id] = session
            self._expired.pop(session_id, None)
            return session

    def resume(self, session_id: str) -> ServiceSession:
        """Return a live session and refresh its TTL clock.

        Raises :class:`SessionExpiredError` when the session existed but aged
        out, and :class:`SessionNotFoundError` when the id was never issued.
        """
        session = self._lookup(session_id)
        with self._lock:
            session.last_used_at = self._clock()
            session.touches += 1
        return session

    def peek(self, session_id: str) -> ServiceSession:
        """Return a live session *without* refreshing its TTL or touches.

        The read-only lookup behind ``session.describe``: expiry is still
        enforced (a dead session raises exactly as :meth:`resume` would),
        but describing a session repeatedly observes identical state.
        """
        return self._lookup(session_id)

    def _lookup(self, session_id: str) -> ServiceSession:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None and self._is_expired(session):
                self._drop(session_id)
                session = None
            if session is None:
                if session_id in self._expired:
                    raise SessionExpiredError(
                        f"session {session_id!r} expired after its "
                        f"{self._expired[session_id]:.0f}s TTL; create a new one"
                    )
                raise SessionNotFoundError(f"no session with id {session_id!r}")
            return session

    def close(self, session_id: str) -> None:
        """Explicitly end a session (idempotent)."""
        with self._lock:
            self._sessions.pop(session_id, None)
            self._expired.pop(session_id, None)

    def sweep(self) -> List[str]:
        """Expire every session past its TTL; return the expired ids."""
        with self._lock:
            stale = [
                session_id
                for session_id, session in self._sessions.items()
                if self._is_expired(session)
            ]
            for session_id in stale:
                self._drop(session_id)
            return stale

    # ------------------------------------------------------------------ #
    # internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _is_expired(self, session: ServiceSession) -> bool:
        if session.ttl is None:
            return False
        return self._clock() - session.last_used_at > session.ttl

    def _drop(self, session_id: str) -> None:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            self._expired[session_id] = session.ttl if session.ttl is not None else 0.0
            while len(self._expired) > EXPIRED_TOMBSTONE_LIMIT:
                self._expired.popitem(last=False)

"""Deterministic fault injection for chaos testing the service stack.

A :class:`FaultPlan` is an *injector*: production code is instrumented at
a handful of named seams (``SEAMS`` below) with a single guarded call ::

    if self._injector is not None:
        self._injector.fire("worker.run")

and a plan decides — reproducibly, from its seed — whether that call
sleeps, raises, or hard-kills the process.  With no injector configured
the seam is one ``is not None`` check, so the production path pays
nothing (the bench-http gate pins this at <= 2% overhead).

Determinism: each ``(seed, seam, rule-index)`` triple owns an independent
``random.Random`` stream, so the decision sequence at one seam depends
only on how many times *that seam* fired — not on interleaving with other
seams.  Single-threaded request loops therefore reproduce byte-for-byte
from the seed; concurrent loops stay reproducible per-seam in aggregate.

Rules are additive and can be attached after the plan is threaded through
constructors — handy for "prime the cache healthy, then break the
backend" test choreography.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

import random

__all__ = ["SEAMS", "FaultPlan", "FaultRule"]

#: The named injection points instrumented across the service stack.
SEAMS = (
    "cache.get",  # ResultCache -> CacheStore.get
    "cache.put",  # ResultCache -> CacheStore.put
    "worker.run",  # GMineService._execute_op -> ExecutionBackend.run
    "store.read",  # plan execution's dataset/store access (inside local())
    "feed.publish",  # ChangeFeed.publish
)


class FaultRule:
    """One fault at one seam: probability, effect, and an optional budget."""

    __slots__ = ("seam", "probability", "error", "latency", "crash", "times", "fired")

    def __init__(
        self,
        seam: str,
        probability: float = 1.0,
        error: Optional[BaseException] = None,
        latency: float = 0.0,
        crash: bool = False,
        times: Optional[int] = None,
    ) -> None:
        if seam not in SEAMS:
            raise ValueError(f"unknown fault seam {seam!r}; known seams: {SEAMS}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency!r}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1, got {times!r}")
        self.seam = seam
        self.probability = float(probability)
        self.error = error
        self.latency = float(latency)
        self.crash = bool(crash)
        self.times = times
        self.fired = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "seam": self.seam,
            "probability": self.probability,
            "error": None if self.error is None else type(self.error).__name__,
            "latency": self.latency,
            "crash": self.crash,
            "times": self.times,
            "fired": self.fired,
        }


class FaultPlan:
    """A seeded, reproducible set of fault rules keyed by seam.

    Build one, chain ``.on(...)`` calls, and hand it to
    ``GMineService(fault_injector=plan)`` (or directly to the component
    under test).  ``fire(seam)`` is what the instrumented seams call.
    """

    def __init__(
        self,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        crash: Callable[[], None] = lambda: os._exit(86),
    ) -> None:
        self.seed = int(seed)
        self._sleep = sleep
        self._crash = crash
        self._lock = threading.Lock()
        self._rules: Dict[str, List[FaultRule]] = {}
        self._rngs: Dict[tuple, random.Random] = {}
        self._fired: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}

    def on(
        self,
        seam: str,
        probability: float = 1.0,
        error: Optional[BaseException] = None,
        latency: float = 0.0,
        crash: bool = False,
        times: Optional[int] = None,
    ) -> "FaultPlan":
        """Attach a rule; returns self for chaining."""
        rule = FaultRule(seam, probability, error, latency, crash, times)
        with self._lock:
            rules = self._rules.setdefault(seam, [])
            index = len(rules)
            rules.append(rule)
            # One independent stream per rule: decisions at this seam are a
            # pure function of (seed, seam, index, fire-ordinal).
            self._rngs[(seam, index)] = random.Random(
                f"{self.seed}:{seam}:{index}".encode("utf-8")
            )
        return self

    def reset(self, seam: Optional[str] = None) -> None:
        """Drop rules (one seam or all); counters survive for describe()."""
        with self._lock:
            if seam is None:
                self._rules.clear()
                self._rngs.clear()
            else:
                self._rules.pop(seam, None)
                for key in [k for k in self._rngs if k[0] == seam]:
                    del self._rngs[key]

    def fire(self, seam: str) -> None:
        """Evaluate rules for ``seam``; sleep/raise/crash per the draw."""
        with self._lock:
            self._calls[seam] = self._calls.get(seam, 0) + 1
            rules = self._rules.get(seam)
            if not rules:
                return
            latency = 0.0
            chosen: Optional[FaultRule] = None
            for index, rule in enumerate(rules):
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if self._rngs[(seam, index)].random() >= rule.probability:
                    continue
                rule.fired += 1
                self._fired[seam] = self._fired.get(seam, 0) + 1
                latency += rule.latency
                if rule.error is not None or rule.crash:
                    chosen = rule
                    break
        if latency > 0:
            self._sleep(latency)
        if chosen is not None:
            if chosen.crash:
                # The real hook never returns (os._exit); an injected test
                # hook may, and then there is nothing left to raise.
                self._crash()
                return
            # Raise a *fresh* instance so tracebacks don't accumulate on a
            # shared exception object across fires.
            error = chosen.error
            raise error.__class__(*error.args)

    def fired(self, seam: str) -> int:
        with self._lock:
            return self._fired.get(seam, 0)

    def calls(self, seam: str) -> int:
        with self._lock:
            return self._calls.get(seam, 0)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "seed": self.seed,
                "fired": dict(self._fired),
                "calls": dict(self._calls),
                "rules": [
                    rule.describe()
                    for rules in self._rules.values()
                    for rule in rules
                ],
            }

"""GMine as a service: shared datasets, concurrent sessions, cached mining.

The paper demonstrates a single-user GUI; this package grows the same engine
into a concurrent query service.  :class:`GMineService` owns one shared
G-Tree (in-memory or store-backed) per dataset, hands out independent
TTL-managed exploration sessions, and routes every expensive mining call
through a thread-safe LRU+TTL :class:`ResultCache` keyed by
``(tree fingerprint, operation, canonicalized args)``.  The batch API
deduplicates identical requests in flight and fans independent ones out over
a worker pool with per-request error isolation.

The public operation surface is declared in :mod:`repro.api` (GMine
Protocol v2): the registry's :class:`~repro.api.registry.OpSpec` table
drives validation, canonicalization and cache keying for every call, and
the HTTP front-end / :class:`~repro.api.client.GMineClient` expose this
service remotely.
"""

from .cache import (
    CacheStats,
    CacheStore,
    MemoryCacheStore,
    ResultCache,
    SQLiteCacheStore,
    canonical_args,
    make_cache_key,
)
from .cache import StaleServe
from .costmodel import CostModel
from .datasets import DatasetHandle, DatasetRegistry
from .faults import SEAMS, FaultPlan, FaultRule
from .resilience import CircuitBreaker, Deadline, RetryPolicy
from .executors import (
    BACKEND_NAMES,
    AutoBackend,
    DatasetExecSpec,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    StaleDatasetError,
    ThreadBackend,
    make_backend,
)
from .service import (
    DEFAULT_DATASET,
    OPERATIONS,
    GMineService,
    QueryRequest,
    QueryResult,
)
from .sessions import DEFAULT_SESSION_TTL, ServiceSession, SessionManager

__all__ = [
    "AutoBackend",
    "BACKEND_NAMES",
    "CacheStats",
    "CacheStore",
    "CircuitBreaker",
    "CostModel",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "SEAMS",
    "StaleServe",
    "DEFAULT_DATASET",
    "DEFAULT_SESSION_TTL",
    "DatasetExecSpec",
    "DatasetHandle",
    "DatasetRegistry",
    "ExecutionBackend",
    "GMineService",
    "InlineBackend",
    "MemoryCacheStore",
    "OPERATIONS",
    "ProcessBackend",
    "QueryRequest",
    "QueryResult",
    "ResultCache",
    "SQLiteCacheStore",
    "ServiceSession",
    "StaleDatasetError",
    "SessionManager",
    "ThreadBackend",
    "canonical_args",
    "make_backend",
    "make_cache_key",
]

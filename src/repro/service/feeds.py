"""Per-dataset change feeds: the server-push half of the write path.

Every successful mutation of a dataset — a ``dataset.apply`` edit script,
a hot-reload that changed content — publishes one :class:`ChangeEvent`
describing exactly what moved: the new Merkle root fingerprint, the
previous one, and the sub-fingerprints of the partitions that changed.
Sessions watching a community long-poll ``POST /v1/subscribe`` and receive
those events as push invalidations: a client holding cursors or local
caches learns *which* partitions to drop instead of flushing everything.

The feed is a bounded in-memory event log plus a condition variable:

* :meth:`ChangeFeed.publish` stamps a monotonically increasing sequence
  number and wakes every waiting subscriber;
* :meth:`ChangeFeed.wait_for` returns the events newer than the caller's
  ``since`` cursor, blocking up to a timeout when there are none yet —
  which is what turns a plain request/response round trip into a
  long-poll on both the threaded and the asyncio front-end (the asyncio
  router already runs handlers in an executor, so blocking here is safe).

The log is bounded (old events fall off), so a subscriber that slept
through more than ``history`` events is told it *lagged*: it receives the
events still held plus ``lagged=True`` and should treat its world as
stale (re-sync fingerprints) rather than assume the gap was quiet.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ChangeEvent:
    """One published dataset change, as delivered to subscribers."""

    seq: int
    dataset: str
    kind: str  # "apply" | "reload"
    fingerprint: str
    previous_fingerprint: str
    #: Community label -> new sub-fingerprint, for every partition whose
    #: Merkle sub-fingerprint changed (empty when the whole dataset was
    #: replaced wholesale, e.g. a reload — subscribers treat that as
    #: "everything changed").
    changed_partitions: Dict[str, str] = field(default_factory=dict)
    #: Number of edits in the applied script (0 for reloads).
    edits: int = 0

    def as_payload(self) -> Dict[str, Any]:
        """JSON-friendly wire form."""
        return {
            "seq": self.seq,
            "dataset": self.dataset,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "previous_fingerprint": self.previous_fingerprint,
            "changed_partitions": dict(self.changed_partitions),
            "edits": self.edits,
        }

    def touches(self, community: Optional[str]) -> bool:
        """Whether this event concerns ``community`` (``None`` = any).

        An event with no partition detail (a wholesale reload) touches
        every community — the subscriber cannot know its watch survived.
        """
        if community is None:
            return True
        if not self.changed_partitions:
            return True
        return community in self.changed_partitions


class ChangeFeed:
    """Bounded event log + condition variable for one dataset's changes.

    ``close()`` wakes every long-poller immediately (they return their
    empty/partial result instead of sleeping out the timeout) so service
    shutdown never hangs behind a subscriber holding the condition
    variable.  ``injector`` is the optional fault injector fired at the
    ``feed.publish`` seam.
    """

    def __init__(self, history: int = 256, injector: Optional[Any] = None) -> None:
        if history < 1:
            raise ValueError(f"change feed history must be >= 1, got {history}")
        self.history = history
        self._injector = injector
        self._cond = threading.Condition()
        self._events: List[ChangeEvent] = []
        self._next_seq = 1
        self._published = 0
        self._closed = False
        self._waiters = 0

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def waiters(self) -> int:
        """Long-polls currently parked on the condition variable."""
        with self._cond:
            return self._waiters

    def close(self) -> None:
        """Wake every waiting long-poll and refuse further blocking waits."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest published event (0 when none)."""
        with self._cond:
            return self._next_seq - 1

    def publish(self, **fields: Any) -> ChangeEvent:
        """Stamp, append and broadcast one event; returns it."""
        if self._injector is not None:
            # Outside the lock: an injected latency spike must not block
            # subscribers, and an injected error leaves the log untouched.
            self._injector.fire("feed.publish")
        with self._cond:
            event = ChangeEvent(seq=self._next_seq, **fields)
            self._next_seq += 1
            self._published += 1
            self._events.append(event)
            if len(self._events) > self.history:
                del self._events[: len(self._events) - self.history]
            self._cond.notify_all()
            return event

    def events_since(self, since: int) -> Tuple[List[ChangeEvent], bool]:
        """Events with ``seq > since`` plus whether the caller lagged.

        ``lagged`` is true when events the caller never saw have already
        fallen off the bounded log — its view of the dataset may be
        arbitrarily stale and should be re-synced from ``/v1/stats``.
        """
        with self._cond:
            return self._events_since_locked(since)

    def _events_since_locked(self, since: int) -> Tuple[List[ChangeEvent], bool]:
        oldest_held = self._events[0].seq if self._events else self._next_seq
        lagged = since + 1 < oldest_held
        return [event for event in self._events if event.seq > since], lagged

    def wait_for(
        self,
        since: int,
        timeout: float,
        community: Optional[str] = None,
    ) -> Tuple[List[ChangeEvent], bool, int]:
        """Long-poll: events newer than ``since`` matching ``community``.

        Blocks up to ``timeout`` seconds for a matching event; returns
        ``(events, lagged, next_since)`` where ``next_since`` is the
        cursor the subscriber should pass on its next call.  Non-matching
        events (changes confined to other communities) are skipped *and
        advanced past*, so a community watcher never re-inspects them.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            while True:
                events, lagged = self._events_since_locked(since)
                matching = [event for event in events if event.touches(community)]
                if matching or lagged:
                    next_since = events[-1].seq if events else since
                    return matching, lagged, next_since
                if events:
                    # Nothing relevant, but don't re-scan these next time.
                    since = events[-1].seq
                if self._closed:
                    # Server shutting down: return the empty long-poll now
                    # so the request thread can finish and be joined.
                    return [], False, since
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False, since
                self._waiters += 1
                try:
                    self._cond.wait(timeout=remaining)
                finally:
                    self._waiters -= 1

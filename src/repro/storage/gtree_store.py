"""Single-file persistence for G-Trees with lazy leaf loading.

The paper: "The entire structure is stored in a single file and the nodes
are transferred to main memory only when necessary."  This module implements
that behaviour:

* :func:`save_gtree` writes the tree skeleton (every community's metadata
  and connectivity edges) plus one paged blob per leaf subgraph into a
  single page-structured file (:mod:`repro.storage.pager`),
* :class:`GTreeStore` opens such a file, reconstructs the skeleton
  immediately (it is small), and loads leaf subgraphs on demand through an
  LRU buffer pool (:mod:`repro.storage.buffer_pool`), so memory tracks the
  visited part of the hierarchy rather than the whole graph.

File layout
-----------
Page 0 holds a framed header record: magic, version, tree name, the page id
of the skeleton blob, and counters.  The skeleton blob holds one record per
tree node, including — for leaves — the first page id of that leaf's
subgraph blob.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.gtree import ConnectivityEdge, GTree, GTreeNode
from ..errors import CorruptStoreError, StorageError
from ..graph.graph import Graph
from .buffer_pool import BufferPool, BufferPoolStats
from .pager import DEFAULT_PAGE_SIZE, Pager, PagerStats
from .serializer import (
    decode_graph,
    decode_record,
    decode_varint,
    encode_graph,
    encode_record,
    encode_varint,
    frame,
    unframe,
)

PathLike = Union[str, Path]

MAGIC = "GMINE-GTREE"
STORE_VERSION = 1
_NO_PAGE = -1


def save_gtree(
    tree: GTree,
    path: PathLike,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> None:
    """Persist ``tree`` (skeleton + leaf subgraphs) into a single file."""
    missing = [leaf.label for leaf in tree.leaves() if leaf.subgraph is None]
    if missing:
        raise StorageError(
            "cannot save a G-Tree whose leaf subgraphs were never attached "
            f"(missing for {len(missing)} leaves, e.g. {missing[:3]})"
        )
    with Pager(path, page_size=page_size, create=True) as pager:
        # Reserve page 0 for the header; written last once offsets are known.
        pager.allocate_page()

        leaf_pages: Dict[int, int] = {}
        for leaf in tree.leaves():
            payload = frame(encode_graph(leaf.subgraph))
            leaf_pages[leaf.node_id] = pager.write_blob(payload)

        skeleton = bytearray()
        skeleton += encode_varint(tree.num_tree_nodes)
        for node in tree.nodes():
            record = {
                "id": node.node_id,
                "label": node.label,
                "level": node.level,
                "parent": node.parent_id if node.parent_id is not None else -1,
                "children": list(node.children),
                "members": list(node.members),
                "leaf_page": leaf_pages.get(node.node_id, _NO_PAGE),
                # Content digest of the leaf subgraph: lets a reopened store
                # reproduce the tree fingerprint without loading any leaf.
                "digest": node.subgraph.content_digest() if node.is_leaf else "",
            }
            skeleton += frame(encode_record(record))
            connectivity = bytearray()
            connectivity += encode_varint(len(node.connectivity))
            for edge in node.connectivity:
                connectivity += encode_record(
                    {
                        "s": edge.source,
                        "t": edge.target,
                        "c": edge.edge_count,
                        "w": float(edge.total_weight),
                    }
                )
            skeleton += frame(bytes(connectivity))
        skeleton_page = pager.write_blob(frame(bytes(skeleton)))

        header = encode_record(
            {
                "magic": MAGIC,
                "version": STORE_VERSION,
                "name": tree.name,
                "skeleton_page": skeleton_page,
                "tree_nodes": tree.num_tree_nodes,
                "leaves": tree.num_leaves,
                "vertices": tree.num_graph_vertices(),
            }
        )
        pager.write_page(0, frame(header))
        pager.flush()


@dataclass
class StoreStats:
    """Combined I/O and cache statistics for one open store."""

    pager: PagerStats
    buffer_pool: BufferPoolStats
    leaves_loaded: int = 0


class GTreeStore:
    """Read access to a persisted G-Tree with on-demand leaf loading."""

    def __init__(
        self,
        path: PathLike,
        cache_capacity: int = 64,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.path = Path(path)
        self._pager = Pager(self.path, page_size=page_size, read_only=True)
        self._pool = BufferPool(capacity=cache_capacity)
        self._leaf_pages: Dict[int, int] = {}
        self._leaf_digests: Dict[int, str] = {}
        self._leaves_loaded = 0
        # One store may serve many engine sessions concurrently; the lock
        # serialises pager seeks/reads and the leaves-loaded counter.
        self._lock = threading.RLock()
        self.tree = self._load_skeleton()
        self._fingerprint: Optional[str] = None
        self._partition_fingerprints: Optional[Dict[int, str]] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        self._pager.close()

    def __enter__(self) -> "GTreeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def stats(self) -> StoreStats:
        """Return current I/O and cache counters."""
        return StoreStats(
            pager=self._pager.stats,
            buffer_pool=self._pool.stats,
            leaves_loaded=self._leaves_loaded,
        )

    @property
    def fingerprint(self) -> str:
        """Content hash identifying this store's tree for result caching.

        Delegates to :meth:`~repro.core.gtree.GTree.fingerprint`, feeding it
        the per-leaf content digests recorded at save time, so a store and
        the in-memory tree it was saved from agree on the key without any
        leaf being loaded (computed once and memoised; the file is opened
        read-only, so it cannot drift).
        """
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = self.tree.fingerprint(self._leaf_digests)
            return self._fingerprint

    @property
    def partition_fingerprints(self) -> Dict[int, str]:
        """Per-community Merkle sub-fingerprints, without loading any leaf.

        Same contract as :attr:`fingerprint`: the skeleton's recorded leaf
        digests feed :meth:`~repro.core.gtree.GTree.partition_fingerprints`,
        so a store and the in-memory tree it was saved from produce the
        identical map (memoised; the file is read-only).
        """
        with self._lock:
            if self._partition_fingerprints is None:
                self._partition_fingerprints = self.tree.partition_fingerprints(
                    self._leaf_digests
                )
            return dict(self._partition_fingerprints)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def _load_skeleton(self) -> GTree:
        """Read the header and skeleton blob and rebuild the tree structure."""
        header_payload, _ = unframe(self._pager.read_page(0)[0])
        header, _ = decode_record(header_payload)
        if header.get("magic") != MAGIC:
            raise CorruptStoreError(f"{self.path} is not a GMine G-Tree store")
        if header.get("version") != STORE_VERSION:
            raise CorruptStoreError(
                f"unsupported store version {header.get('version')!r}"
            )
        skeleton_blob = self._pager.read_blob(int(header["skeleton_page"]))
        skeleton, _ = unframe(skeleton_blob)

        tree = GTree(name=str(header.get("name", "")))
        offset = 0
        count, offset = decode_varint(skeleton, offset)
        expected = int(header.get("tree_nodes", count))
        if count != expected:
            raise CorruptStoreError(
                f"skeleton holds {count} nodes but header claims {expected}"
            )
        for _ in range(count):
            record_payload, offset = unframe(skeleton, offset)
            record, _ = decode_record(record_payload)
            connectivity_payload, offset = unframe(skeleton, offset)
            connectivity = self._decode_connectivity(connectivity_payload)
            parent = int(record["parent"])
            node = GTreeNode(
                node_id=int(record["id"]),
                label=str(record["label"]),
                level=int(record["level"]),
                parent_id=None if parent < 0 else parent,
                children=[int(child) for child in record["children"]],
                members=list(record["members"]),
                connectivity=connectivity,
            )
            tree.add_node(node)
            leaf_page = int(record["leaf_page"])
            if leaf_page != _NO_PAGE:
                self._leaf_pages[node.node_id] = leaf_page
                self._leaf_digests[node.node_id] = str(record.get("digest", ""))
                tree.register_leaf_members(node)
        tree.assert_valid()
        return tree

    @staticmethod
    def _decode_connectivity(payload: bytes) -> List[ConnectivityEdge]:
        """Decode the connectivity-edge block of one skeleton record."""
        edges: List[ConnectivityEdge] = []
        offset = 0
        count, offset = decode_varint(payload, offset)
        for _ in range(count):
            record, offset = decode_record(payload, offset)
            edges.append(
                ConnectivityEdge(
                    source=int(record["s"]),
                    target=int(record["t"]),
                    edge_count=int(record["c"]),
                    total_weight=float(record["w"]),
                )
            )
        return edges

    def load_leaf_subgraph(self, node_id: int) -> Graph:
        """Return the subgraph of leaf community ``node_id`` (cached LRU)."""
        node = self.tree.node(node_id)
        if not node.is_leaf:
            raise StorageError(
                f"community {node.label!r} is not a leaf; only leaves hold subgraphs"
            )
        if node_id not in self._leaf_pages:
            raise CorruptStoreError(f"leaf {node.label!r} has no stored subgraph")

        # Fast path: already resident (the pool is internally locked).
        try:
            return self._pool.get(node_id)
        except KeyError:
            pass
        # The pager's seek/read pair is not safe to interleave, so only the
        # raw page I/O runs under the store lock; decoding happens outside
        # it so concurrent sessions can decode different leaves in parallel.
        # Two threads missing the same leaf at once may both decode it — the
        # second put() simply refreshes the entry, which is harmless.
        with self._lock:
            self._leaves_loaded += 1
            blob = self._pager.read_blob(self._leaf_pages[node_id])
        payload, _ = unframe(blob)
        graph = decode_graph(payload)
        self._pool.put(node_id, graph)
        return graph

    def is_resident(self, node_id: int) -> bool:
        """Whether a leaf subgraph is currently held in memory."""
        with self._lock:
            return node_id in self._pool

    def resident_leaf_count(self) -> int:
        """Number of leaf subgraphs currently resident in the buffer pool."""
        with self._lock:
            return len(self._pool)


def load_gtree_fully(path: PathLike) -> GTree:
    """Load a stored G-Tree and eagerly attach every leaf subgraph.

    This is the "load everything" baseline the scalability benchmark
    contrasts against lazy :class:`GTreeStore` access.
    """
    with GTreeStore(path, cache_capacity=max(1, 1_000_000)) as store:
        tree = store.tree
        for leaf in tree.leaves():
            leaf.subgraph = store.load_leaf_subgraph(leaf.node_id)
        return tree

"""Binary serialization for graph payloads and G-Tree records.

The on-disk G-Tree keeps each tree node's payload (its community subgraph
for leaves, its child summary for internal nodes) as a length-prefixed,
checksummed binary blob.  The encoding is a small, explicit, versioned
format rather than pickle: it is safe to load untrusted files, stable across
Python versions, and easy to validate for the corruption-injection tests.

Primitive encoding
------------------
* integers: unsigned LEB128-style varints (negative values use zigzag),
* floats: 8-byte IEEE-754 big-endian,
* strings/bytes: varint length followed by UTF-8 bytes,
* node ids: a 1-byte type tag (int / string) followed by the value — the
  graphs GMine handles use integer or string vertex ids only.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Tuple

from ..errors import CorruptStoreError, StorageError
from ..graph.graph import Graph, NodeId

_TAG_INT = 0
_TAG_STR = 1
_FLOAT = struct.Struct(">d")

FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# primitive encoders
# --------------------------------------------------------------------------- #
def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise StorageError(f"varint cannot encode negative value {value}")
    output = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            output.append(byte | 0x80)
        else:
            output.append(byte)
            return bytes(output)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise CorruptStoreError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 70:
            raise CorruptStoreError("varint too long")


def encode_signed(value: int) -> bytes:
    """Zigzag-encode a signed integer."""
    return encode_varint((value << 1) ^ (value >> 63) if value < 0 else value << 1)


def decode_signed(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a zigzag-encoded signed integer."""
    raw, position = decode_varint(data, offset)
    return (raw >> 1) ^ -(raw & 1), position


def encode_string(value: str) -> bytes:
    """Encode a UTF-8 string with a varint length prefix."""
    payload = value.encode("utf-8")
    return encode_varint(len(payload)) + payload


def decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a length-prefixed UTF-8 string."""
    length, position = decode_varint(data, offset)
    end = position + length
    if end > len(data):
        raise CorruptStoreError("truncated string")
    return data[position:end].decode("utf-8"), end


def encode_float(value: float) -> bytes:
    """Encode an IEEE-754 double."""
    return _FLOAT.pack(value)


def decode_float(data: bytes, offset: int) -> Tuple[float, int]:
    """Decode an IEEE-754 double."""
    end = offset + _FLOAT.size
    if end > len(data):
        raise CorruptStoreError("truncated float")
    return _FLOAT.unpack_from(data, offset)[0], end


def encode_node_id(node: NodeId) -> bytes:
    """Encode an int or str vertex id with a type tag."""
    if isinstance(node, bool):
        raise StorageError("boolean vertex ids are not supported by the store")
    if isinstance(node, int):
        return bytes([_TAG_INT]) + encode_signed(node)
    if isinstance(node, str):
        return bytes([_TAG_STR]) + encode_string(node)
    raise StorageError(
        f"vertex id {node!r} has unsupported type {type(node).__name__}; "
        "the G-Tree store handles int and str ids"
    )


def decode_node_id(data: bytes, offset: int) -> Tuple[NodeId, int]:
    """Decode a tagged vertex id."""
    if offset >= len(data):
        raise CorruptStoreError("truncated node id")
    tag = data[offset]
    offset += 1
    if tag == _TAG_INT:
        return decode_signed(data, offset)
    if tag == _TAG_STR:
        return decode_string(data, offset)
    raise CorruptStoreError(f"unknown node-id tag {tag}")


# --------------------------------------------------------------------------- #
# graph payloads
# --------------------------------------------------------------------------- #
def encode_graph(graph: Graph, include_attrs: bool = True) -> bytes:
    """Serialize a graph (structure, weights, and string node attributes)."""
    output = bytearray()
    output += encode_varint(FORMAT_VERSION)
    output += encode_string(graph.name)
    output += encode_varint(graph.num_nodes)
    for node in graph.nodes():
        output += encode_node_id(node)
        attrs = graph.node_attrs(node) if include_attrs else {}
        string_attrs = {
            key: value for key, value in attrs.items() if isinstance(value, str)
        }
        numeric_attrs = {
            key: float(value)
            for key, value in attrs.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        output += encode_varint(len(string_attrs))
        for key, value in string_attrs.items():
            output += encode_string(key)
            output += encode_string(value)
        output += encode_varint(len(numeric_attrs))
        for key, value in numeric_attrs.items():
            output += encode_string(key)
            output += encode_float(value)
    output += encode_varint(graph.num_edges)
    for u, v, w in graph.edges():
        output += encode_node_id(u)
        output += encode_node_id(v)
        output += encode_float(w)
    return bytes(output)


def decode_graph(data: bytes) -> Graph:
    """Rebuild a graph serialized by :func:`encode_graph`."""
    offset = 0
    version, offset = decode_varint(data, offset)
    if version != FORMAT_VERSION:
        raise CorruptStoreError(f"unsupported graph payload version {version}")
    name, offset = decode_string(data, offset)
    graph = Graph(name=name)
    num_nodes, offset = decode_varint(data, offset)
    for _ in range(num_nodes):
        node, offset = decode_node_id(data, offset)
        graph.add_node(node)
        num_string_attrs, offset = decode_varint(data, offset)
        for _ in range(num_string_attrs):
            key, offset = decode_string(data, offset)
            value, offset = decode_string(data, offset)
            graph.node_attrs(node)[key] = value
        num_numeric_attrs, offset = decode_varint(data, offset)
        for _ in range(num_numeric_attrs):
            key, offset = decode_string(data, offset)
            value, offset = decode_float(data, offset)
            graph.node_attrs(node)[key] = value
    num_edges, offset = decode_varint(data, offset)
    for _ in range(num_edges):
        u, offset = decode_node_id(data, offset)
        v, offset = decode_node_id(data, offset)
        w, offset = decode_float(data, offset)
        graph.add_edge(u, v, weight=w)
    if offset != len(data):
        raise CorruptStoreError(
            f"trailing bytes after graph payload ({len(data) - offset} extra)"
        )
    return graph


# --------------------------------------------------------------------------- #
# generic small records (dict of primitives / lists thereof)
# --------------------------------------------------------------------------- #
def encode_record(record: Dict[str, Any]) -> bytes:
    """Serialize a flat record of str/int/float/list-of-id values."""
    output = bytearray()
    output += encode_varint(len(record))
    for key, value in record.items():
        output += encode_string(key)
        if isinstance(value, bool):
            raise StorageError(f"record field {key!r}: booleans are not supported")
        if isinstance(value, int):
            output += b"i" + encode_signed(value)
        elif isinstance(value, float):
            output += b"f" + encode_float(value)
        elif isinstance(value, str):
            output += b"s" + encode_string(value)
        elif isinstance(value, (list, tuple)):
            output += b"l" + encode_varint(len(value))
            for item in value:
                output += encode_node_id(item)
        else:
            raise StorageError(
                f"record field {key!r} has unsupported type {type(value).__name__}"
            )
    return bytes(output)


def decode_record(data: bytes, offset: int = 0) -> Tuple[Dict[str, Any], int]:
    """Decode a record serialized by :func:`encode_record`."""
    record: Dict[str, Any] = {}
    count, offset = decode_varint(data, offset)
    for _ in range(count):
        key, offset = decode_string(data, offset)
        if offset >= len(data):
            raise CorruptStoreError("truncated record field")
        kind = data[offset:offset + 1]
        offset += 1
        if kind == b"i":
            value, offset = decode_signed(data, offset)
        elif kind == b"f":
            value, offset = decode_float(data, offset)
        elif kind == b"s":
            value, offset = decode_string(data, offset)
        elif kind == b"l":
            length, offset = decode_varint(data, offset)
            items: List[NodeId] = []
            for _ in range(length):
                item, offset = decode_node_id(data, offset)
                items.append(item)
            value = items
        else:
            raise CorruptStoreError(f"unknown record field kind {kind!r}")
        record[key] = value
    return record, offset


# --------------------------------------------------------------------------- #
# framing with checksum
# --------------------------------------------------------------------------- #
def frame(payload: bytes) -> bytes:
    """Wrap a payload with a length prefix and CRC32 trailer."""
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    return encode_varint(len(payload)) + payload + struct.pack(">I", checksum)


def unframe(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Extract and verify one framed payload; return ``(payload, next_offset)``."""
    length, position = decode_varint(data, offset)
    end = position + length
    if end + 4 > len(data):
        raise CorruptStoreError("truncated frame")
    payload = data[position:end]
    (expected,) = struct.unpack_from(">I", data, end)
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if expected != actual:
        raise CorruptStoreError(
            f"frame checksum mismatch (expected {expected:#x}, got {actual:#x})"
        )
    return payload, end + 4

"""LRU buffer pool for G-Tree node payloads.

The interactive system only keeps the communities the user has visited in
memory; everything else stays on disk.  The buffer pool implements that
policy: a capacity-bounded LRU cache keyed by tree-node id, with hit/miss
statistics used by the scalability benchmark and optional pinning for the
node currently in focus.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

from ..errors import StorageError


@dataclass
class BufferPoolStats:
    """Hit/miss/eviction counters for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory (0.0 when unused)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """A small LRU cache with pinning.

    Parameters
    ----------
    capacity:
        Maximum number of entries held at once (must be >= 1).  Pinned
        entries never count as eviction candidates; if every resident entry
        is pinned and the pool is full, inserting raises ``StorageError`` —
        the caller is holding too many communities in focus at once.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = BufferPoolStats()
        # Reentrant so a loader running under get() may touch the pool; the
        # lock makes the pool safe under the service layer's worker threads.
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._pinned: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def resident_keys(self):
        """Return the keys currently held, most recently used last."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ #
    # cache operations
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, loader: Optional[Callable[[], Any]] = None) -> Any:
        """Return the cached value for ``key``.

        On a miss, ``loader`` (if given) is called to produce the value,
        which is then cached; without a loader a miss raises ``KeyError``.
        The loader runs with the pool lock held, so concurrent misses on the
        same key load exactly once.
        """
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
            if loader is None:
                raise KeyError(key)
            value = loader()
            self.put(key, value)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU unpinned entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                return
            if len(self._entries) >= self.capacity:
                self._evict_one()
            self._entries[key] = value

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` from the pool (no-op if absent; clears any pin)."""
        with self._lock:
            self._entries.pop(key, None)
            self._pinned.pop(key, None)

    def clear(self) -> None:
        """Empty the pool (pins are released too)."""
        with self._lock:
            self._entries.clear()
            self._pinned.clear()

    # ------------------------------------------------------------------ #
    # pinning
    # ------------------------------------------------------------------ #
    def pin(self, key: Hashable) -> None:
        """Protect ``key`` from eviction (reference counted)."""
        with self._lock:
            if key not in self._entries:
                raise KeyError(key)
            self._pinned[key] = self._pinned.get(key, 0) + 1

    def unpin(self, key: Hashable) -> None:
        """Release one pin on ``key``."""
        with self._lock:
            count = self._pinned.get(key, 0)
            if count <= 1:
                self._pinned.pop(key, None)
            else:
                self._pinned[key] = count - 1

    def is_pinned(self, key: Hashable) -> bool:
        """Whether ``key`` currently holds at least one pin."""
        with self._lock:
            return self._pinned.get(key, 0) > 0

    def _evict_one(self) -> None:
        """Evict the least recently used unpinned entry."""
        for key in self._entries:
            if not self.is_pinned(key):
                del self._entries[key]
                self.stats.evictions += 1
                return
        raise StorageError(
            "buffer pool is full and every entry is pinned; "
            "increase capacity or unpin unused communities"
        )

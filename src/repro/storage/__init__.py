"""Single-file G-Tree persistence: pages, serialization, buffer pool, store.

Implements the paper's storage claim — "the entire structure is stored in a
single file and the nodes are transferred to main memory only when
necessary" — with a fixed-size-page file, checksummed binary serialization,
an LRU buffer pool, and a store object that loads leaf subgraphs lazily.
"""

from .buffer_pool import BufferPool, BufferPoolStats
from .gtree_store import GTreeStore, StoreStats, load_gtree_fully, save_gtree
from .pager import DEFAULT_PAGE_SIZE, Pager, PagerStats
from .serializer import (
    decode_graph,
    decode_record,
    encode_graph,
    encode_record,
    frame,
    unframe,
)

__all__ = [
    "BufferPool",
    "BufferPoolStats",
    "DEFAULT_PAGE_SIZE",
    "GTreeStore",
    "Pager",
    "PagerStats",
    "StoreStats",
    "decode_graph",
    "decode_record",
    "encode_graph",
    "encode_record",
    "frame",
    "load_gtree_fully",
    "save_gtree",
    "unframe",
]

"""Fixed-size page manager over a single file.

The paper stores the whole G-Tree "in a single file" and moves tree nodes to
main memory "only when necessary".  This module provides the low-level half
of that: a page-addressed file where every page carries a small header
(page id, payload length, CRC32) so corruption is detected on read, plus
simple allocation of payloads that span multiple pages (overflow chains).

Layout
------
``page 0`` is reserved for the store header written by
:class:`~repro.storage.gtree_store.GTreeStore`.  Every other page is::

    [4 bytes page id] [4 bytes next page id or 0xFFFFFFFF]
    [4 bytes payload length in this page] [4 bytes CRC32 of that payload]
    [payload ...] [zero padding up to page_size]

Statistics (pages read / written) are tracked so the scalability benchmark
can report I/O work instead of wall-clock noise.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union
import zlib

from ..errors import CorruptStoreError, PageError

PathLike = Union[str, Path]

PAGE_HEADER = struct.Struct(">IIII")
NO_NEXT_PAGE = 0xFFFFFFFF
DEFAULT_PAGE_SIZE = 4096


@dataclass
class PagerStats:
    """I/O counters maintained by the pager."""

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.pages_read = 0
        self.pages_written = 0
        self.bytes_read = 0
        self.bytes_written = 0


class Pager:
    """Fixed-size-page storage over one file.

    The pager does not cache; caching is the buffer pool's job
    (:mod:`repro.storage.buffer_pool`).
    """

    def __init__(
        self,
        path: PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        create: bool = False,
        read_only: bool = False,
    ) -> None:
        if page_size <= PAGE_HEADER.size + 1:
            raise PageError(f"page size {page_size} is too small")
        self.path = Path(path)
        self.page_size = page_size
        self.read_only = read_only
        self.stats = PagerStats()
        if create:
            if read_only:
                raise PageError("cannot create a read-only store")
            self._file = open(self.path, "w+b")
        else:
            if not self.path.exists():
                raise PageError(f"store file does not exist: {self.path}")
            mode = "rb" if read_only else "r+b"
            self._file = open(self.path, mode)
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_pages(self) -> int:
        """Number of pages currently in the file (including page 0)."""
        self._file.seek(0, os.SEEK_END)
        return self._file.tell() // self.page_size

    @property
    def capacity_per_page(self) -> int:
        """Payload bytes that fit in one page."""
        return self.page_size - PAGE_HEADER.size

    # ------------------------------------------------------------------ #
    # raw page access
    # ------------------------------------------------------------------ #
    def allocate_page(self) -> int:
        """Append an empty page to the file and return its id."""
        self._ensure_writable()
        page_id = self.num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        return page_id

    def write_page(self, page_id: int, payload: bytes, next_page: int = NO_NEXT_PAGE) -> None:
        """Write ``payload`` (must fit in one page) to page ``page_id``."""
        self._ensure_writable()
        if len(payload) > self.capacity_per_page:
            raise PageError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.capacity_per_page}"
            )
        if page_id <= 0 or page_id >= max(self.num_pages, 1):
            if page_id != 0 and page_id >= self.num_pages:
                raise PageError(f"page {page_id} has not been allocated")
        checksum = zlib.crc32(payload) & 0xFFFFFFFF
        header = PAGE_HEADER.pack(page_id, next_page, len(payload), checksum)
        block = header + payload
        block += b"\x00" * (self.page_size - len(block))
        self._file.seek(page_id * self.page_size)
        self._file.write(block)
        self.stats.pages_written += 1
        self.stats.bytes_written += self.page_size

    def read_page(self, page_id: int) -> tuple:
        """Return ``(payload, next_page)`` for page ``page_id``; verify CRC."""
        if page_id < 0 or page_id >= self.num_pages:
            raise PageError(f"page {page_id} is out of range (have {self.num_pages})")
        self._file.seek(page_id * self.page_size)
        block = self._file.read(self.page_size)
        if len(block) < self.page_size:
            raise CorruptStoreError(f"page {page_id} is truncated")
        stored_id, next_page, length, checksum = PAGE_HEADER.unpack_from(block, 0)
        if stored_id != page_id:
            raise CorruptStoreError(
                f"page {page_id} header claims id {stored_id} (file is corrupt)"
            )
        if length > self.capacity_per_page:
            raise CorruptStoreError(f"page {page_id} claims impossible length {length}")
        payload = block[PAGE_HEADER.size:PAGE_HEADER.size + length]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != checksum:
            raise CorruptStoreError(f"page {page_id} failed checksum validation")
        self.stats.pages_read += 1
        self.stats.bytes_read += self.page_size
        return payload, next_page

    # ------------------------------------------------------------------ #
    # multi-page payloads (overflow chains)
    # ------------------------------------------------------------------ #
    def write_blob(self, payload: bytes) -> int:
        """Store an arbitrary-size payload across newly allocated pages.

        Returns the id of the first page of the chain.
        """
        self._ensure_writable()
        capacity = self.capacity_per_page
        chunks = [payload[i:i + capacity] for i in range(0, len(payload), capacity)] or [b""]
        page_ids = [self.allocate_page() for _ in chunks]
        for position, (page_id, chunk) in enumerate(zip(page_ids, chunks)):
            next_page = page_ids[position + 1] if position + 1 < len(page_ids) else NO_NEXT_PAGE
            self.write_page(page_id, chunk, next_page=next_page)
        return page_ids[0]

    def read_blob(self, first_page: int, max_pages: int = 1_000_000) -> bytes:
        """Reassemble a payload stored by :func:`write_blob`."""
        parts: List[bytes] = []
        page_id = first_page
        hops = 0
        while page_id != NO_NEXT_PAGE:
            payload, next_page = self.read_page(page_id)
            parts.append(payload)
            page_id = next_page
            hops += 1
            if hops > max_pages:
                raise CorruptStoreError("overflow chain appears to be cyclic")
        return b"".join(parts)

    def flush(self) -> None:
        """Flush buffered writes to the operating system."""
        self._file.flush()

    def _ensure_writable(self) -> None:
        if self.read_only:
            raise PageError("store is opened read-only")
        if self._closed:
            raise PageError("store is closed")

"""GMine reproduction: scalable, interactive graph visualization and mining.

A faithful, pure-Python reproduction of *GMine: A System for Scalable,
Interactive Graph Visualization and Mining* (Rodrigues Jr., Tong, Traina,
Faloutsos, Leskovec — VLDB 2006):

* :mod:`repro.graph` — the graph substrate (structures, generators, IO),
* :mod:`repro.partition` — multilevel k-way partitioning (METIS substitute)
  and recursive communities-within-communities hierarchies,
* :mod:`repro.core` — the G-Tree, connectivity edges, the Tomahawk display
  principle and the interactive :class:`~repro.core.engine.GMineEngine`,
* :mod:`repro.storage` — single-file persistence with lazy, paged loading,
* :mod:`repro.mining` — random walk with restart, multi-source connection
  subgraph extraction, the delivered-current baseline and subgraph metrics,
* :mod:`repro.viz` — headless layouts and SVG rendering of every view,
* :mod:`repro.data` — the synthetic DBLP-like co-authorship dataset.

Quickstart
----------
>>> from repro import small_dblp, build_gtree, GMineEngine
>>> dataset = small_dblp(1000, seed=7)
>>> tree = build_gtree(dataset.graph, fanout=5, levels=3)
>>> engine = GMineEngine(tree, graph=dataset.graph)
>>> engine.focus_root().size >= 1
True
"""

from .core import (
    ConnectivityEdge,
    GMineEngine,
    GTree,
    GTreeBuildOptions,
    GTreeBuilder,
    GTreeNode,
    TomahawkContext,
    build_gtree,
    tomahawk_context,
)
from .data import DBLPConfig, DBLPDataset, generate_dblp, small_dblp
from .errors import GMineError
from .graph import DiGraph, Graph
from .mining import (
    ExtractionResult,
    compute_subgraph_metrics,
    extract_connection_subgraph,
    extract_delivered_current,
    meeting_probability,
    pagerank,
    steady_state_rwr,
)
from .service import (
    GMineService,
    QueryRequest,
    QueryResult,
    ResultCache,
    ServiceSession,
    SessionManager,
)
from .partition import (
    HierarchicalPartition,
    KWayOptions,
    edge_cut,
    kway_partition,
    recursive_partition,
)
from .storage import GTreeStore, load_gtree_fully, save_gtree
from .viz import render_subgraph, render_tomahawk_view, write_svg

__version__ = "1.0.0"

__all__ = [
    "ConnectivityEdge",
    "DBLPConfig",
    "DBLPDataset",
    "DiGraph",
    "ExtractionResult",
    "GMineEngine",
    "GMineError",
    "GMineService",
    "GTree",
    "GTreeBuildOptions",
    "GTreeBuilder",
    "GTreeNode",
    "GTreeStore",
    "Graph",
    "HierarchicalPartition",
    "KWayOptions",
    "QueryRequest",
    "QueryResult",
    "ResultCache",
    "ServiceSession",
    "SessionManager",
    "TomahawkContext",
    "__version__",
    "build_gtree",
    "compute_subgraph_metrics",
    "edge_cut",
    "extract_connection_subgraph",
    "extract_delivered_current",
    "generate_dblp",
    "kway_partition",
    "load_gtree_fully",
    "meeting_probability",
    "pagerank",
    "recursive_partition",
    "render_subgraph",
    "render_tomahawk_view",
    "save_gtree",
    "small_dblp",
    "steady_state_rwr",
    "tomahawk_context",
    "write_svg",
]

"""Evaluate compiled GPath plans over a (community) subgraph.

``evaluate_path`` is the body of the ``query.path`` kernel: a pure
function of ``(subgraph, plan)`` — the same contract every other plan
kernel honours — so results are byte-identical across inline, thread and
process backends.  ``prepared=`` is a pass-through optimisation: it is
only consulted when the plan's selection is the whole subgraph with no
edge predicates (the scope-folded fast path), where the scoring and
metric legs reuse the dataset's cached CSR operators.

The evaluator accepts both lowered and normalized chains: ``Filter``
nodes accumulate into the active predicate set, and node-embedded
predicates (the normalized form) are unioned with it, so the fusion pass
is a pure optimisation — tests pin lowered == normalized results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import InvalidArgumentError
from ..graph.graph import Graph
from ..mining.metrics_suite import compute_subgraph_metrics
from ..mining.rwr import node_sort_key, steady_state_rwr
from .plan import (
    Collect,
    Const,
    EdgePredicate,
    Expand,
    Filter,
    Limit,
    Metrics,
    PlanNode,
    Score,
    Seed,
    chain,
)

#: Metric-suite arguments match the registry's ``dataset.metrics``
#: defaults, so a GPath ``metrics`` terminal over a whole community is
#: bit-identical to the direct op.
_METRICS_DEFAULTS = dict(
    hop_sample_size=None, pagerank_damping=0.85, top_k=10, seed=0,
)


@dataclass(frozen=True)
class PathResult:
    """The materialized answer of one GPath query (picklable, frozen)."""

    kind: str  # "nodes" | "count" | "scores" | "metrics"
    items: Tuple[Any, ...] = ()
    scores: Tuple[Tuple[Any, float], ...] = ()
    count: int = 0
    iterations: int = 0
    converged: bool = True
    restart_probability: float = 0.0
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False)

    @property
    def stream_total(self) -> int:
        """How many streamable entries the full (un-paged) result holds."""
        if self.kind == "nodes":
            return len(self.items)
        if self.kind == "scores":
            return len(self.scores)
        return 0


def _compare(actual: Any, op: str, expected: Any) -> bool:
    try:
        if op == "<":
            return actual < expected
        if op == "<=":
            return actual <= expected
        if op == ">":
            return actual > expected
        if op == ">=":
            return actual >= expected
        if op == "==":
            return actual == expected
        return actual != expected
    except TypeError:
        # Incomparable types (e.g. a string attribute vs a number): the
        # edge simply fails the predicate rather than failing the query.
        return False


def _edge_passes(
    graph: Graph, u: Any, v: Any, weight: float,
    predicates: Tuple[EdgePredicate, ...],
) -> bool:
    for predicate in predicates:
        if predicate.attr == "weight":
            actual = weight
        else:
            attrs = graph.edge_attrs(u, v)
            if predicate.attr not in attrs:
                return False
            actual = attrs[predicate.attr]
        if not _compare(actual, predicate.op, predicate.value):
            return False
    return True


def _merge(
    active: Tuple[EdgePredicate, ...], extra: Tuple[EdgePredicate, ...]
) -> Tuple[EdgePredicate, ...]:
    merged = list(active)
    for predicate in extra:
        if predicate not in merged:
            merged.append(predicate)
    return tuple(merged)


def _expand(
    graph: Graph, vertices: Set, hops: int,
    predicates: Tuple[EdgePredicate, ...],
) -> Set:
    """Multi-source BFS of up to ``hops`` hops over passing edges."""
    visited = set(vertices)
    frontier = visited
    for _ in range(hops):
        next_frontier = set()
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor in visited or neighbor in next_frontier:
                    continue
                weight = graph.edge_weight(node, neighbor)
                if _edge_passes(graph, node, neighbor, weight, predicates):
                    next_frontier.add(neighbor)
        if not next_frontier:
            break
        visited |= next_frontier
        frontier = next_frontier
    return visited


def _induce(
    subgraph: Graph, vertices: Set,
    predicates: Tuple[EdgePredicate, ...], prepared,
):
    """The induced graph of ``vertices`` with failing edges dropped.

    When the selection is the whole subgraph and no predicates apply,
    the subgraph itself (and its prepared view) pass straight through —
    the fast path scope folding arranges for community- and root-scoped
    queries.
    """
    if not predicates and len(vertices) == subgraph.num_nodes:
        return subgraph, prepared
    induced = Graph(name=subgraph.name)
    for node in sorted(vertices, key=node_sort_key):
        induced.add_node(node, **subgraph.node_attrs(node))
    for u, v, weight in subgraph.edges():
        if u in vertices and v in vertices and _edge_passes(
            subgraph, u, v, weight, predicates
        ):
            induced.add_edge(u, v, weight=weight, **subgraph.edge_attrs(u, v))
    return induced, None


def evaluate_path(
    subgraph: Graph, plan: PlanNode, prepared=None
) -> PathResult:
    """Run a compiled GPath plan against ``subgraph``."""
    nodes = chain(plan)
    base = nodes[0]
    if isinstance(base, Const):
        return PathResult(kind=base.kind, items=base.items, count=base.count)

    if not isinstance(base, Seed):
        raise InvalidArgumentError(
            f"malformed plan: expected Seed at the base, found "
            f"{type(base).__name__}"
        )
    if base.vertices is None:
        vertices: Set = set(subgraph.nodes())
    else:
        # Defensive intersection: a folded seed can outlive an edit that
        # removed a vertex between compile and execute.
        vertices = {v for v in base.vertices if subgraph.has_node(v)}
    active: Tuple[EdgePredicate, ...] = ()
    result: Optional[PathResult] = None

    for node in nodes[1:]:
        if isinstance(node, Filter):
            active = _merge(active, node.predicates)
        elif isinstance(node, Expand):
            merged = _merge(active, node.predicates)
            vertices = _expand(subgraph, vertices, node.hops, merged)
            active = merged
        elif isinstance(node, Score):
            merged = _merge(active, node.predicates)
            missing = [s for s in node.sources if s not in vertices]
            if missing:
                raise InvalidArgumentError(
                    f"rwr sources not in the selected vertex set: "
                    f"{sorted(missing, key=node_sort_key)[:5]!r}"
                )
            graph, prep = _induce(subgraph, vertices, merged, prepared)
            rwr = steady_state_rwr(
                graph, list(node.sources), restart_probability=node.restart,
                solver="power", prepared=prep,
            )
            total = len(rwr.scores)
            # A fused top(k) only needs the k best rows ranked; the full
            # sort is reserved for unlimited score listings.
            ranked = rwr.top(
                total if node.limit is None else min(node.limit, total)
            )
            result = PathResult(
                kind="scores",
                scores=tuple((n, float(s)) for n, s in ranked),
                count=total,
                iterations=rwr.iterations,
                converged=rwr.converged,
                restart_probability=rwr.restart_probability,
            )
        elif isinstance(node, Metrics):
            merged = _merge(active, node.predicates)
            graph, prep = _induce(subgraph, vertices, merged, prepared)
            suite = compute_subgraph_metrics(
                graph, prepared=prep, **_METRICS_DEFAULTS
            )
            result = PathResult(
                kind="metrics",
                count=graph.num_nodes,
                metrics=suite.as_dict(),
            )
        elif isinstance(node, Collect):
            if node.kind == "count":
                result = PathResult(kind="count", count=len(vertices))
            else:
                items = tuple(sorted(vertices, key=node_sort_key))
                total = len(items)
                if node.limit is not None:
                    items = items[: node.limit]
                result = PathResult(kind="nodes", items=items, count=total)
        elif isinstance(node, Limit):
            if result is None:
                raise InvalidArgumentError(
                    "malformed plan: Limit before any terminal"
                )
            if result.kind == "nodes":
                result = PathResult(
                    kind="nodes", items=result.items[: node.count],
                    count=result.count,
                )
            elif result.kind == "scores":
                result = PathResult(
                    kind="scores", scores=result.scores[: node.count],
                    count=result.count, iterations=result.iterations,
                    converged=result.converged,
                    restart_probability=result.restart_probability,
                )
        else:
            raise InvalidArgumentError(
                f"malformed plan: unknown node {type(node).__name__}"
            )

    if result is None:
        # A bare Seed chain (no terminal) materializes its vertices.
        items = tuple(sorted(vertices, key=node_sort_key))
        result = PathResult(kind="nodes", items=items, count=len(items))
    return result

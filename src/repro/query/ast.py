"""Typed, immutable AST for the GPath traversal language.

A GPath query is a ``/``-separated pipeline of steps over the G-Tree and
its leaf subgraphs::

    community(s0.1)/descendants/members/hops(2)/rwr(sources=[3, 7])/top(10)

Every node is a frozen dataclass carrying the :class:`Span` of source
text it was parsed from, so errors raised anywhere downstream (parsing,
compilation, evaluation) can point at the exact offending characters.
:func:`unparse` renders an AST back to canonical text; the parser and
unparser are inverses on canonical text (a property-tested invariant),
which is what lets the registry cache-key path queries by their
canonical spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

#: Community references and literals: ints, floats and bare/quoted names.
Literal = Union[int, float, str]

#: Comparison operators accepted inside ``edges[...]`` filters.
EDGE_OPS: Tuple[str, ...] = ("<=", ">=", "==", "!=", "<", ">")

#: Tree axes that take no arguments.
TREE_AXES: Tuple[str, ...] = ("descendants", "ancestors", "leaves", "members")


@dataclass(frozen=True)
class Span:
    """Half-open character range ``[start, end)`` into the source text."""

    start: int
    end: int

    def merge(self, other: "Span") -> "Span":
        return Span(min(self.start, other.start), max(self.end, other.end))


@dataclass(frozen=True)
class Step:
    """Base class: one pipeline stage with its source span."""

    span: Span


@dataclass(frozen=True)
class CommunityStep(Step):
    """``community(ref)`` — anchor the traversal at one tree node."""

    ref: Literal


@dataclass(frozen=True)
class CommunitiesStep(Step):
    """``community(a, b, ...)`` — scope the traversal to several tree nodes.

    The selection starts as the union of the referenced communities.  The
    parser canonicalizes: refs are de-duplicated and sorted (by ``repr``),
    so every spelling of the same scope shares one cache entry — and a
    sharded backend can route the compiled plan point-to-point when a
    single shard owns every referenced partition.
    """

    refs: Tuple[Literal, ...]


@dataclass(frozen=True)
class AxisStep(Step):
    """A no-argument tree axis: descendants/ancestors/leaves/members."""

    axis: str


@dataclass(frozen=True)
class HopsStep(Step):
    """``hops(k)`` — expand the vertex set by up to ``k`` BFS hops."""

    hops: int


@dataclass(frozen=True)
class EdgeFilterStep(Step):
    """``edges[attr op value]`` — restrict the active edge set."""

    attr: str
    op: str
    value: Literal


@dataclass(frozen=True)
class RwrStep(Step):
    """``rwr(sources=[...], restart=c)`` — score by steady-state RWR."""

    sources: Tuple[Literal, ...]
    restart: Optional[float]


@dataclass(frozen=True)
class MetricsStep(Step):
    """``metrics`` — compute the GMine metric suite on the selection."""


@dataclass(frozen=True)
class TopStep(Step):
    """``top(k)`` — keep the best ``k`` entries of the current result."""

    count: int


@dataclass(frozen=True)
class CountStep(Step):
    """``count`` — return the size of the current selection."""


@dataclass(frozen=True)
class NodesStep(Step):
    """``nodes`` — return the current selection itself (the default)."""


@dataclass(frozen=True)
class PathQuery:
    """A full parsed query: a non-empty tuple of steps plus its source."""

    steps: Tuple[Step, ...]
    source: str

    @property
    def span(self) -> Span:
        return self.steps[0].span.merge(self.steps[-1].span)


# --------------------------------------------------------------------- #
# unparse: AST -> canonical text
# --------------------------------------------------------------------- #

_BARE_NAME_OK = None  # compiled lazily to keep import order trivial


def _render_literal(value: Literal) -> str:
    global _BARE_NAME_OK
    if isinstance(value, bool):  # bool before int: not a GPath literal
        raise TypeError(f"cannot render {value!r} as a GPath literal")
    if isinstance(value, (int, float)):
        return repr(value)
    if _BARE_NAME_OK is None:
        import re

        _BARE_NAME_OK = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*\Z")
    if _BARE_NAME_OK.match(value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def unparse_step(step: Step) -> str:
    """Canonical text for one step."""
    if isinstance(step, CommunityStep):
        return f"community({_render_literal(step.ref)})"
    if isinstance(step, CommunitiesStep):
        refs = ", ".join(_render_literal(ref) for ref in step.refs)
        return f"community({refs})"
    if isinstance(step, AxisStep):
        return step.axis
    if isinstance(step, HopsStep):
        return f"hops({step.hops})"
    if isinstance(step, EdgeFilterStep):
        return f"edges[{step.attr} {step.op} {_render_literal(step.value)}]"
    if isinstance(step, RwrStep):
        sources = ", ".join(_render_literal(s) for s in step.sources)
        if step.restart is None:
            return f"rwr(sources=[{sources}])"
        return f"rwr(sources=[{sources}], restart={step.restart!r})"
    if isinstance(step, MetricsStep):
        return "metrics"
    if isinstance(step, TopStep):
        return f"top({step.count})"
    if isinstance(step, CountStep):
        return "count"
    if isinstance(step, NodesStep):
        return "nodes"
    raise TypeError(f"unknown GPath step {type(step).__name__}")


def unparse(query: PathQuery) -> str:
    """Render ``query`` back to its canonical source text."""
    return "/".join(unparse_step(step) for step in query.steps)

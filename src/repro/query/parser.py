"""Tokenizer + recursive-descent parser for GPath.

The grammar is deliberately tiny — one production per step kind::

    query     := step ("/" step)*
    step      := "community" "(" ref ")"
               | "descendants" | "ancestors" | "leaves" | "members"
               | "hops" "(" INT ")" | "neighbors"
               | "edges" "[" NAME cmp literal "]"
               | "rwr" "(" "sources" "=" "[" literal ("," literal)* "]"
                           ("," "restart" "=" NUMBER)? ")"
               | "metrics" | "count" | "nodes" | "top" "(" INT ")"
    ref       := INT | NAME | STRING
    cmp       := "<" | "<=" | ">" | ">=" | "==" | "!="

``neighbors`` desugars to ``hops(1)`` at parse time, and RWR source
lists are deduplicated and order-normalised, so the AST (and therefore
the canonical unparse, the compiled plan, and the cache key) is
identical for every spelling of the same query.

All failures raise :class:`~repro.errors.QueryParseError` carrying the
source text and the half-open character span of the offending token —
the wire layer forwards both to clients as structured 400 details.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import QueryParseError
from .ast import (
    AxisStep,
    CommunitiesStep,
    CommunityStep,
    CountStep,
    EdgeFilterStep,
    EDGE_OPS,
    HopsStep,
    Literal,
    MetricsStep,
    NodesStep,
    PathQuery,
    RwrStep,
    Span,
    Step,
    TopStep,
    TREE_AXES,
    unparse,
)

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<float>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+[eE][+-]?\d+)
    | (?P<int>-?\d+)
    | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
    | (?P<string>"(?:\\.|[^"\\])*")
    | (?P<op><=|>=|==|!=|<|>)
    | (?P<sym>[/()\[\],=])
    """,
    re.VERBOSE,
)

_STEP_NAMES = (
    ("community",) + TREE_AXES
    + ("hops", "neighbors", "edges", "rwr", "metrics", "top", "count", "nodes")
)


class _Token:
    __slots__ = ("kind", "text", "span")

    def __init__(self, kind: str, text: str, span: Span) -> None:
        self.kind = kind
        self.text = text
        self.span = span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind!r}, {self.text!r}, {self.span})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            if source[pos] == '"':
                raise QueryParseError(
                    "unterminated string literal",
                    source=source, start=pos, end=len(source),
                )
            raise QueryParseError(
                f"unexpected character {source[pos]!r}",
                source=source, start=pos, end=pos + 1,
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            tokens.append(_Token(kind, text, Span(pos, match.end())))
        pos = match.end()
    tokens.append(_Token("eof", "", Span(len(source), len(source))))
    return tokens


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- #
    # token helpers
    # ------------------------------------------------------------- #

    def _peek(self) -> _Token:
        return self.tokens[self.pos]

    def _next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _error(self, message: str, token: _Token) -> QueryParseError:
        return QueryParseError(
            message, source=self.source,
            start=token.span.start, end=token.span.end,
        )

    def _expect_sym(self, symbol: str, what: str) -> _Token:
        token = self._peek()
        if token.kind != "sym" or token.text != symbol:
            found = (
                "end of query" if token.kind == "eof" else repr(token.text)
            )
            raise self._error(f"expected {what}, found {found}", token)
        return self._next()

    def _expect_name(self, what: str) -> _Token:
        token = self._peek()
        if token.kind != "name":
            raise self._error(f"expected {what}", token)
        return self._next()

    def _expect_int(self, what: str) -> Tuple[int, _Token]:
        token = self._peek()
        if token.kind != "int":
            raise self._error(f"expected {what}", token)
        self._next()
        return int(token.text), token

    def _literal(self, what: str, kinds=("int", "float", "name", "string")):
        token = self._peek()
        if token.kind not in kinds:
            raise self._error(f"expected {what}", token)
        self._next()
        value: Literal
        if token.kind == "int":
            value = int(token.text)
        elif token.kind == "float":
            value = float(token.text)
        elif token.kind == "string":
            value = _unquote(token.text)
        else:
            value = token.text
        return value, token

    # ------------------------------------------------------------- #
    # grammar
    # ------------------------------------------------------------- #

    def parse(self) -> PathQuery:
        steps = [self._step()]
        while True:
            token = self._peek()
            if token.kind == "sym" and token.text == "/":
                self._next()
                steps.append(self._step())
                continue
            if token.kind == "eof":
                break
            raise self._error(
                f"expected '/' between steps, found {token.text!r}", token
            )
        query = PathQuery(steps=tuple(steps), source=self.source)
        self._check_structure(query)
        return query

    def _step(self) -> Step:
        token = self._peek()
        if token.kind != "name":
            what = "a step name" if token.kind != "eof" else "another step"
            raise self._error(f"expected {what}", token)
        name = token.text
        if name not in _STEP_NAMES:
            raise self._error(
                f"unknown step {name!r} (valid steps: "
                + ", ".join(_STEP_NAMES) + ")",
                token,
            )
        self._next()
        if name == "community":
            return self._community(token)
        if name in TREE_AXES:
            return AxisStep(span=token.span, axis=name)
        if name == "hops":
            return self._hops(token)
        if name == "neighbors":
            return HopsStep(span=token.span, hops=1)
        if name == "edges":
            return self._edges(token)
        if name == "rwr":
            return self._rwr(token)
        if name == "top":
            return self._top(token)
        if name == "metrics":
            return MetricsStep(span=token.span)
        if name == "count":
            return CountStep(span=token.span)
        return NodesStep(span=token.span)

    def _community(self, head: _Token) -> Step:
        self._expect_sym("(", "'(' after community")
        refs = []
        ref, _ = self._literal(
            "a community id, label, or quoted string",
            kinds=("int", "name", "string"),
        )
        refs.append(ref)
        while self._peek().kind == "sym" and self._peek().text == ",":
            self._next()
            ref, _ = self._literal(
                "a community id, label, or quoted string",
                kinds=("int", "name", "string"),
            )
            refs.append(ref)
        close = self._expect_sym(")", "')' after the community reference")
        span = head.span.merge(close.span)
        # Canonicalize multi-community scopes: de-duplicate and sort the
        # refs (by repr, matching rwr source canonicalization) so every
        # spelling of the same scope unparses — and cache-keys — the same.
        unique = sorted(set(refs), key=repr)
        if len(unique) == 1:
            return CommunityStep(span=span, ref=unique[0])
        return CommunitiesStep(span=span, refs=tuple(unique))

    def _hops(self, head: _Token) -> HopsStep:
        self._expect_sym("(", "'(' after hops")
        count, token = self._expect_int("a hop count")
        if count < 1:
            raise self._error("hops(k) requires k >= 1", token)
        close = self._expect_sym(")", "')' after the hop count")
        return HopsStep(span=head.span.merge(close.span), hops=count)

    def _top(self, head: _Token) -> TopStep:
        self._expect_sym("(", "'(' after top")
        count, token = self._expect_int("a result count")
        if count < 1:
            raise self._error("top(k) requires k >= 1", token)
        close = self._expect_sym(")", "')' after the result count")
        return TopStep(span=head.span.merge(close.span), count=count)

    def _edges(self, head: _Token) -> EdgeFilterStep:
        self._expect_sym("[", "'[' after edges")
        attr = self._expect_name("an edge attribute name")
        op_token = self._peek()
        if op_token.kind != "op" or op_token.text not in EDGE_OPS:
            raise self._error(
                "expected a comparison operator "
                "(<, <=, >, >=, ==, !=)", op_token,
            )
        self._next()
        value, _ = self._literal("a literal to compare against")
        close = self._peek()
        if close.kind != "sym" or close.text != "]":
            raise self._error("expected ']' to close the edge filter", close)
        self._next()
        return EdgeFilterStep(
            span=head.span.merge(close.span),
            attr=attr.text, op=op_token.text, value=value,
        )

    def _rwr(self, head: _Token) -> RwrStep:
        self._expect_sym("(", "'(' after rwr")
        keyword = self._expect_name("'sources='")
        if keyword.text != "sources":
            raise self._error("rwr(...) requires a sources=[...] list", keyword)
        self._expect_sym("=", "'=' after sources")
        self._expect_sym("[", "'[' to open the source list")
        sources: List[Literal] = []
        if not (self._peek().kind == "sym" and self._peek().text == "]"):
            while True:
                value, _ = self._literal("a source vertex")
                sources.append(value)
                token = self._peek()
                if token.kind == "sym" and token.text == ",":
                    self._next()
                    continue
                break
        bracket = self._peek()
        if bracket.kind != "sym" or bracket.text != "]":
            raise self._error("expected ']' to close the source list", bracket)
        self._next()
        if not sources:
            raise self._error("rwr(...) requires at least one source", bracket)
        restart: Optional[float] = None
        token = self._peek()
        if token.kind == "sym" and token.text == ",":
            self._next()
            keyword = self._expect_name("'restart='")
            if keyword.text != "restart":
                raise self._error(
                    "the only rwr option besides sources is restart=", keyword
                )
            self._expect_sym("=", "'=' after restart")
            value, value_token = self._literal(
                "a restart probability", kinds=("int", "float")
            )
            restart = float(value)
            if not 0.0 < restart < 1.0:
                raise self._error(
                    "restart must be strictly between 0 and 1", value_token
                )
        close = self._expect_sym(")", "')' to close rwr(...)")
        # Dedup + order-normalise: the restart vector is uniform over the
        # set, so every spelling of one source set is one canonical query.
        canonical = tuple(sorted(set(sources), key=repr))
        return RwrStep(
            span=head.span.merge(close.span),
            sources=canonical, restart=restart,
        )

    # ------------------------------------------------------------- #
    # structural validation (phases + terminal placement)
    # ------------------------------------------------------------- #

    def _structure_error(self, message: str, step: Step) -> QueryParseError:
        return QueryParseError(
            message, source=self.source,
            start=step.span.start, end=step.span.end,
        )

    def _check_structure(self, query: PathQuery) -> None:
        steps = query.steps
        last = len(steps) - 1
        in_tree = True
        for index, step in enumerate(steps):
            if isinstance(step, (CommunityStep, CommunitiesStep)):
                if index != 0:
                    raise self._structure_error(
                        "community(...) is only valid as the first step", step
                    )
            elif isinstance(step, AxisStep):
                if not in_tree:
                    raise self._structure_error(
                        f"tree axis {step.axis!r} is not valid after graph "
                        "steps (the selection is already vertices)", step,
                    )
                if step.axis == "members":
                    in_tree = False
            elif isinstance(step, (HopsStep, EdgeFilterStep)):
                in_tree = False  # implicit members conversion
            elif isinstance(step, RwrStep):
                rest = steps[index + 1:]
                if rest and not (
                    len(rest) == 1 and isinstance(rest[0], TopStep)
                ):
                    raise self._structure_error(
                        "rwr(...) may only be followed by top(k)", rest[0]
                    )
                in_tree = False
            elif isinstance(step, (MetricsStep, CountStep, NodesStep,
                                   TopStep)):
                if index != last:
                    raise self._structure_error(
                        f"'{unparse_name(step)}' must be the final step", step
                    )


def unparse_name(step: Step) -> str:
    """The bare spelling of a terminal, for error messages."""
    if isinstance(step, MetricsStep):
        return "metrics"
    if isinstance(step, CountStep):
        return "count"
    if isinstance(step, NodesStep):
        return "nodes"
    if isinstance(step, TopStep):
        return f"top({step.count})"
    return type(step).__name__


def parse(source: str) -> PathQuery:
    """Parse ``source`` into a :class:`PathQuery` (or raise with a span)."""
    if not isinstance(source, str):
        raise QueryParseError(
            f"a GPath query must be a string, not {type(source).__name__}"
        )
    if not source.strip():
        raise QueryParseError(
            "empty query", source=source, start=0, end=len(source)
        )
    return _Parser(source).parse()


def canonical_text(source: str) -> str:
    """Parse + unparse: one canonical spelling per query."""
    return unparse(parse(source))

"""GPath: a declarative traversal language over the G-Tree.

Parse → compile → evaluate, each stage pure and separately testable:

* :func:`parse` / :func:`unparse` — text ⇄ typed immutable AST with
  source spans (:mod:`.ast`, :mod:`.parser`);
* :func:`compile_query` — AST + G-Tree → normalized chain of picklable
  plan nodes with the touched partition constant-folded out
  (:mod:`.compiler`, :mod:`.plan`);
* :func:`evaluate_path` — plan + subgraph → :class:`PathResult`, the
  body of the ``query.path`` kernel (:mod:`.evaluate`).

This package never imports from :mod:`repro.api` or
:mod:`repro.service`; the registry wires it in, not the reverse.
"""

from .ast import PathQuery, Span, unparse
from .compiler import CompiledPath, compile_query, lower, normalize
from .evaluate import PathResult, evaluate_path
from .parser import canonical_text, parse

__all__ = [
    "CompiledPath",
    "PathQuery",
    "PathResult",
    "Span",
    "canonical_text",
    "compile_query",
    "evaluate_path",
    "lower",
    "normalize",
    "parse",
    "unparse",
]

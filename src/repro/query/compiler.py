"""Compile GPath ASTs to plan chains, with tree folding and fusion.

Compilation happens inside the registry's ``finalize`` hook, where the
dataset's G-Tree is available (via ``CanonicalizationContext.tree``), so
everything navigational is resolved *before* the plan reaches a backend:

* **tree folding** — ``community(X)/descendants/members`` becomes a
  concrete vertex tuple (or ``Seed(None)`` when the selection is the
  whole scope); tree-level terminals fold to :class:`~.plan.Const`.
* **scope constant-folding** — a query that anchors at ``community(X)``
  and never leaves its subtree (descendant-closed axes, no expansion)
  compiles with ``community=X``, so the service keys its cache entry by
  that partition's Merkle sub-fingerprint and executes the kernel on the
  community subgraph (prepared views included) — exactly like any other
  community-scoped op.  Expansion steps and ``ancestors`` can escape the
  subtree, so they widen the scope to the root graph with an explicit
  folded seed set.
* **normalization/fusion** — ``Filter`` predicates are pushed into every
  ``Expand``/``Score``/``Metrics`` above them and ``Limit`` fuses into
  ``Score.limit``/``Collect.limit``, leaving the minimal chain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Set, Tuple

from ..errors import InvalidArgumentError, NavigationError
from ..mining.rwr import node_sort_key
from .ast import (
    AxisStep,
    CommunitiesStep,
    CommunityStep,
    CountStep,
    EdgeFilterStep,
    HopsStep,
    MetricsStep,
    NodesStep,
    PathQuery,
    RwrStep,
    TopStep,
)
from .plan import (
    Collect,
    Const,
    EdgePredicate,
    Expand,
    Filter,
    Limit,
    Metrics,
    PlanNode,
    Score,
    Seed,
)

#: Matches the registry's ``dataset.rwr`` default restart probability.
DEFAULT_RESTART = 0.15


@dataclass(frozen=True)
class CompiledPath:
    """A lowered + normalized plan plus its constant-folded scope.

    ``communities`` is populated only for multi-community scopes
    (``community(a, b)/...``): the canonical labels of every referenced
    partition.  Such queries compile with ``community=None`` (their union
    is not one partition), but the labels let a sharded backend route the
    plan point-to-point when one shard owns them all.
    """

    plan: PlanNode
    community: Optional[str]
    communities: Tuple[str, ...] = ()


def _subtree(tree, node, include_self: bool):
    """Nodes of ``node``'s subtree in deterministic preorder."""
    result = []
    stack = [node]
    while stack:
        current = stack.pop()
        if include_self or current.node_id != node.node_id:
            result.append(current)
        stack.extend(reversed(tree.children(current.node_id)))
    return result


def _resolve_community(tree, step: CommunityStep):
    return _resolve_ref(tree, step.ref)


def _resolve_ref(tree, ref):
    if isinstance(ref, int):
        if tree.has_node(ref):
            return tree.node(ref)
        raise NavigationError(f"no community with tree-node id {ref}")
    label = str(ref)
    if tree.has_label(label):
        return tree.by_label(label)
    raise NavigationError(f"no community labelled {label!r}")


def _dedupe(nodes):
    seen: Set[int] = set()
    result = []
    for node in nodes:
        if node.node_id not in seen:
            seen.add(node.node_id)
            result.append(node)
    return result


def lower(query: PathQuery, tree) -> CompiledPath:
    """Fold tree navigation and emit the naive (un-fused) plan chain."""
    if tree is None:
        raise InvalidArgumentError(
            "query.path requires a dataset tree to compile against"
        )
    selection = [tree.root]
    anchored: Optional[str] = None
    communities: Tuple[str, ...] = ()
    closed = True          # only descendant-closed axes so far
    expanded = False       # any hops/neighbors step
    vertices: Optional[Set] = None
    chain: Optional[PlanNode] = None
    steps: List[PlanNode] = []
    terminal = None

    def to_vertices() -> Set:
        nonlocal vertices
        if vertices is None:
            vertices = set()
            for node in selection:
                vertices.update(node.members)
        return vertices

    for step in query.steps:
        if isinstance(step, CommunityStep):
            node = _resolve_community(tree, step)
            selection = [node]
            anchored = node.label
        elif isinstance(step, CommunitiesStep):
            selection = _dedupe(
                _resolve_ref(tree, ref) for ref in step.refs
            )
            # The union of several communities is not one partition, so the
            # scope cannot constant-fold (anchored stays None); record the
            # labels so the sharded backend can still route point-to-point.
            communities = tuple(
                sorted(node.label for node in selection)
            )
        elif isinstance(step, AxisStep):
            if step.axis == "descendants":
                selection = _dedupe(
                    n for node in selection
                    for n in _subtree(tree, node, include_self=False)
                )
            elif step.axis == "ancestors":
                selection = _dedupe(
                    ancestor for node in selection
                    for ancestor in tree.ancestors(node.node_id)
                )
                closed = False  # ancestors escape the anchored subtree
            elif step.axis == "leaves":
                selection = _dedupe(
                    n for node in selection
                    for n in _subtree(tree, node, include_self=True)
                    if n.is_leaf
                )
            else:  # members
                to_vertices()
        elif isinstance(step, EdgeFilterStep):
            to_vertices()
            steps.append(("filter", EdgePredicate(
                attr=step.attr, op=step.op, value=step.value,
            )))
        elif isinstance(step, HopsStep):
            to_vertices()
            expanded = True
            steps.append(("expand", step.hops))
        elif isinstance(step, RwrStep):
            to_vertices()
            restart = DEFAULT_RESTART if step.restart is None else step.restart
            terminal = ("score", step.sources, restart)
        elif isinstance(step, MetricsStep):
            to_vertices()
            terminal = ("metrics",)
        elif isinstance(step, TopStep):
            if terminal is None:
                to_vertices()
                terminal = ("collect", "nodes")
            terminal = terminal + ("limit", step.count)
        elif isinstance(step, CountStep):
            terminal = ("count",)
        elif isinstance(step, NodesStep):
            terminal = ("nodes",)

    # Tree-level terminals: the whole query folds to a constant.
    if vertices is None:
        kind = "count" if terminal == ("count",) else "nodes"
        labels = tuple(sorted(node.label for node in selection))
        scope = anchored if (anchored and closed) else None
        const = Const(
            kind=kind,
            items=labels if kind == "nodes" else (),
            count=len(selection),
        )
        # Const plans are answered in the parent for free; no need to
        # carry multi-community routing hints on them.
        return CompiledPath(plan=const, community=scope)

    # Vertex-level plan: decide scope, then seed relative to it.
    scope_node = None
    if anchored is not None and closed and not expanded:
        scope_node = tree.by_label(anchored)
    base_members = set(
        scope_node.members if scope_node is not None else tree.root.members
    )
    if vertices == base_members:
        seed: Optional[Tuple] = None
    else:
        seed = tuple(sorted(vertices, key=node_sort_key))
    chain = Seed(vertices=seed)
    for kind, payload in steps:
        if kind == "filter":
            chain = Filter(child=chain, predicates=(payload,))
        else:
            chain = Expand(child=chain, hops=payload)

    if terminal is None:
        terminal = ("nodes",)
    head, rest = terminal[0], terminal[1:]
    if head == "score":
        sources, restart = rest[0], rest[1]
        chain = Score(child=chain, sources=tuple(sources), restart=restart)
        if len(rest) > 2:  # ("score", sources, restart, "limit", k)
            chain = Limit(child=chain, count=rest[3])
    elif head == "metrics":
        chain = Metrics(child=chain)
    elif head == "collect":
        chain = Collect(child=chain, kind="nodes")
        if len(rest) > 1:  # ("collect", "nodes", "limit", k)
            chain = Limit(child=chain, count=rest[2])
    elif head == "count":
        chain = Collect(child=chain, kind="count")
    else:  # nodes
        chain = Collect(child=chain, kind="nodes")
    return CompiledPath(
        plan=chain,
        community=scope_node.label if scope_node is not None else None,
        communities=communities,
    )


def normalize(plan: PlanNode) -> PlanNode:
    """Fuse the lowered chain: no ``Filter``/``Limit`` nodes survive."""

    def walk(node: PlanNode) -> Tuple[PlanNode, Tuple[EdgePredicate, ...]]:
        if isinstance(node, (Seed, Const)):
            return node, ()
        if isinstance(node, Filter):
            child, active = walk(node.child)
            return child, active + node.predicates
        if isinstance(node, Expand):
            child, active = walk(node.child)
            merged = active + node.predicates
            return replace(node, child=child, predicates=merged), merged
        if isinstance(node, Score):
            child, active = walk(node.child)
            merged = active + node.predicates
            return replace(node, child=child, predicates=merged), active
        if isinstance(node, Metrics):
            child, active = walk(node.child)
            merged = active + node.predicates
            return replace(node, child=child, predicates=merged), active
        if isinstance(node, Collect):
            child, active = walk(node.child)
            return replace(node, child=child), active
        if isinstance(node, Limit):
            child, active = walk(node.child)
            if isinstance(child, Score):
                fused = node.count if child.limit is None \
                    else min(child.limit, node.count)
                return replace(child, limit=fused), active
            if isinstance(child, Collect):
                fused = node.count if child.limit is None \
                    else min(child.limit, node.count)
                return replace(child, limit=fused), active
            return replace(node, child=child), active
        raise TypeError(f"unknown plan node {type(node).__name__}")

    normalized, _ = walk(plan)
    return normalized


def compile_query(query: PathQuery, tree) -> CompiledPath:
    """Lower + normalize: the compiled form the ``query.path`` op executes."""
    lowered = lower(query, tree)
    return replace(lowered, plan=normalize(lowered.plan))

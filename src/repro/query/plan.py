"""Pure, picklable plan nodes that GPath queries compile to.

The plan algebra is a straight-line chain (every node holds one child)
because GPath pipelines are linear; keeping the nodes frozen dataclasses
gives three properties the service relies on:

* **picklable** — process backends ship plans to warm workers unchanged;
* **deterministic repr** — the registry's ``_hashable`` fallback reprs
  unknown argument values, so one canonical plan is one cache key;
* **pure data** — a plan never holds a graph or tree reference; all tree
  navigation is constant-folded into ``Seed``/``Const`` at compile time,
  which is what lets community-scoped queries key their cache entries by
  partition sub-fingerprint.

``lower()`` (in :mod:`.compiler`) emits ``Filter`` and ``Limit`` nodes
verbatim; ``normalize()`` dissolves them — filter predicates are pushed
into every ``Expand``/``Score``/``Metrics`` above them, and limits fuse
into ``Score.limit``/``Collect.limit`` — so a normalized plan is the
minimal chain the evaluator walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class EdgePredicate:
    """One ``edges[attr op value]`` clause; ``weight`` reads edge weight."""

    attr: str
    op: str
    value: Any


@dataclass(frozen=True)
class PlanNode:
    """Base class for GPath plan nodes (a marker, not an interface)."""


@dataclass(frozen=True)
class Seed(PlanNode):
    """The starting vertex set.

    ``vertices=None`` means *every vertex of the materialized scope* —
    the common case after scope constant-folding, where the community
    subgraph the kernel receives already is the selection.
    """

    vertices: Optional[Tuple[Any, ...]] = None


@dataclass(frozen=True)
class Const(PlanNode):
    """A fully folded tree-level result (``descendants/nodes`` etc.)."""

    kind: str  # "nodes" | "count"
    items: Tuple[Any, ...] = ()
    count: int = 0


@dataclass(frozen=True)
class Filter(PlanNode):
    """Restrict the active edge set from this point on (lowered form)."""

    child: PlanNode
    predicates: Tuple[EdgePredicate, ...]


@dataclass(frozen=True)
class Expand(PlanNode):
    """Multi-source BFS of up to ``hops`` hops over the active edges."""

    child: PlanNode
    hops: int
    predicates: Tuple[EdgePredicate, ...] = ()


@dataclass(frozen=True)
class Score(PlanNode):
    """Steady-state RWR over the induced subgraph of the selection."""

    child: PlanNode
    sources: Tuple[Any, ...]
    restart: float
    limit: Optional[int] = None
    predicates: Tuple[EdgePredicate, ...] = ()


@dataclass(frozen=True)
class Metrics(PlanNode):
    """The GMine metric suite over the induced subgraph."""

    child: PlanNode
    predicates: Tuple[EdgePredicate, ...] = ()


@dataclass(frozen=True)
class Collect(PlanNode):
    """Materialize the selection: its sorted vertices or their count."""

    child: PlanNode
    kind: str  # "nodes" | "count"
    limit: Optional[int] = None


@dataclass(frozen=True)
class Limit(PlanNode):
    """Truncate the child's result to ``count`` entries (lowered form)."""

    child: PlanNode
    count: int


def chain(plan: PlanNode) -> Tuple[PlanNode, ...]:
    """The plan as a bottom-up tuple: ``(Seed|Const, ..., terminal)``."""
    nodes = []
    node: Optional[PlanNode] = plan
    while node is not None:
        nodes.append(node)
        node = getattr(node, "child", None)
    return tuple(reversed(nodes))

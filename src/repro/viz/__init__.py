"""Headless visualization: layouts, scene graph, SVG rendering, viewport.

The original GMine is an interactive GUI; this package reproduces its
display states (nested community views, subgraph drawings, extraction
views) as SVG documents built from a small retained-mode scene graph, so
every figure of the paper can be regenerated programmatically.
"""

from .color import (
    categorical_color,
    darken,
    hex_to_rgb,
    level_palette,
    lighten,
    rgb_to_hex,
    sequential_color,
)
from .geometry import Point, Rect, bounding_box, polar
from .layout import (
    circular_layout,
    fruchterman_reingold_layout,
    grid_layout,
    layout_by_name,
    radial_community_layout,
    random_layout,
    spectral_layout,
)
from .render import render_full_expansion, render_subgraph, render_tomahawk_view
from .scene import Circle, Line, Rectangle, Scene, Shape, Text
from .tree_diagram import render_gtree_diagram, render_tomahawk_diagram
from .svg import scene_to_svg, write_svg
from .viewport import Viewport

__all__ = [
    "Circle",
    "Line",
    "Point",
    "Rect",
    "Rectangle",
    "Scene",
    "Shape",
    "Text",
    "Viewport",
    "bounding_box",
    "categorical_color",
    "circular_layout",
    "darken",
    "fruchterman_reingold_layout",
    "grid_layout",
    "hex_to_rgb",
    "layout_by_name",
    "level_palette",
    "lighten",
    "polar",
    "radial_community_layout",
    "random_layout",
    "render_full_expansion",
    "render_gtree_diagram",
    "render_subgraph",
    "render_tomahawk_diagram",
    "render_tomahawk_view",
    "rgb_to_hex",
    "scene_to_svg",
    "sequential_color",
    "spectral_layout",
    "write_svg",
]

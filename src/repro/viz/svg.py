"""SVG rendering backend for :class:`~repro.viz.scene.Scene`.

The original GMine is an interactive OpenGL/Qt application; the figures in
the paper are static captures of its display.  This headless reproduction
renders each display state to SVG, which needs no external libraries, diffs
cleanly in tests, and can be opened in any browser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union
from xml.sax.saxutils import escape, quoteattr

from .scene import Circle, Line, Rectangle, Scene, Text

PathLike = Union[str, Path]


def _style(shape) -> str:
    """Render the common style attributes of a shape."""
    parts = [
        f'fill="{shape.fill}"',
        f'stroke="{shape.stroke}"',
        f'stroke-width="{shape.stroke_width:g}"',
    ]
    if shape.opacity != 1.0:
        parts.append(f'opacity="{shape.opacity:g}"')
    return " ".join(parts)


def _title(shape) -> str:
    """Render the optional tooltip as an SVG <title> child."""
    if not shape.tooltip:
        return ""
    return f"<title>{escape(shape.tooltip)}</title>"


def scene_to_svg(scene: Scene) -> str:
    """Serialize a scene to an SVG document string."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{scene.width:g}" height="{scene.height:g}" '
            f'viewBox="0 0 {scene.width:g} {scene.height:g}">'
        ),
    ]
    if scene.title:
        lines.append(f"<title>{escape(scene.title)}</title>")
    lines.append('<rect width="100%" height="100%" fill="#ffffff"/>')
    for shape in scene.shapes():
        if isinstance(shape, Circle):
            lines.append(
                f'<circle cx="{shape.center.x:.2f}" cy="{shape.center.y:.2f}" '
                f'r="{shape.radius:.2f}" {_style(shape)}>{_title(shape)}</circle>'
            )
        elif isinstance(shape, Rectangle):
            rect = shape.rect
            rounding = f' rx="{shape.corner_radius:.2f}"' if shape.corner_radius else ""
            lines.append(
                f'<rect x="{rect.x:.2f}" y="{rect.y:.2f}" '
                f'width="{rect.width:.2f}" height="{rect.height:.2f}"{rounding} '
                f'{_style(shape)}>{_title(shape)}</rect>'
            )
        elif isinstance(shape, Line):
            lines.append(
                f'<line x1="{shape.start.x:.2f}" y1="{shape.start.y:.2f}" '
                f'x2="{shape.end.x:.2f}" y2="{shape.end.y:.2f}" '
                f'stroke="{shape.stroke if shape.stroke != "none" else shape.fill}" '
                f'stroke-width="{shape.stroke_width:g}" opacity="{shape.opacity:g}">'
                f'{_title(shape)}</line>'
            )
        elif isinstance(shape, Text):
            lines.append(
                f'<text x="{shape.position.x:.2f}" y="{shape.position.y:.2f}" '
                f'font-size="{shape.font_size:g}" text-anchor={quoteattr(shape.anchor)} '
                f'fill="{shape.fill}" font-family="sans-serif">'
                f"{escape(shape.content)}</text>"
            )
    lines.append("</svg>")
    return "\n".join(lines)


def write_svg(scene: Scene, path: PathLike) -> Path:
    """Write the scene to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(scene_to_svg(scene), encoding="utf-8")
    return path

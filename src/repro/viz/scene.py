"""A tiny retained-mode scene graph.

Renderers build a :class:`Scene` of primitive shapes (circles, rectangles,
lines, text) and hand it to the SVG backend.  Keeping an intermediate scene
— instead of writing SVG strings directly — lets tests count and inspect the
visual items produced by a view (the clutter benchmarks literally count
scene items) and keeps the geometry/visual-encoding logic separate from the
output format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .geometry import Point, Rect


@dataclass
class Shape:
    """Base class for scene items; carries style and an optional tooltip."""

    fill: str = "#000000"
    stroke: str = "none"
    stroke_width: float = 1.0
    opacity: float = 1.0
    tooltip: Optional[str] = None
    layer: int = 0


@dataclass
class Circle(Shape):
    """A filled circle (graph vertex or collapsed community glyph)."""

    center: Point = field(default_factory=lambda: Point(0.0, 0.0))
    radius: float = 3.0


@dataclass
class Rectangle(Shape):
    """A rectangle (community container region)."""

    rect: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 1.0, 1.0))
    corner_radius: float = 0.0


@dataclass
class Line(Shape):
    """A straight line segment (graph edge or connectivity edge)."""

    start: Point = field(default_factory=lambda: Point(0.0, 0.0))
    end: Point = field(default_factory=lambda: Point(1.0, 1.0))


@dataclass
class Text(Shape):
    """A text label anchored at a point."""

    position: Point = field(default_factory=lambda: Point(0.0, 0.0))
    content: str = ""
    font_size: float = 12.0
    anchor: str = "middle"


class Scene:
    """An ordered collection of shapes plus the canvas size."""

    def __init__(self, width: float = 1000.0, height: float = 1000.0, title: str = "") -> None:
        self.width = width
        self.height = height
        self.title = title
        self._shapes: List[Shape] = []

    def add(self, shape: Shape) -> None:
        """Append a shape to the scene."""
        self._shapes.append(shape)

    def extend(self, shapes: List[Shape]) -> None:
        """Append several shapes."""
        self._shapes.extend(shapes)

    def shapes(self) -> List[Shape]:
        """Return shapes sorted by layer (stable within a layer)."""
        return sorted(self._shapes, key=lambda shape: shape.layer)

    def __len__(self) -> int:
        return len(self._shapes)

    def __iter__(self) -> Iterator[Shape]:
        return iter(self.shapes())

    def count_by_type(self) -> dict:
        """Return ``{'circle': n, 'rectangle': n, 'line': n, 'text': n}``."""
        counts = {"circle": 0, "rectangle": 0, "line": 0, "text": 0}
        for shape in self._shapes:
            if isinstance(shape, Circle):
                counts["circle"] += 1
            elif isinstance(shape, Rectangle):
                counts["rectangle"] += 1
            elif isinstance(shape, Line):
                counts["line"] += 1
            elif isinstance(shape, Text):
                counts["text"] += 1
        return counts

    def visual_item_count(self) -> int:
        """Number of drawable items — the clutter measure used by benchmarks."""
        return len(self._shapes)

"""Graph layout algorithms.

The GMine display places conventional nodes inside their community regions
and community nodes inside their parent region.  The layouts here supply the
coordinates:

* :func:`circular_layout` — vertices on a circle (cheap, deterministic),
* :func:`fruchterman_reingold_layout` — force-directed layout for subgraph
  views (what the screenshots of figures 5 and 6 resemble),
* :func:`spectral_layout` — coordinates from Laplacian eigenvectors,
* :func:`grid_layout` — regular grid (fallback and baseline),
* :func:`radial_community_layout` — children of a community placed on a ring
  inside the parent's rectangle, used by the nested G-Tree view.

All functions return ``{vertex: Point}`` within a caller-supplied bounding
rectangle, and all are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import LayoutError
from ..graph.graph import Graph, NodeId
from ..graph.matrix import combinatorial_laplacian
from .geometry import Point, Rect, polar

Positions = Dict[NodeId, Point]
DEFAULT_RECT = Rect(0.0, 0.0, 1000.0, 1000.0)


def _fit_to_rect(raw: Dict[NodeId, tuple], rect: Rect, margin_fraction: float = 0.05) -> Positions:
    """Scale raw coordinates to fill ``rect`` (preserving aspect ratio-ish)."""
    if not raw:
        return {}
    xs = [coordinate[0] for coordinate in raw.values()]
    ys = [coordinate[1] for coordinate in raw.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-12)
    span_y = max(max_y - min_y, 1e-12)
    inner = rect.inset(min(rect.width, rect.height) * margin_fraction)
    positions: Positions = {}
    for node, (x, y) in raw.items():
        positions[node] = Point(
            inner.x + (x - min_x) / span_x * inner.width,
            inner.y + (y - min_y) / span_y * inner.height,
        )
    return positions


def circular_layout(graph: Graph, rect: Rect = DEFAULT_RECT) -> Positions:
    """Place vertices evenly on a circle inscribed in ``rect``."""
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    center = rect.center
    radius = 0.45 * min(rect.width, rect.height)
    positions: Positions = {}
    for position, node in enumerate(nodes):
        angle = 2.0 * math.pi * position / n
        positions[node] = polar(center, radius, angle)
    return positions


def grid_layout(graph: Graph, rect: Rect = DEFAULT_RECT) -> Positions:
    """Place vertices on a near-square grid inside ``rect``."""
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    cells = list(rect.inset(min(rect.width, rect.height) * 0.05).subdivide_grid(len(nodes)))
    return {node: cell.center for node, cell in zip(nodes, cells)}


def random_layout(graph: Graph, rect: Rect = DEFAULT_RECT, seed: Optional[int] = 0) -> Positions:
    """Place vertices uniformly at random inside ``rect`` (deterministic seed)."""
    rng = random.Random(seed if seed is not None else 0)
    inner = rect.inset(min(rect.width, rect.height) * 0.05)
    return {
        node: Point(inner.x + rng.random() * inner.width, inner.y + rng.random() * inner.height)
        for node in graph.nodes()
    }


def fruchterman_reingold_layout(
    graph: Graph,
    rect: Rect = DEFAULT_RECT,
    iterations: int = 80,
    seed: Optional[int] = 0,
    initial: Optional[Positions] = None,
) -> Positions:
    """Force-directed layout (Fruchterman–Reingold) fitted into ``rect``.

    Runs on NumPy arrays with the full pairwise repulsion, so it is intended
    for the subgraph views GMine actually draws (tens to a few thousand
    vertices), not the entire input graph.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    if n == 1:
        return {nodes[0]: rect.center}
    index = {node: position for position, node in enumerate(nodes)}
    rng = np.random.default_rng(seed if seed is not None else 0)
    if initial:
        coordinates = np.array(
            [
                [initial[node].x, initial[node].y]
                if node in initial
                else [rng.random(), rng.random()]
                for node in nodes
            ],
            dtype=float,
        )
    else:
        coordinates = rng.random((n, 2))

    area = 1.0
    k = math.sqrt(area / n)  # ideal edge length in unit space
    temperature = 0.1
    cooling = temperature / (iterations + 1)

    # Edge arrays for attraction.
    edge_u = []
    edge_v = []
    edge_w = []
    for u, v, w in graph.edges():
        if u == v:
            continue
        edge_u.append(index[u])
        edge_v.append(index[v])
        edge_w.append(w)
    edge_u = np.asarray(edge_u, dtype=int)
    edge_v = np.asarray(edge_v, dtype=int)
    edge_w = np.asarray(edge_w, dtype=float)

    for _ in range(iterations):
        delta = coordinates[:, None, :] - coordinates[None, :, :]
        distance = np.linalg.norm(delta, axis=-1)
        np.fill_diagonal(distance, 1.0)
        distance = np.maximum(distance, 1e-9)
        # Repulsion between every pair.
        repulsion = (k * k) / distance
        displacement = (delta / distance[..., None] * repulsion[..., None]).sum(axis=1)
        # Attraction along edges.
        if len(edge_u):
            edge_delta = coordinates[edge_u] - coordinates[edge_v]
            edge_distance = np.maximum(np.linalg.norm(edge_delta, axis=1), 1e-9)
            attraction = (edge_distance ** 2) / k * np.maximum(edge_w, 0.1)
            force = edge_delta / edge_distance[:, None] * attraction[:, None]
            np.add.at(displacement, edge_u, -force)
            np.add.at(displacement, edge_v, force)
        length = np.maximum(np.linalg.norm(displacement, axis=1), 1e-9)
        coordinates += displacement / length[:, None] * np.minimum(length, temperature)[:, None]
        temperature = max(temperature - cooling, 1e-4)

    raw = {node: (coordinates[index[node], 0], coordinates[index[node], 1]) for node in nodes}
    return _fit_to_rect(raw, rect)


def spectral_layout(graph: Graph, rect: Rect = DEFAULT_RECT) -> Positions:
    """Layout from the 2nd and 3rd smallest Laplacian eigenvectors.

    Falls back to a circular layout when the eigen-solver cannot produce two
    usable vectors (tiny or degenerate graphs).
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 4:
        return circular_layout(graph, rect)
    try:
        from scipy.sparse.linalg import eigsh

        laplacian, index = combinatorial_laplacian(graph)
        values, vectors = eigsh(laplacian.asfptype(), k=3, sigma=-1e-6, which="LM")
        order = np.argsort(values)
        coords_x = vectors[:, order[1]]
        coords_y = vectors[:, order[2]]
    except Exception:
        return circular_layout(graph, rect)
    raw = {
        index.node_at(i): (float(coords_x[i]), float(coords_y[i])) for i in range(n)
    }
    return _fit_to_rect(raw, rect)


def radial_community_layout(
    labels: Sequence[str], rect: Rect = DEFAULT_RECT
) -> Dict[str, Rect]:
    """Assign each child community a sub-rectangle on a ring inside ``rect``.

    Returns a rectangle (not a point) per label because communities are drawn
    as containers that their own content is laid out inside — the nested
    presentation of figures 3 and 6.
    """
    count = len(labels)
    if count == 0:
        return {}
    if count == 1:
        return {labels[0]: rect.inset(min(rect.width, rect.height) * 0.1)}
    center = rect.center
    ring_radius = 0.3 * min(rect.width, rect.height)
    cell = 0.42 * min(rect.width, rect.height)
    result: Dict[str, Rect] = {}
    for position, label in enumerate(labels):
        angle = 2.0 * math.pi * position / count - math.pi / 2.0
        anchor = polar(center, ring_radius, angle)
        result[label] = Rect(anchor.x - cell / 2.0, anchor.y - cell / 2.0, cell, cell)
    return result


def layout_by_name(
    name: str,
    graph: Graph,
    rect: Rect = DEFAULT_RECT,
    seed: Optional[int] = 0,
) -> Positions:
    """Dispatch a layout by name (used by the CLI's ``--layout`` flag)."""
    algorithms = {
        "circular": lambda: circular_layout(graph, rect),
        "grid": lambda: grid_layout(graph, rect),
        "random": lambda: random_layout(graph, rect, seed=seed),
        "force": lambda: fruchterman_reingold_layout(graph, rect, seed=seed),
        "spectral": lambda: spectral_layout(graph, rect),
    }
    try:
        return algorithms[name]()
    except KeyError:
        raise LayoutError(
            f"unknown layout {name!r}; choose from {sorted(algorithms)}"
        ) from None

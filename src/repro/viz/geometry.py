"""Small 2-D geometry helpers shared by layouts and the scene graph."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """Return the point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle defined by its min corner and size."""

    x: float
    y: float
    width: float
    height: float

    @property
    def center(self) -> Point:
        """The rectangle's centre point."""
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def max_x(self) -> float:
        """Right edge."""
        return self.x + self.width

    @property
    def max_y(self) -> float:
        """Bottom edge (SVG y grows downward)."""
        return self.y + self.height

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (inclusive of edges)."""
        return self.x <= point.x <= self.max_x and self.y <= point.y <= self.max_y

    def inset(self, margin: float) -> "Rect":
        """Return the rectangle shrunk by ``margin`` on every side (clamped)."""
        margin = min(margin, self.width / 2.0, self.height / 2.0)
        return Rect(
            self.x + margin, self.y + margin,
            self.width - 2 * margin, self.height - 2 * margin,
        )

    def subdivide_grid(self, count: int) -> Iterator["Rect"]:
        """Yield ``count`` equally sized cells arranged in a near-square grid."""
        if count <= 0:
            return
        columns = math.ceil(math.sqrt(count))
        rows = math.ceil(count / columns)
        cell_width = self.width / columns
        cell_height = self.height / rows
        produced = 0
        for row in range(rows):
            for column in range(columns):
                if produced >= count:
                    return
                yield Rect(
                    self.x + column * cell_width,
                    self.y + row * cell_height,
                    cell_width,
                    cell_height,
                )
                produced += 1


def bounding_box(points: Iterable[Point], padding: float = 0.0) -> Rect:
    """Return the smallest rectangle containing ``points`` (plus padding)."""
    xs, ys = [], []
    for point in points:
        xs.append(point.x)
        ys.append(point.y)
    if not xs:
        return Rect(0.0, 0.0, 1.0, 1.0)
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    return Rect(
        min_x - padding,
        min_y - padding,
        max(max_x - min_x, 1e-9) + 2 * padding,
        max(max_y - min_y, 1e-9) + 2 * padding,
    )


def polar(center: Point, radius: float, angle: float) -> Point:
    """Return the point at ``radius``/``angle`` (radians) around ``center``."""
    return Point(center.x + radius * math.cos(angle), center.y + radius * math.sin(angle))

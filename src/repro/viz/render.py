"""View renderers: turn engine/tree state into scenes.

Three views cover everything the paper's figures show:

* :func:`render_subgraph` — plain nodes-and-edges drawing of one subgraph
  (figure 5, figure 3(e)/(f), the bottom level of the tree),
* :func:`render_tomahawk_view` — the focused community with its children,
  siblings and ancestors as nested containers plus connectivity edges
  (figures 3(a)–(d) and 6(b)–(d)),
* :func:`render_full_expansion` — every community expanded at once; only
  used by the clutter benchmark as the "what the Tomahawk principle avoids"
  baseline.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..core.gtree import GTree, GTreeNode
from ..core.tomahawk import TomahawkContext
from ..graph.graph import Graph, NodeId
from .color import categorical_color, darken, level_palette, lighten, sequential_color
from .geometry import Point, Rect
from .layout import Positions, fruchterman_reingold_layout, radial_community_layout
from .scene import Circle, Line, Rectangle, Scene, Text


def render_subgraph(
    graph: Graph,
    positions: Optional[Positions] = None,
    width: float = 1000.0,
    height: float = 800.0,
    highlight: Sequence[NodeId] = (),
    node_scores: Optional[Mapping[NodeId, float]] = None,
    label_attribute: Optional[str] = "name",
    max_labels: int = 40,
    title: str = "",
    seed: Optional[int] = 0,
) -> Scene:
    """Render a subgraph as circles and lines.

    ``highlight`` vertices (e.g. the query sources of an extraction) are
    drawn larger with a dark outline; ``node_scores`` (e.g. goodness) drive
    a sequential colour ramp; labels are drawn for up to ``max_labels``
    highest-degree vertices to keep small views readable.
    """
    scene = Scene(width=width, height=height, title=title or graph.name)
    canvas = Rect(0.0, 0.0, width, height)
    if positions is None:
        positions = fruchterman_reingold_layout(graph, canvas, seed=seed)
    highlight_set = set(highlight)

    score_low = min(node_scores.values()) if node_scores else 0.0
    score_high = max(node_scores.values()) if node_scores else 1.0

    max_weight = max((w for _, _, w in graph.edges()), default=1.0)
    for u, v, w in graph.edges():
        if u not in positions or v not in positions:
            continue
        emphasis = u in highlight_set or v in highlight_set
        scene.add(
            Line(
                start=positions[u],
                end=positions[v],
                stroke="#6b6b6b" if emphasis else "#b0b0b0",
                stroke_width=0.6 + 2.4 * (w / max_weight),
                opacity=0.9 if emphasis else 0.6,
                layer=1,
                tooltip=f"{u} — {v} (weight {w:g})",
            )
        )

    labelled = 0
    by_degree = sorted(graph.nodes(), key=lambda node: -graph.degree(node))
    label_set = set(by_degree[:max_labels])
    for node in graph.nodes():
        if node not in positions:
            continue
        if node_scores is not None:
            fill = sequential_color(node_scores.get(node, 0.0), score_low, score_high)
        else:
            fill = "#4e79a7"
        is_highlight = node in highlight_set
        scene.add(
            Circle(
                center=positions[node],
                radius=9.0 if is_highlight else 4.5,
                fill="#e15759" if is_highlight else fill,
                stroke="#222222" if is_highlight else "#555555",
                stroke_width=1.6 if is_highlight else 0.5,
                layer=2,
                tooltip=str(graph.get_node_attr(node, "name", node)),
            )
        )
        if node in label_set or is_highlight:
            label = str(graph.get_node_attr(node, label_attribute, node)) if label_attribute else str(node)
            scene.add(
                Text(
                    position=Point(positions[node].x, positions[node].y - 10.0),
                    content=label,
                    font_size=10.0,
                    fill="#222222",
                    layer=3,
                )
            )
            labelled += 1
    return scene


def _community_tooltip(node: GTreeNode) -> str:
    return f"{node.label}: {node.size} nodes, {len(node.children)} sub-communities"


def _draw_community_box(
    scene: Scene,
    node: GTreeNode,
    rect: Rect,
    fill: str,
    emphasis: bool = False,
    layer: int = 1,
) -> None:
    """Draw one community container with its label."""
    scene.add(
        Rectangle(
            rect=rect,
            corner_radius=8.0,
            fill=fill,
            stroke="#d62728" if emphasis else "#444444",
            stroke_width=2.5 if emphasis else 1.0,
            opacity=0.95,
            layer=layer,
            tooltip=_community_tooltip(node),
        )
    )
    scene.add(
        Text(
            position=Point(rect.x + rect.width / 2.0, rect.y + 14.0),
            content=f"{node.label} ({node.size})",
            font_size=11.0,
            fill="#222222",
            layer=layer + 1,
        )
    )


def _draw_connectivity(
    scene: Scene,
    tree: GTree,
    parent: GTreeNode,
    child_rects: Dict[int, Rect],
    layer: int = 3,
) -> None:
    """Draw connectivity edges among the children that have rectangles."""
    max_count = max((edge.edge_count for edge in parent.connectivity), default=1)
    for edge in parent.connectivity:
        if edge.source not in child_rects or edge.target not in child_rects:
            continue
        start = child_rects[edge.source].center
        end = child_rects[edge.target].center
        scene.add(
            Line(
                start=start,
                end=end,
                stroke="#7a5195",
                stroke_width=1.0 + 5.0 * (edge.edge_count / max_count),
                opacity=0.8,
                layer=layer,
                tooltip=(
                    f"{tree.node(edge.source).label} ~ {tree.node(edge.target).label}: "
                    f"{edge.edge_count} edges (weight {edge.total_weight:g})"
                ),
            )
        )


def render_tomahawk_view(
    tree: GTree,
    context: TomahawkContext,
    graph: Optional[Graph] = None,
    width: float = 1200.0,
    height: float = 900.0,
    expand_focus_subgraph: bool = False,
    title: str = "",
) -> Scene:
    """Render the Tomahawk display state for one focused community.

    The enclosing ancestor is the outer container; the focus and its siblings
    are placed on a ring inside it; the focus's children are nested inside
    the focus box, with connectivity edges drawn at both levels.  When
    ``expand_focus_subgraph`` is true and the focus is a leaf, its actual
    nodes and edges are laid out inside the focus box (figure 3(c)/(e)).
    """
    scene = Scene(width=width, height=height, title=title or f"focus {context.focus.label}")
    canvas = Rect(10.0, 10.0, width - 20.0, height - 20.0)
    palette = level_palette(tree.depth())

    enclosing = context.enclosing_node()
    _draw_community_box(scene, enclosing, canvas, palette[min(enclosing.level, len(palette) - 1)], layer=0)

    # Focus + siblings share the enclosing box.
    ring_members = [context.focus] + context.siblings
    ring_rects = radial_community_layout([node.label for node in ring_members], canvas.inset(30.0))
    rect_by_id: Dict[int, Rect] = {}
    for node in ring_members:
        rect = ring_rects[node.label]
        rect_by_id[node.node_id] = rect
        fill = lighten(categorical_color(node.node_id), 0.55)
        _draw_community_box(scene, node, rect, fill, emphasis=node.node_id == context.focus.node_id, layer=1)

    # Connectivity among focus and siblings lives on their parent.
    parent = tree.parent(context.focus.node_id)
    if parent is not None:
        _draw_connectivity(scene, tree, parent, rect_by_id, layer=3)

    # Children nested inside the focus box.
    focus_rect = rect_by_id[context.focus.node_id]
    child_rects: Dict[int, Rect] = {}
    if context.children:
        inner = radial_community_layout(
            [child.label for child in context.children], focus_rect.inset(18.0)
        )
        for child in context.children:
            rect = inner[child.label]
            child_rects[child.node_id] = rect
            fill = lighten(categorical_color(child.node_id), 0.7)
            _draw_community_box(scene, child, rect, fill, layer=4)
        _draw_connectivity(scene, tree, context.focus, child_rects, layer=6)
    elif expand_focus_subgraph:
        subgraph = context.focus.subgraph
        if subgraph is None and graph is not None:
            subgraph = graph.subgraph(context.focus.members, name=context.focus.label)
        if subgraph is not None:
            inner_scene = render_subgraph(
                subgraph,
                width=focus_rect.width,
                height=focus_rect.height,
                max_labels=10,
            )
            # Translate the inner scene's shapes into the focus rectangle.
            for shape in inner_scene.shapes():
                _translate_shape(shape, focus_rect.x, focus_rect.y)
                shape.layer += 4
                scene.add(shape)

    # Ancestors above the enclosing node are listed as a breadcrumb.
    breadcrumb = " > ".join(node.label for node in reversed(context.ancestors)) or "(root)"
    scene.add(
        Text(
            position=Point(width / 2.0, height - 8.0),
            content=f"path: {breadcrumb} | focus: {context.focus.label}",
            font_size=12.0,
            fill="#333333",
            layer=10,
        )
    )
    return scene


def render_full_expansion(
    tree: GTree,
    graph: Optional[Graph] = None,
    width: float = 1200.0,
    height: float = 900.0,
    include_leaf_edges: bool = True,
    title: str = "full expansion",
) -> Scene:
    """Render every community (and optionally every leaf edge) at once.

    This is deliberately the cluttered display the paper argues against; the
    clutter benchmark counts its visual items against the Tomahawk view.
    """
    scene = Scene(width=width, height=height, title=title)
    canvas = Rect(10.0, 10.0, width - 20.0, height - 20.0)
    palette = level_palette(tree.depth())
    rect_of: Dict[int, Rect] = {tree.root.node_id: canvas}
    _draw_community_box(scene, tree.root, canvas, palette[0], layer=0)
    frontier = [tree.root]
    while frontier:
        parent = frontier.pop()
        children = tree.children(parent.node_id)
        if not children:
            if include_leaf_edges:
                subgraph = parent.subgraph
                if subgraph is None and graph is not None:
                    subgraph = graph.subgraph(parent.members, name=parent.label)
                if subgraph is not None:
                    inner_scene = render_subgraph(
                        subgraph,
                        width=rect_of[parent.node_id].width,
                        height=rect_of[parent.node_id].height,
                        max_labels=0,
                    )
                    for shape in inner_scene.shapes():
                        _translate_shape(shape, rect_of[parent.node_id].x, rect_of[parent.node_id].y)
                        shape.layer += parent.level * 2 + 2
                        scene.add(shape)
            continue
        child_rects = radial_community_layout(
            [child.label for child in children], rect_of[parent.node_id].inset(16.0)
        )
        id_rects: Dict[int, Rect] = {}
        for child in children:
            rect = child_rects[child.label]
            rect_of[child.node_id] = rect
            id_rects[child.node_id] = rect
            fill = palette[min(child.level, len(palette) - 1)]
            _draw_community_box(scene, child, rect, fill, layer=child.level * 2 + 1)
            frontier.append(child)
        _draw_connectivity(scene, tree, parent, id_rects, layer=parent.level * 2 + 2)
    return scene


def _translate_shape(shape, dx: float, dy: float) -> None:
    """Shift a shape in place by (dx, dy)."""
    if isinstance(shape, Circle):
        shape.center = Point(shape.center.x + dx, shape.center.y + dy)
    elif isinstance(shape, Rectangle):
        shape.rect = Rect(shape.rect.x + dx, shape.rect.y + dy, shape.rect.width, shape.rect.height)
    elif isinstance(shape, Line):
        shape.start = Point(shape.start.x + dx, shape.start.y + dy)
        shape.end = Point(shape.end.x + dx, shape.end.y + dy)
    elif isinstance(shape, Text):
        shape.position = Point(shape.position.x + dx, shape.position.y + dy)

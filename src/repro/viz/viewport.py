"""Viewport: the zoom/pan transform between world and screen coordinates.

GMine's basic interactions include zoom and pan over the drawing.  The
viewport keeps that state (scale and translation) and converts between the
layout's world coordinates and on-screen pixels, with helpers to zoom about
a cursor position and to fit a bounding rectangle — exactly the operations
the figure walkthroughs use ("zoom in the community highlighted in (c)").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import VisualizationError
from .geometry import Point, Rect


@dataclass
class Viewport:
    """A screen of ``width`` x ``height`` pixels viewing the world plane."""

    width: float = 1000.0
    height: float = 800.0
    scale: float = 1.0
    offset_x: float = 0.0
    offset_y: float = 0.0
    min_scale: float = 1e-3
    max_scale: float = 1e4

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def world_to_screen(self, point: Point) -> Point:
        """Map a world-space point to screen pixels."""
        return Point(
            (point.x - self.offset_x) * self.scale,
            (point.y - self.offset_y) * self.scale,
        )

    def screen_to_world(self, point: Point) -> Point:
        """Map a screen-pixel point back to world space."""
        if self.scale == 0:
            raise VisualizationError("viewport scale is zero")
        return Point(
            point.x / self.scale + self.offset_x,
            point.y / self.scale + self.offset_y,
        )

    def visible_world_rect(self) -> Rect:
        """Return the world-space rectangle currently visible."""
        return Rect(
            self.offset_x,
            self.offset_y,
            self.width / self.scale,
            self.height / self.scale,
        )

    # ------------------------------------------------------------------ #
    # interactions
    # ------------------------------------------------------------------ #
    def pan(self, dx_pixels: float, dy_pixels: float) -> None:
        """Shift the view by a screen-space delta (drag gesture)."""
        self.offset_x -= dx_pixels / self.scale
        self.offset_y -= dy_pixels / self.scale

    def zoom(self, factor: float, anchor: Point | None = None) -> None:
        """Multiply the scale by ``factor`` keeping ``anchor`` (screen px) fixed.

        Without an anchor the screen centre is used.  The scale is clamped to
        ``[min_scale, max_scale]``.
        """
        if factor <= 0:
            raise VisualizationError(f"zoom factor must be positive, got {factor}")
        if anchor is None:
            anchor = Point(self.width / 2.0, self.height / 2.0)
        world_anchor = self.screen_to_world(anchor)
        new_scale = min(max(self.scale * factor, self.min_scale), self.max_scale)
        self.scale = new_scale
        # Keep the anchor's world point under the same screen pixel.
        self.offset_x = world_anchor.x - anchor.x / self.scale
        self.offset_y = world_anchor.y - anchor.y / self.scale

    def fit(self, rect: Rect, margin_fraction: float = 0.05) -> None:
        """Zoom and pan so ``rect`` (world space) fills the screen."""
        if rect.width <= 0 or rect.height <= 0:
            raise VisualizationError("cannot fit an empty rectangle")
        usable_width = self.width * (1.0 - 2.0 * margin_fraction)
        usable_height = self.height * (1.0 - 2.0 * margin_fraction)
        self.scale = min(usable_width / rect.width, usable_height / rect.height)
        self.scale = min(max(self.scale, self.min_scale), self.max_scale)
        center = rect.center
        self.offset_x = center.x - (self.width / 2.0) / self.scale
        self.offset_y = center.y - (self.height / 2.0) / self.scale

    def reset(self) -> None:
        """Restore the identity view (scale 1, origin at the top-left)."""
        self.scale = 1.0
        self.offset_x = 0.0
        self.offset_y = 0.0

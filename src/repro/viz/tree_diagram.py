"""Tree-diagram renderers for the G-Tree itself (figures 1 and 4).

Figure 1 of the paper draws the G-Tree as a tree of boxes with the graph
nodes referenced at the bottom level; figure 4 highlights the Tomahawk
selection (focus, sons, siblings, ancestors) on that same diagram.  These
renderers produce both pictures from a live :class:`~repro.core.gtree.GTree`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.gtree import GTree
from ..core.tomahawk import TomahawkContext
from .color import categorical_color, lighten
from .geometry import Point, Rect
from .scene import Circle, Line, Rectangle, Scene, Text


def _layout_tree(tree: GTree, width: float, height: float, margin: float = 40.0) -> Dict[int, Point]:
    """Assign each tree node a point: levels as rows, leaves evenly spaced.

    Internal nodes are centred over their children, the classic tidy-tree
    look of the paper's figure 1.
    """
    depth = tree.depth()
    leaves = tree.leaves()
    positions: Dict[int, Point] = {}
    usable_width = max(width - 2 * margin, 1.0)
    usable_height = max(height - 2 * margin, 1.0)

    def level_y(level: int) -> float:
        if depth == 0:
            return margin + usable_height / 2.0
        return margin + usable_height * level / depth

    # Leaves first, spread across the width in tree order.
    leaf_count = max(len(leaves), 1)
    for index, leaf in enumerate(leaves):
        x = margin + usable_width * (index + 0.5) / leaf_count
        positions[leaf.node_id] = Point(x, level_y(leaf.level))

    # Internal nodes: average of children's x, bottom-up by level.
    for level in range(depth - 1, -1, -1):
        for node in tree.nodes_at_level(level):
            if node.is_leaf:
                continue
            child_points = [positions[child] for child in node.children if child in positions]
            if child_points:
                x = sum(point.x for point in child_points) / len(child_points)
            else:
                x = margin + usable_width / 2.0
            positions[node.node_id] = Point(x, level_y(level))
    return positions


def render_gtree_diagram(
    tree: GTree,
    width: float = 1200.0,
    height: float = 600.0,
    show_leaf_sizes: bool = True,
    title: str = "",
) -> Scene:
    """Render the G-Tree as a node-link tree diagram (figure 1)."""
    scene = Scene(width=width, height=height, title=title or f"G-Tree {tree.name}")
    positions = _layout_tree(tree, width, height)

    for node in tree.nodes():
        for child_id in node.children:
            scene.add(
                Line(
                    start=positions[node.node_id],
                    end=positions[child_id],
                    stroke="#999999",
                    stroke_width=1.0,
                    layer=1,
                )
            )
    for node in tree.nodes():
        point = positions[node.node_id]
        fill = lighten(categorical_color(node.level), 0.4)
        scene.add(
            Circle(
                center=point,
                radius=10.0 if not node.is_leaf else 7.0,
                fill=fill,
                stroke="#333333",
                stroke_width=1.0,
                layer=2,
                tooltip=f"{node.label}: {node.size} vertices",
            )
        )
        label = node.label
        if show_leaf_sizes and node.is_leaf:
            label = f"{node.label} ({node.size})"
        scene.add(
            Text(
                position=Point(point.x, point.y - 14.0),
                content=label,
                font_size=9.0,
                fill="#222222",
                layer=3,
            )
        )
    return scene


def render_tomahawk_diagram(
    tree: GTree,
    context: TomahawkContext,
    width: float = 1200.0,
    height: float = 600.0,
    title: str = "",
) -> Scene:
    """Render the G-Tree with the Tomahawk selection highlighted (figure 4).

    The focus is drawn red, its children orange, siblings blue, ancestors
    green, and everything else grey — making the axe-shaped selection the
    paper names visible at a glance.
    """
    scene = Scene(width=width, height=height,
                  title=title or f"Tomahawk selection for {context.focus.label}")
    positions = _layout_tree(tree, width, height)

    roles: Dict[int, str] = {context.focus.node_id: "focus"}
    for node in context.children:
        roles[node.node_id] = "child"
    for node in context.siblings:
        roles[node.node_id] = "sibling"
    for node in context.ancestors:
        roles[node.node_id] = "ancestor"
    palette = {
        "focus": "#d62728",
        "child": "#ff7f0e",
        "sibling": "#1f77b4",
        "ancestor": "#2ca02c",
        "other": "#d9d9d9",
    }

    for node in tree.nodes():
        for child_id in node.children:
            on_selection = node.node_id in roles and child_id in roles
            scene.add(
                Line(
                    start=positions[node.node_id],
                    end=positions[child_id],
                    stroke="#555555" if on_selection else "#cccccc",
                    stroke_width=2.0 if on_selection else 0.8,
                    layer=1,
                )
            )
    for node in tree.nodes():
        role = roles.get(node.node_id, "other")
        point = positions[node.node_id]
        scene.add(
            Circle(
                center=point,
                radius=12.0 if role == "focus" else 8.0,
                fill=palette[role],
                stroke="#333333",
                stroke_width=1.2 if role != "other" else 0.5,
                opacity=1.0 if role != "other" else 0.7,
                layer=2,
                tooltip=f"{node.label} ({role})",
            )
        )
        if role != "other":
            scene.add(
                Text(
                    position=Point(point.x, point.y - 15.0),
                    content=node.label,
                    font_size=10.0,
                    fill="#222222",
                    layer=3,
                )
            )

    legend_y = height - 18.0
    legend_x = 20.0
    for role in ("focus", "child", "sibling", "ancestor"):
        scene.add(Circle(center=Point(legend_x, legend_y), radius=6.0,
                         fill=palette[role], stroke="#333333", layer=4))
        scene.add(Text(position=Point(legend_x + 52.0, legend_y + 4.0), content=role,
                       font_size=10.0, fill="#222222", layer=4))
        legend_x += 120.0
    return scene

"""Colour utilities for the SVG renderer.

Communities get categorical colours; numeric scores (goodness, PageRank) map
onto a sequential ramp.  Everything is plain ``#rrggbb`` strings so the SVG
output has no external dependencies.
"""

from __future__ import annotations

import colorsys
from typing import List, Sequence, Tuple

# A qualitative palette with enough separation for the 5-way hierarchies the
# paper uses; cycles when more categories are needed.
CATEGORICAL_PALETTE: Tuple[str, ...] = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def categorical_color(index: int) -> str:
    """Return a stable categorical colour for ``index`` (cycles the palette)."""
    return CATEGORICAL_PALETTE[index % len(CATEGORICAL_PALETTE)]


def hex_to_rgb(color: str) -> Tuple[int, int, int]:
    """Parse ``#rrggbb`` into an (r, g, b) tuple of 0-255 ints."""
    color = color.lstrip("#")
    return tuple(int(color[i:i + 2], 16) for i in (0, 2, 4))  # type: ignore[return-value]


def rgb_to_hex(rgb: Sequence[int]) -> str:
    """Format an (r, g, b) triple as ``#rrggbb``."""
    r, g, b = (max(0, min(255, int(round(channel)))) for channel in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


def lighten(color: str, amount: float = 0.5) -> str:
    """Blend ``color`` toward white by ``amount`` (0 = unchanged, 1 = white)."""
    r, g, b = hex_to_rgb(color)
    return rgb_to_hex(
        (r + (255 - r) * amount, g + (255 - g) * amount, b + (255 - b) * amount)
    )


def darken(color: str, amount: float = 0.3) -> str:
    """Blend ``color`` toward black by ``amount``."""
    r, g, b = hex_to_rgb(color)
    return rgb_to_hex((r * (1 - amount), g * (1 - amount), b * (1 - amount)))


def sequential_color(value: float, low: float = 0.0, high: float = 1.0) -> str:
    """Map ``value`` in ``[low, high]`` to a light-yellow → dark-red ramp."""
    if high <= low:
        fraction = 0.0
    else:
        fraction = min(1.0, max(0.0, (value - low) / (high - low)))
    # Hue from 0.15 (yellow) down to 0.0 (red); value darkens slightly.
    hue = 0.15 * (1.0 - fraction)
    saturation = 0.55 + 0.45 * fraction
    brightness = 0.95 - 0.25 * fraction
    r, g, b = colorsys.hsv_to_rgb(hue, saturation, brightness)
    return rgb_to_hex((r * 255, g * 255, b * 255))


def level_palette(depth: int) -> List[str]:
    """Return one fill colour per hierarchy level, light at the top.

    The nested community view shades deeper levels progressively so the user
    can read depth from colour alone.
    """
    colors = []
    for level in range(depth + 1):
        grey = 245 - min(level * 18, 120)
        colors.append(rgb_to_hex((grey, grey, grey + 5)))
    return colors

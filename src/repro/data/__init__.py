"""Datasets: synthetic DBLP-like co-authorship graphs and real-data loaders."""

from .dblp import (
    DBLPConfig,
    DBLPDataset,
    generate_dblp,
    load_coauthorship_edge_list,
    small_dblp,
)
from .names import generate_author_names

__all__ = [
    "DBLPConfig",
    "DBLPDataset",
    "generate_author_names",
    "generate_dblp",
    "load_coauthorship_edge_list",
    "small_dblp",
]

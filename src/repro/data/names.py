"""Deterministic author-name generation for the synthetic DBLP dataset.

The paper's walkthrough identifies authors by name ("Jiawei Han", "Ke Wang",
"D. B. Miller" ...).  The synthetic dataset needs readable, unique names so
label queries and the figure-3/figure-5 scenarios remain meaningful.  Names
are generated from fixed syllable tables, so a given seed always produces
the same author list.
"""

from __future__ import annotations

import random
from typing import List, Optional

_GIVEN = [
    "Alan", "Beatriz", "Chen", "Dmitri", "Elena", "Farid", "Grace", "Hiro",
    "Ingrid", "Jorge", "Katia", "Liang", "Marta", "Nikhil", "Olga", "Pedro",
    "Qing", "Rosa", "Stefan", "Tanja", "Umar", "Vera", "Wei", "Ximena",
    "Yuki", "Zhang", "Anders", "Bruna", "Carlos", "Daniela", "Emre", "Fatima",
    "Gustav", "Helena", "Igor", "Julia", "Kenji", "Laura", "Marco", "Nadia",
]

_SURNAME_PREFIX = [
    "Al", "Ber", "Cas", "Del", "Es", "Fer", "Gar", "Hof", "Iva", "Jan",
    "Kar", "Lom", "Mar", "Nor", "Oli", "Pet", "Qui", "Rod", "San", "Tor",
    "Ul", "Var", "Wil", "Xa", "Ya", "Zim", "Bran", "Cor", "Dun", "Eck",
]

_SURNAME_SUFFIX = [
    "berg", "dano", "ero", "feld", "gues", "hart", "inski", "jima", "kov",
    "lund", "mann", "nova", "oshi", "pulos", "quist", "rell", "son", "tano",
    "ucci", "vich", "wald", "xton", "yama", "zalez", "ström", "sen", "etti",
    "ard", "ides", "moto",
]


def generate_author_names(count: int, seed: Optional[int] = 0) -> List[str]:
    """Return ``count`` distinct author names, deterministically from ``seed``.

    The combinatorial space (40 given names × 30 prefixes × 30 suffixes plus
    middle initials) is large enough for several hundred thousand authors —
    the scale of the paper's DBLP snapshot.
    """
    rng = random.Random(seed if seed is not None else 0)
    names: List[str] = []
    seen = set()
    attempts = 0
    max_attempts = count * 50 + 1000
    while len(names) < count and attempts < max_attempts:
        attempts += 1
        given = rng.choice(_GIVEN)
        surname = rng.choice(_SURNAME_PREFIX) + rng.choice(_SURNAME_SUFFIX)
        candidate = f"{given} {surname}"
        if candidate in seen:
            # Disambiguate with a middle initial, then a numeral if necessary.
            initial = chr(ord("A") + rng.randrange(26))
            candidate = f"{given} {initial}. {surname}"
            if candidate in seen:
                candidate = f"{given} {initial}. {surname} {len(seen)}"
        if candidate in seen:
            continue
        seen.add(candidate)
        names.append(candidate)
    if len(names) < count:
        # Deterministic fallback: numbered authors (never expected in practice).
        for index in range(len(names), count):
            names.append(f"Author {index}")
    return names

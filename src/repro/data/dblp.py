"""Synthetic DBLP-like co-authorship graphs (and a parser for real ones).

The paper demonstrates GMine on a DBLP snapshot with n = 315,688 authors and
e = 1,659,853 co-authorship edges.  That snapshot is not available offline,
so this module generates a synthetic surrogate that preserves the features
the system actually exercises:

* **community structure** — authors are organised into research communities
  (and sub-communities), with dense collaboration inside a community and
  sparse collaboration across communities, so METIS-style partitioning and
  the G-Tree produce meaningful hierarchies;
* **skewed productivity** — a small number of prolific, long-term authors
  co-author with many people (the "3 highly connected communities hold long
  term active and collaborating authors" observation), while most authors
  have few collaborators;
* **edge weights and years** — each co-authorship edge carries the number of
  joint papers and a publication year, supporting the paper's outlier-edge
  inspection story ("their unique DBLP publication dated from 1989");
* **author names** — so label queries ("locate author Jiawei Han") work.

The default scale is reduced (a few thousand authors) so tests and
benchmarks run in seconds; ``DBLPConfig.paper_scale()`` returns the
parameterisation matching the paper's node/edge counts for users with the
patience to run it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import DatasetError
from ..graph.graph import Graph
from .names import generate_author_names

PathLike = Union[str, Path]


@dataclass
class DBLPConfig:
    """Parameters of the synthetic co-authorship generator."""

    num_authors: int = 3000
    num_communities: int = 5
    sub_communities_per_community: int = 5
    # Average number of co-authors an author has inside their sub-community.
    intra_sub_degree: float = 8.0
    # Average number of co-authors inside the same top community but a
    # different sub-community.
    intra_top_degree: float = 1.5
    # Average number of co-authors in a different top community.
    inter_degree: float = 0.4
    # Fraction of authors that are "prolific" hubs with many collaborations.
    prolific_fraction: float = 0.02
    prolific_boost: float = 6.0
    # Fraction of authors who are casual (single collaboration, mirrors the
    # paper's "casual, less productive authors who seldom interact").
    casual_fraction: float = 0.3
    year_range: Tuple[int, int] = (1980, 2006)
    seed: int = 0

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "DBLPConfig":
        """Parameters approximating the paper's snapshot (315,688 authors).

        Average degree in the paper's graph is 2e/n ≈ 10.5; the default
        degree mix below reproduces that once all three collaboration tiers
        are summed.  Running at this scale takes minutes, not seconds.
        """
        return cls(
            num_authors=315_688,
            num_communities=5,
            sub_communities_per_community=5,
            intra_sub_degree=8.6,
            intra_top_degree=1.5,
            inter_degree=0.4,
            seed=seed,
        )

    def validate(self) -> None:
        """Raise :class:`DatasetError` on inconsistent parameters."""
        if self.num_authors < self.num_communities * self.sub_communities_per_community:
            raise DatasetError(
                "num_authors must be at least num_communities * sub_communities"
            )
        if self.num_communities < 1 or self.sub_communities_per_community < 1:
            raise DatasetError("community counts must be >= 1")
        if not 0.0 <= self.prolific_fraction <= 1.0:
            raise DatasetError("prolific_fraction must be in [0, 1]")
        if not 0.0 <= self.casual_fraction <= 1.0:
            raise DatasetError("casual_fraction must be in [0, 1]")
        if self.year_range[0] > self.year_range[1]:
            raise DatasetError("year_range must be (min, max) with min <= max")


@dataclass
class DBLPDataset:
    """A generated co-authorship graph plus its ground-truth structure."""

    graph: Graph
    config: DBLPConfig
    community_of: Dict[int, int]
    sub_community_of: Dict[int, Tuple[int, int]]
    author_names: List[str]

    @property
    def num_authors(self) -> int:
        """Number of author vertices."""
        return self.graph.num_nodes

    @property
    def num_collaborations(self) -> int:
        """Number of distinct co-authorship edges."""
        return self.graph.num_edges

    def author_id(self, name: str) -> int:
        """Return the vertex id of the author called ``name``.

        Raises :class:`DatasetError` when no author has that name — the same
        behaviour a label query in the UI reports to the user.
        """
        try:
            return self.author_names.index(name)
        except ValueError:
            raise DatasetError(f"no author named {name!r} in this dataset") from None

    def name_of(self, author: int) -> str:
        """Return the display name of vertex ``author``."""
        if author < 0 or author >= len(self.author_names):
            raise DatasetError(f"author id {author} out of range")
        return self.author_names[author]

    def most_collaborative_authors(self, count: int = 10) -> List[Tuple[int, str, int]]:
        """Return ``(id, name, degree)`` for the most-connected authors."""
        ranked = sorted(
            ((node, self.graph.degree(node)) for node in self.graph.nodes()),
            key=lambda pair: -pair[1],
        )
        return [(node, self.name_of(node), degree) for node, degree in ranked[:count]]


def generate_dblp(config: Optional[DBLPConfig] = None) -> DBLPDataset:
    """Generate a synthetic DBLP-like co-authorship network.

    Authors are laid out community by community, sub-community by
    sub-community; collaborations are sampled per author with expected
    counts given by the config's three degree tiers, each collaboration
    picking a partner from the appropriate group (prolific authors are
    preferred as partners, giving the skewed degree distribution).
    """
    config = config or DBLPConfig()
    config.validate()
    rng = random.Random(config.seed)

    n = config.num_authors
    graph = Graph(name=f"dblp_synthetic_{n}")
    names = generate_author_names(n, seed=config.seed)

    community_of: Dict[int, int] = {}
    sub_community_of: Dict[int, Tuple[int, int]] = {}

    # --- assign authors to communities and sub-communities ---------------- #
    communities: List[List[int]] = [[] for _ in range(config.num_communities)]
    sub_communities: Dict[Tuple[int, int], List[int]] = {}
    for author in range(n):
        community = author % config.num_communities
        sub = (author // config.num_communities) % config.sub_communities_per_community
        community_of[author] = community
        sub_community_of[author] = (community, sub)
        communities[community].append(author)
        sub_communities.setdefault((community, sub), []).append(author)
        graph.add_node(
            author,
            name=names[author],
            community=community,
            sub_community=sub,
        )

    # --- choose prolific and casual authors ------------------------------- #
    num_prolific = max(1, int(round(n * config.prolific_fraction)))
    prolific = set(rng.sample(range(n), num_prolific))
    casual = {
        author
        for author in range(n)
        if author not in prolific and rng.random() < config.casual_fraction
    }

    def preference_weight(author: int) -> float:
        return config.prolific_boost if author in prolific else 1.0

    # Pre-compute weighted partner pools per group to keep sampling cheap.
    def make_pool(members: Sequence[int]) -> List[int]:
        pool: List[int] = []
        for member in members:
            copies = int(round(preference_weight(member)))
            pool.extend([member] * max(1, copies))
        return pool

    sub_pools = {key: make_pool(members) for key, members in sub_communities.items()}
    community_pools = {index: make_pool(members) for index, members in enumerate(communities)}
    global_pool = make_pool(range(n))

    year_low, year_high = config.year_range

    def sample_count(expected: float) -> int:
        """Poisson-ish sample with deterministic rng (sum of Bernoullis)."""
        whole = int(expected)
        count = 0
        for _ in range(whole):
            if rng.random() < 0.9:
                count += 1
        if rng.random() < (expected - whole):
            count += 1
        return count

    def add_collaboration(author: int, partner: int) -> None:
        if author == partner:
            return
        year = rng.randint(year_low, year_high)
        if graph.has_edge(author, partner):
            graph.add_edge(author, partner, weight=1.0, accumulate=True)
            attrs = graph.edge_attrs(author, partner)
            attrs["last_year"] = max(attrs.get("last_year", year), year)
            attrs["first_year"] = min(attrs.get("first_year", year), year)
        else:
            graph.add_edge(author, partner, weight=1.0)
            graph.edge_attrs(author, partner).update(
                {"first_year": year, "last_year": year}
            )

    # --- sample collaborations -------------------------------------------- #
    for author in range(n):
        activity = 1.0
        if author in prolific:
            activity = config.prolific_boost
        elif author in casual:
            activity = 0.25
        community, sub = sub_community_of[author]

        for _ in range(sample_count(config.intra_sub_degree * activity)):
            partner = rng.choice(sub_pools[(community, sub)])
            add_collaboration(author, partner)
        for _ in range(sample_count(config.intra_top_degree * activity)):
            partner = rng.choice(community_pools[community])
            add_collaboration(author, partner)
        for _ in range(sample_count(config.inter_degree * activity)):
            partner = rng.choice(global_pool)
            add_collaboration(author, partner)

    return DBLPDataset(
        graph=graph,
        config=config,
        community_of=community_of,
        sub_community_of=sub_community_of,
        author_names=names,
    )


def small_dblp(num_authors: int = 1500, seed: int = 0) -> DBLPDataset:
    """Convenience: a reduced-scale dataset for tests and quick examples."""
    return generate_dblp(
        DBLPConfig(num_authors=num_authors, intra_sub_degree=6.0, seed=seed)
    )


# --------------------------------------------------------------------------- #
# real data ingestion
# --------------------------------------------------------------------------- #
def load_coauthorship_edge_list(path: PathLike, name: str = "dblp") -> Graph:
    """Load a real co-authorship edge list (``author_a<TAB>author_b[<TAB>papers]``).

    Provided so users who *do* have a DBLP-derived edge list (for example the
    SNAP ``com-DBLP`` dump) can run the system on it; every downstream
    component only requires a weighted undirected :class:`Graph`.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"co-authorship file does not exist: {path}")
    graph = Graph(name=name)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) < 2:
                raise DatasetError(f"{path}:{lineno}: expected two author fields")
            a, b = parts[0].strip(), parts[1].strip()
            weight = 1.0
            if len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise DatasetError(f"{path}:{lineno}: bad weight {parts[2]!r}") from exc
            try:
                u: Union[int, str] = int(a)
                v: Union[int, str] = int(b)
            except ValueError:
                u, v = a, b
            if u == v:
                continue
            graph.add_edge(u, v, weight=weight, accumulate=graph.has_edge(u, v))
    return graph

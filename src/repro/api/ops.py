"""The default GMine Protocol v2 operation table.

This module binds every operation the service exposes to its
:class:`~repro.api.registry.OpSpec`: the argument schema (types, defaults,
validators, normalizers), the compute handler, and the wire encoder.  The
handlers close over nothing — dataset-scoped handlers receive an
:class:`OpContext` built by the service per computation, session-scoped
handlers a :class:`ServiceOpContext` carrying the owning service — so the
table itself stays importable from anywhere (CLI, docs generation, tests)
without touching an engine.

Protocol v2 folds the **session surface into the registry**: the
lifecycle (``session.create``/``resume``/``describe``/``step``/
``restore``/``close``/``list``) and session-context variants of the
mining ops (``session.metrics``/``session.rwr``/
``session.connection_subgraph`` — the same kernels, defaulting their
scope to the session's focused community) are ordinary :class:`OpSpec`
rows with ``scope="session"``.  Validation, canonicalization, error
taxonomy and docs therefore derive from the table for session traffic
exactly as they do for dataset traffic; the HTTP session routes are thin
compatibility aliases over these ops.

Wire encoders flatten rich result objects (``SubgraphMetrics``,
``RWRResult``, ``ExtractionResult``, connectivity/inspection structures)
into JSON-safe payloads, applying top-k / offset+limit pagination for the
payloads that can grow with the dataset (RWR score vectors, connectivity
edge lists, cross-edge inspections).  Ops whose payloads carry a large
deterministic vector additionally declare a
:class:`~repro.api.registry.StreamSpec`, which lets the ``/v1/stream``
route chunk them into resumable cursor pages.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import functools

from ..core.editing import validate_edit_script
from ..errors import GMineError, InvalidArgumentError
from ..mining.metrics_suite import metrics_signature
from ..query import compile_query, evaluate_path, parse, unparse
from ..query.plan import Const
from .plans import plan_for, run_plan
from .registry import (
    ArgSpec,
    CanonicalizationContext,
    MergeSpec,
    OperationRegistry,
    OpSpec,
    StreamSpec,
)

#: Default number of entries returned for score-vector payloads when the
#: request carries no explicit page; keeps full-graph RWR responses small.
DEFAULT_TOP_K = 50

#: Default page size for list payloads (connectivity edges, cross edges).
DEFAULT_LIMIT = 100


@dataclass
class OpContext:
    """Everything a handler may touch, built by the service per compute."""

    engine: Any  # GMineEngine (kept untyped: the api layer never imports core)
    #: Optional ``(scope, subgraph) -> PreparedGraph | None`` hook supplying
    #: the venue's cached prepared view (parent: the DatasetHandle's cell;
    #: process worker: its warm context).  ``None`` = always convert cold.
    prepared_provider: Optional[Callable[[Any, Any], Any]] = None

    def community_subgraph(self, community):
        """Materialise a community's subgraph; ``None`` means widest scope."""
        engine = self.engine
        if community is None:
            if engine.graph is not None:
                return engine.graph
            return engine.community_subgraph(engine.tree.root.node_id)
        return engine.community_subgraph(community)

    def prepared_for(self, scope, subgraph):
        """The cached prepared view for a materialised scope, if any."""
        if self.prepared_provider is None:
            return None
        return self.prepared_provider(scope, subgraph)

    def target(self, community):
        """Resolve ``None`` to the tree root for tree-addressed operations."""
        return self.engine.tree.root.node_id if community is None else community


@dataclass
class ServiceOpContext:
    """What session-scoped handlers may touch: the owning service.

    Session ops operate on service-level state (the session table, the
    dataset registry, the shared cache), not on one materialised engine —
    so they get the service itself, duck-typed to avoid any import of the
    service package from the api layer.
    """

    service: Any


@dataclass
class DelegatedResult:
    """A session handler's way to forward a dataset dispatch outcome.

    Session-context mining variants delegate the heavy work back into the
    service's dataset dispatch (same backend, same shared cache).  The
    wrapper carries the honest ``cached`` flag across the delegation so
    the wire envelope reports cache hits exactly like a direct call, and
    the scope fingerprint of the dataset snapshot the delegated dispatch
    ran against so stream cursors pin the content that produced them.
    """

    value: Any
    cached: bool = False
    fingerprint: Optional[str] = None
    #: Whether the delegated dispatch served an expired cache entry in
    #: degraded mode (backend failure + stale value still resident).
    degraded: bool = False


# --------------------------------------------------------------------------- #
# shared argument pieces
# --------------------------------------------------------------------------- #
def _resolve_community(value, ctx: CanonicalizationContext):
    return ctx.resolve_community(value)


def _normalize_sources(value, ctx: CanonicalizationContext):
    # The restart vector spreads mass uniformly over the *set* of sources,
    # so order and duplicates never matter; canonicalize them away.
    return sorted(set(value), key=repr)


def _check_sources(value) -> Optional[str]:
    if isinstance(value, (str, bytes)):
        return "must be a list of vertex ids, not a single string"
    if len(value) == 0:
        return "requires at least one source vertex"
    return None


def _check_probability(value) -> Optional[str]:
    if not (0.0 < float(value) < 1.0):
        return f"must be in (0, 1), got {value!r}"
    return None


def _check_positive(value) -> Optional[str]:
    if int(value) < 1:
        return f"must be >= 1, got {value!r}"
    return None


def _check_edit_script(value) -> Optional[str]:
    if isinstance(value, (str, bytes)):
        return "must be a list of edit records, not a string"
    try:
        validate_edit_script(list(value))
    except GMineError as error:
        return str(error)
    return None


def _check_non_negative(value) -> Optional[str]:
    if float(value) < 0:
        return f"must be >= 0, got {value!r}"
    return None


def _community_arg(doc: str) -> ArgSpec:
    return ArgSpec(
        name="community",
        types=(int, str),
        default=None,
        doc=doc,
        normalize=_resolve_community,
    )


def _sources_arg() -> ArgSpec:
    return ArgSpec(
        name="sources",
        types=(list, tuple, set, frozenset),
        doc="query vertices (order and duplicates are canonicalized away)",
        validate=_check_sources,
        normalize=_normalize_sources,
    )


def _restart_arg() -> ArgSpec:
    return ArgSpec(
        name="restart_probability",
        types=(int, float),
        default=0.15,
        doc="probability of teleporting back to the sources each step",
        validate=_check_probability,
        normalize=lambda value, ctx: float(value),
    )


# --------------------------------------------------------------------------- #
# finalizers (op-level canonical restructuring)
# --------------------------------------------------------------------------- #
def _finalize_metrics(canonical: Dict[str, Any], ctx) -> Dict[str, Any]:
    # Collapse every tuning knob into the canonical metrics signature so
    # defaulted and explicit spellings share one cache entry; the session
    # engine's metrics seam builds the very same shape.
    return {
        "community": canonical["community"],
        "metrics": metrics_signature(
            hop_sample_size=canonical["hop_sample_size"],
            pagerank_damping=canonical["pagerank_damping"],
            top_k=canonical["top_k"],
            seed=canonical["seed"],
        ),
    }


def _finalize_inspect_edge(canonical: Dict[str, Any], ctx) -> Dict[str, Any]:
    # The underlying edge set is symmetric; order the pair.
    a, b = canonical["community_a"], canonical["community_b"]
    if a is not None and b is not None and repr(b) < repr(a):
        canonical["community_a"], canonical["community_b"] = b, a
    return canonical


def _check_path(value) -> Optional[str]:
    if not value.strip():
        return "must be a non-empty GPath query"
    return None


def _normalize_path(value, ctx: CanonicalizationContext):
    # Parse + unparse: one canonical spelling per query, so every way of
    # writing the same traversal shares one cache entry.  A QueryParseError
    # raised here propagates unwrapped, carrying its source span.
    return unparse(parse(value))


def _finalize_path(canonical: Dict[str, Any], ctx) -> Dict[str, Any]:
    # Compile against the dataset's tree: tree navigation is folded into
    # the plan, and queries that stay inside one community's subtree get
    # their ``community`` constant-folded out — which keys the cache entry
    # by that partition's Merkle sub-fingerprint, exactly like any other
    # community-scoped op.
    compiled = compile_query(parse(canonical["path"]), ctx.tree)
    finalized = {
        "path": canonical["path"],
        "community": compiled.community,
        "plan": compiled.plan,
    }
    # Multi-community scopes (``community(a, b)/...``) record the touched
    # partition labels so a sharded backend can route the plan point-to-point
    # when one shard owns them all.  Added only when present, so cache keys
    # for every single-community query are unchanged.
    if compiled.communities:
        finalized["communities"] = compiled.communities
    return finalized


# --------------------------------------------------------------------------- #
# planners + handlers (canonical args -> rich result)
# --------------------------------------------------------------------------- #
def _make_planner(operation: str, kernel: str):
    """``canonical args -> ComputePlan`` for one kernel-backed op."""
    return functools.partial(plan_for, operation, kernel)


def _run_planned(operation: str, ctx: OpContext, args: Mapping[str, Any]):
    """In-parent execution of a plannable op (kernel name == op name here).

    Handlers and process workers run the *same* plan through
    :func:`~repro.api.plans.run_plan`; only the scope resolver differs
    (live engine here, pre-loaded store there), so every backend produces
    identical results by construction.
    """
    plan = plan_for(operation, operation, args)
    return run_plan(plan, ctx.community_subgraph, ctx.prepared_for)


def _run_metrics(ctx: OpContext, args: Mapping[str, Any]):
    return _run_planned("metrics", ctx, args)


def _run_rwr(ctx: OpContext, args: Mapping[str, Any]):
    return _run_planned("rwr", ctx, args)


def _run_connection_subgraph(ctx: OpContext, args: Mapping[str, Any]):
    return _run_planned("connection_subgraph", ctx, args)


def _run_path(ctx: OpContext, args: Mapping[str, Any]):
    plan = args["plan"]
    if isinstance(plan, Const):
        # Tree-level queries fold to a constant at compile time; they can
        # be answered without materialising any scope subgraph, so a
        # store-only dataset (no graph attached) still serves them.
        return evaluate_path(None, plan)
    return _run_planned_kernel("query.path", "path", ctx, args)


def _run_planned_kernel(operation: str, kernel: str, ctx: OpContext,
                        args: Mapping[str, Any]):
    plan = plan_for(operation, kernel, args)
    return run_plan(plan, ctx.community_subgraph, ctx.prepared_for)


def _run_connectivity(ctx: OpContext, args: Mapping[str, Any]):
    return ctx.engine.connectivity_edges(ctx.target(args["community"]))


def _run_inspect_edge(ctx: OpContext, args: Mapping[str, Any]):
    return ctx.engine.inspect_connectivity_edge(
        args["community_a"], args["community_b"]
    )


# --------------------------------------------------------------------------- #
# session-scoped handlers (Protocol v2)
# --------------------------------------------------------------------------- #
def encode_step_value(value: Any) -> Any:
    """Flatten one session-step result to JSON-safe primitives."""
    if value is None:
        return None
    if hasattr(value, "visible_nodes"):  # TomahawkContext
        return {
            "focus": value.focus.label,
            "children": [node.label for node in value.children],
            "siblings": [node.label for node in value.siblings],
            "ancestors": [node.label for node in value.ancestors],
            "size": value.size,
        }
    if hasattr(value, "as_dict"):  # SubgraphMetrics
        return value.as_dict()
    if hasattr(value, "leaf_label"):  # LabelQueryResult
        return {
            "vertex": value.vertex,
            "leaf": value.leaf_label,
            "path": value.path_labels,
        }
    if hasattr(value, "edges") and hasattr(value, "community_a"):
        return {
            "community_a": value.community_a,
            "community_b": value.community_b,
            "num_edges": len(value.edges),
            "edges": sorted(([u, v, w] for u, v, w in value.edges), key=repr),
        }
    if hasattr(value, "community_label"):  # Bookmark
        return {"name": value.name, "community": value.community_label}
    return str(value)


def _run_session_create(ctx: ServiceOpContext, args: Mapping[str, Any]):
    session = ctx.service.open_session(
        dataset=args["dataset"],
        ttl=args["ttl"],
        focus=args["focus"],
        name=args["name"],
    )
    return {"session": session.info()}


def _run_session_restore(ctx: ServiceOpContext, args: Mapping[str, Any]):
    session = ctx.service.restore_session(
        dict(args["state"]), dataset=args["dataset"]
    )
    return {"session": session.info()}


def _run_session_resume(ctx: ServiceOpContext, args: Mapping[str, Any]):
    return {"session": ctx.service.resume_session(args["session_id"]).info()}


def _run_session_describe(ctx: ServiceOpContext, args: Mapping[str, Any]):
    # Peek, don't resume: describing a session is read-only and must not
    # refresh its TTL or touch counter — that idempotence is also what
    # makes the payload byte-identical across repeated calls/transports.
    session = ctx.service.peek_session(args["session_id"])
    return {"session": session.info(), "state": session.state_dict()}


def _run_session_step(ctx: ServiceOpContext, args: Mapping[str, Any]):
    session = ctx.service.resume_session(args["session_id"])
    value = session.recording.apply_step(args["action"], dict(args["args"]))
    return {
        "session": session.info(),
        "action": args["action"],
        "result": encode_step_value(value),
    }


def _run_session_close(ctx: ServiceOpContext, args: Mapping[str, Any]):
    ctx.service.close_session(args["session_id"])
    return {"closed": args["session_id"]}


def _run_session_list(ctx: ServiceOpContext, args: Mapping[str, Any]):
    return {"sessions": ctx.service.sessions.active_ids()}


# --------------------------------------------------------------------------- #
# service-scoped handlers: the dataset write path + change feeds
# --------------------------------------------------------------------------- #
def _run_dataset_apply(ctx: ServiceOpContext, args: Mapping[str, Any]):
    return ctx.service.apply_dataset(
        args["dataset"],
        [dict(edit) for edit in args["script"]],
        refresh_rwr=args["refresh_rwr"],
    )


def _run_dataset_ingest(ctx: ServiceOpContext, args: Mapping[str, Any]):
    return ctx.service.ingest_dataset(
        name=args["name"],
        path=args["path"],
        fanout=args["fanout"],
        levels=args["levels"],
        seed=args["seed"],
        store=args["store"],
    )


def _run_dataset_subscribe(ctx: ServiceOpContext, args: Mapping[str, Any]):
    return ctx.service.subscribe(
        dataset=args["dataset"],
        since=args["since"],
        timeout=args["timeout"],
        community=args["community"],
    )


def _session_mining_handler(target_op: str):
    """Delegate a session-context variant to its dataset op.

    The session supplies the dataset and — when the caller does not name a
    ``community`` explicitly — the scope: its currently focused community.
    The delegation runs through the service's ordinary dataset dispatch,
    so the kernel executes on the configured backend and shares cache
    entries with direct calls for the same community by construction.
    """

    def run(ctx: ServiceOpContext, args: Mapping[str, Any]):
        args = dict(args)
        session = ctx.service.resume_session(args.pop("session_id"))
        if args.get("community") is None:
            args["community"] = session.engine.focus.label
        value, cached, degraded, fingerprint = ctx.service.dispatch_in_session(
            session, target_op, args
        )
        return DelegatedResult(value, cached, fingerprint, degraded)

    return run


# --------------------------------------------------------------------------- #
# pagination + encoders (rich result -> JSON payload)
# --------------------------------------------------------------------------- #
def validate_page(page: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Check a request's ``page`` block; returns a plain dict (may be empty)."""
    if page is None:
        return {}
    if not isinstance(page, Mapping):
        raise InvalidArgumentError(f"page must be an object, got {page!r}")
    allowed = {"top_k", "offset", "limit"}
    unknown = sorted(set(page) - allowed)
    if unknown:
        raise InvalidArgumentError(
            f"page got unknown key(s) {unknown}; accepts {sorted(allowed)}"
        )
    out: Dict[str, Any] = {}
    for key in allowed:
        if key in page:
            value = page[key]
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise InvalidArgumentError(
                    f"page.{key} must be a non-negative integer, got {value!r}"
                )
            out[key] = value
    return out


def _slice(items: List, page: Mapping[str, Any], default_limit: int):
    """offset+limit pagination over a fully-ordered list."""
    offset = page.get("offset", 0)
    limit = page.get("limit", default_limit)
    window = items[offset : offset + limit]
    meta = {"offset": offset, "limit": limit, "total": len(items)}
    return window, meta


def _encode_metrics(value, page: Mapping[str, Any]):
    return value.as_dict(), None


def _encode_rwr(value, page: Mapping[str, Any]):
    top_k = page.get("top_k", page.get("limit", DEFAULT_TOP_K))
    ranked = value.top(len(value.scores))
    payload = {
        "iterations": value.iterations,
        "converged": value.converged,
        "restart_probability": value.restart_probability,
        "num_scores": len(value.scores),
        "scores": [[node, score] for node, score in ranked[:top_k]],
    }
    return payload, {"top_k": top_k, "total": len(value.scores)}


def _encode_connection_subgraph(value, page: Mapping[str, Any]):
    top_k = page.get("top_k", DEFAULT_TOP_K)
    subgraph = value.subgraph
    goodness = sorted(value.goodness.items(), key=lambda pair: (-pair[1], repr(pair[0])))
    payload = {
        "nodes": sorted(subgraph.nodes(), key=repr),
        "edges": sorted(
            ([u, v, w] for u, v, w in subgraph.edges()), key=repr
        ),
        "sources": list(value.sources),
        "budget": value.budget,
        "num_nodes": value.num_nodes,
        "num_paths": len(value.paths),
        "goodness": [[node, score] for node, score in goodness[:top_k]],
    }
    return payload, None


def _encode_path(value, page: Mapping[str, Any]):
    """Flatten a :class:`~repro.query.evaluate.PathResult` by kind.

    ``items`` is always present (the stream field), even for count/metrics
    results where it stays empty.
    """
    payload: Dict[str, Any] = {
        "kind": value.kind,
        "count": value.count,
        "items": [],
    }
    meta = None
    if value.kind == "nodes":
        window, meta = _slice(list(value.items), page, DEFAULT_LIMIT)
        payload["items"] = window
    elif value.kind == "scores":
        rows = [[node, score] for node, score in value.scores]
        window, meta = _slice(rows, page, DEFAULT_LIMIT)
        payload["items"] = window
        payload["rwr"] = {
            "iterations": value.iterations,
            "converged": value.converged,
            "restart_probability": value.restart_probability,
        }
    elif value.kind == "metrics":
        payload["metrics"] = value.metrics
    return payload, meta


def _encode_connectivity(value, page: Mapping[str, Any]):
    rows = sorted(
        (
            {
                "source": edge.source,
                "target": edge.target,
                "edge_count": edge.edge_count,
                "total_weight": edge.total_weight,
            }
            for edge in value
        ),
        key=lambda row: (row["source"], row["target"]),
    )
    window, meta = _slice(rows, page, DEFAULT_LIMIT)
    return {"edges": window}, meta


def _encode_inspect_edge(value, page: Mapping[str, Any]):
    edges = sorted(([u, v, w] for u, v, w in value.edges), key=repr)
    window, meta = _slice(edges, page, DEFAULT_LIMIT)
    payload = {
        "community_a": value.community_a,
        "community_b": value.community_b,
        "num_edges": len(value.edges),
        "edges": window,
    }
    return payload, meta


def encode_result(spec: OpSpec, value: Any, page: Optional[Mapping[str, Any]] = None):
    """Flatten one rich result via its op's encoder.

    Returns ``(payload, page_meta)`` where ``page_meta`` is ``None`` for
    unpaginated payloads.
    """
    checked = validate_page(page)
    if spec.encoder is None:
        return value, None
    return spec.encoder(value, checked)


# --------------------------------------------------------------------------- #
# the table
# --------------------------------------------------------------------------- #
def _build_dataset_specs() -> List[OpSpec]:
    """Every dataset-scoped operation, fully declared."""
    return [
            OpSpec(
                name="metrics",
                doc="the paper's five-metric suite for one community subgraph",
                cost="expensive",
                args=(
                    _community_arg("community to measure (None = whole scope)"),
                    ArgSpec(
                        "hop_sample_size", (int,), default=None,
                        doc="BFS sources sampled for hop metrics (None = exact)",
                        validate=_check_positive,
                    ),
                    ArgSpec(
                        "pagerank_damping", (int, float), default=0.85,
                        doc="PageRank damping factor",
                        validate=_check_probability,
                        normalize=lambda value, ctx: float(value),
                    ),
                    ArgSpec(
                        "top_k", (int,), default=10,
                        doc="how many top-PageRank vertices to report",
                        validate=_check_positive,
                    ),
                    ArgSpec(
                        "seed", (int,), default=0, allow_none=True,
                        doc="hop-sampling RNG seed (None = nondeterministic)",
                    ),
                ),
                finalize=_finalize_metrics,
                handler=_run_metrics,
                encoder=_encode_metrics,
                planner=_make_planner("metrics", "metrics"),
                # Pure function of the community's induced subgraph.
                partition_arg="community",
                merge=MergeSpec(
                    "route",
                    doc="community-scoped metrics route whole to the owning "
                        "shard; cross-shard scopes run at the parent",
                ),
            ),
            OpSpec(
                name="rwr",
                doc="random-walk-with-restart steady state over a community",
                cost="expensive",
                args=(
                    _sources_arg(),
                    _community_arg("community scope (None = full graph)"),
                    _restart_arg(),
                    ArgSpec(
                        "solver", (str,), default="power",
                        doc="RWR solver",
                        choices=("power", "exact"),
                    ),
                ),
                handler=_run_rwr,
                encoder=_encode_rwr,
                planner=_make_planner("rwr", "rwr"),
                stream=StreamSpec(
                    field="scores",
                    page_key="top_k",
                    total=lambda value: len(value.scores),
                ),
                # The walk never leaves the community's induced subgraph.
                partition_arg="community",
                merge=MergeSpec(
                    "scatter",
                    doc="scoped walks route to the owning shard; whole-graph "
                        "power iteration scatters the transition matvec "
                        "across shard row slices and gathers bit-identically "
                        "at the parent",
                ),
            ),
            OpSpec(
                name="connection_subgraph",
                doc="multi-source connection-subgraph extraction (CePS)",
                cost="expensive",
                args=(
                    _sources_arg(),
                    _community_arg("community scope (None = full graph)"),
                    ArgSpec(
                        "budget", (int,), default=30,
                        doc="maximum vertices in the extract",
                        validate=_check_positive,
                    ),
                    _restart_arg(),
                ),
                handler=_run_connection_subgraph,
                encoder=_encode_connection_subgraph,
                planner=_make_planner(
                    "connection_subgraph", "connection_subgraph"
                ),
                stream=StreamSpec(
                    field="goodness",
                    page_key="top_k",
                    total=lambda value: len(value.goodness),
                ),
                # CePS extracts within the community's induced subgraph.
                partition_arg="community",
                merge=MergeSpec(
                    "route",
                    doc="community-scoped extraction routes whole to the "
                        "owning shard",
                ),
            ),
            OpSpec(
                name="query.path",
                doc="run a GPath traversal (axes over the G-Tree composed "
                    "with hops/edge filters and rwr/metrics terminals), "
                    "compiled to a fused compute plan",
                cost="expensive",
                args=(
                    ArgSpec(
                        "path", (str,),
                        doc="the GPath query text, e.g. "
                            "community(s0)/members/hops(2)/"
                            "rwr(sources=[3])/top(10)",
                        validate=_check_path,
                        normalize=_normalize_path,
                    ),
                ),
                finalize=_finalize_path,
                handler=_run_path,
                encoder=_encode_path,
                planner=_make_planner("query.path", "path"),
                stream=StreamSpec(
                    field="items",
                    page_key="limit",
                    total=lambda value: value.stream_total,
                ),
                # The compiler constant-folds queries that stay inside one
                # community's subtree to that community, so their cache
                # entries ride the partition Merkle sub-fingerprints.
                partition_arg="community",
                merge=MergeSpec(
                    "route",
                    doc="single-community plans (including multi-community "
                        "scopes one shard owns) route point-to-point; "
                        "everything else runs at the parent",
                ),
            ),
            OpSpec(
                name="connectivity",
                doc="connectivity edges among a community's children",
                cost="cheap",
                args=(
                    _community_arg("parent community (None = tree root)"),
                ),
                handler=_run_connectivity,
                encoder=_encode_connectivity,
                stream=StreamSpec(
                    field="edges",
                    page_key="limit",
                    total=lambda value: len(value),
                ),
                # connectivity_among_children is hashed into the parent
                # community's own Merkle sub-fingerprint.
                partition_arg="community",
            ),
            OpSpec(
                name="inspect_edge",
                doc="original graph edges behind one connectivity edge",
                cost="cheap",
                args=(
                    ArgSpec(
                        "community_a", (int, str),
                        doc="first community (id or label)",
                        normalize=_resolve_community,
                    ),
                    ArgSpec(
                        "community_b", (int, str),
                        doc="second community (id or label)",
                        normalize=_resolve_community,
                    ),
                ),
                finalize=_finalize_inspect_edge,
                handler=_run_inspect_edge,
                encoder=_encode_inspect_edge,
                stream=StreamSpec(
                    field="edges",
                    page_key="limit",
                    total=lambda value: len(value.edges),
                ),
            ),
    ]


def _session_id_arg() -> ArgSpec:
    return ArgSpec(
        name="session_id", types=(str,),
        doc="id of a live session (create one with session.create)",
    )


def _session_variant(spec: OpSpec) -> OpSpec:
    """The session-context twin of one dataset-scoped mining op.

    Same argument schema plus a leading ``session_id``; the ``community``
    argument defaults to the session's focused community instead of the
    widest scope.  Not cacheable at the envelope level — the result
    depends on live session state — but the delegated dataset dispatch
    underneath still serves and feeds the shared result cache.
    """
    args = tuple(
        dataclasses.replace(
            arg, doc="community scope (None = the session's focused community)"
        )
        if arg.name == "community"
        else arg
        for arg in spec.args
    )
    return OpSpec(
        name=f"session.{spec.name}",
        doc=f"{spec.doc}, in a session's context (focus = default scope)",
        cacheable=False,
        cost=spec.cost,
        scope="session",
        args=(_session_id_arg(),) + args,
        handler=_session_mining_handler(spec.name),
        encoder=spec.encoder,
        # Delegated results stream exactly like their dataset-scoped twins:
        # same stream field, and cursors keyed by the same partition
        # sub-fingerprint (the session's focus fills a defaulted community).
        stream=spec.stream,
        partition_arg=spec.partition_arg,
    )


def _build_session_specs(dataset_specs: List[OpSpec]) -> List[OpSpec]:
    """The session surface: lifecycle ops + session-context mining variants."""
    by_name = {spec.name: spec for spec in dataset_specs}
    lifecycle = [
        OpSpec(
            name="session.create",
            doc="open a fresh exploration session over a dataset",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(
                ArgSpec("dataset", (str,), default=None,
                        doc="dataset to explore (None = the only/default one)"),
                ArgSpec("ttl", (int, float), default=None,
                        doc="inactivity expiry in seconds (None = server default)"),
                ArgSpec("focus", (int, str), default=None,
                        doc="community to focus first (id or label)"),
                ArgSpec("name", (str,), default="session",
                        doc="human-readable session name"),
            ),
            handler=_run_session_create,
        ),
        OpSpec(
            name="session.restore",
            doc="recreate a session from a serialised state payload",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(
                ArgSpec("state", (dict,),
                        doc="a session state_dict payload (session.describe)"),
                ArgSpec("dataset", (str,), default=None,
                        doc="dataset override (None = the state's dataset)"),
            ),
            handler=_run_session_restore,
        ),
        OpSpec(
            name="session.resume",
            doc="touch a live session, refreshing its TTL",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(_session_id_arg(),),
            handler=_run_session_resume,
        ),
        OpSpec(
            name="session.describe",
            doc="a session's summary and serialisable state (read-only peek)",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(_session_id_arg(),),
            handler=_run_session_describe,
        ),
        OpSpec(
            name="session.step",
            doc="apply one exploration step (focus, drill, query, bookmark)",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(
                _session_id_arg(),
                ArgSpec("action", (str,),
                        doc="step action name (see ExplorationSession.step_actions)"),
                ArgSpec("args", (dict,), default=None,
                        doc="arguments of the step action",
                        normalize=lambda value, ctx: {} if value is None else dict(value)),
            ),
            handler=_run_session_step,
        ),
        OpSpec(
            name="session.close",
            doc="end a session explicitly (idempotent)",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(_session_id_arg(),),
            handler=_run_session_close,
        ),
        OpSpec(
            name="session.list",
            doc="ids of every live session",
            cacheable=False,
            cost="cheap",
            scope="session",
            args=(),
            handler=_run_session_list,
        ),
    ]
    variants = [
        _session_variant(by_name[name])
        for name in ("metrics", "rwr", "connection_subgraph")
    ]
    return lifecycle + variants


def _build_service_specs() -> List[OpSpec]:
    """The mutable-dataset surface: the write path and its change feed."""
    return [
        OpSpec(
            name="dataset.apply",
            doc="apply a batched edit script to a mutable dataset "
                "(copy-on-write; partition-scoped cache invalidation)",
            cacheable=False,
            cost="expensive",
            scope="service",
            args=(
                ArgSpec("dataset", (str,), default=None,
                        doc="dataset to edit (None = the only/default one)"),
                ArgSpec(
                    "script", (list, tuple),
                    doc="edit records: {'action': add_node|remove_node|"
                        "add_edge|remove_edge|update_node_attrs, ...}",
                    validate=_check_edit_script,
                    normalize=lambda value, ctx: [dict(edit) for edit in value],
                ),
                ArgSpec(
                    "refresh_rwr", (bool,), default=False,
                    doc="warm-refresh remembered RWR steady states onto the "
                        "edited graph (within-tolerance; cold solve is the "
                        "default and stays byte-exact)",
                ),
            ),
            handler=_run_dataset_apply,
        ),
        OpSpec(
            name="dataset.ingest",
            doc="load a user edge-list/CSV/JSON graph, build its G-Tree "
                "partition hierarchy, and register it as a live dataset",
            cacheable=False,
            cost="expensive",
            scope="service",
            args=(
                ArgSpec("path", (str,),
                        doc="graph file to load (.csv, .json, or "
                            "whitespace edge list)"),
                ArgSpec("name", (str,),
                        doc="dataset name to register (must be unused)"),
                ArgSpec(
                    "fanout", (int,), default=5,
                    doc="G-Tree fanout (communities per level)",
                    validate=lambda value: "must be >= 2"
                    if int(value) < 2 else None,
                ),
                ArgSpec(
                    "levels", (int,), default=5,
                    doc="maximum G-Tree depth",
                    validate=_check_positive,
                ),
                ArgSpec("seed", (int,), default=0,
                        doc="partitioner RNG seed (fixed = reproducible tree)"),
                ArgSpec("store", (str,), default=None,
                        doc="persist the built G-Tree to this store file and "
                            "serve from it (None = keep in memory)"),
            ),
            handler=_run_dataset_ingest,
        ),
        OpSpec(
            name="dataset.subscribe",
            doc="long-poll a dataset's change feed for push invalidations "
                "(new root + changed partition sub-fingerprints)",
            cacheable=False,
            cost="cheap",
            scope="service",
            args=(
                ArgSpec("dataset", (str,), default=None,
                        doc="dataset to watch (None = the only/default one)"),
                ArgSpec(
                    "since", (int,), default=0,
                    doc="last event sequence number already seen "
                        "(0 = only future events)",
                    validate=_check_non_negative,
                ),
                ArgSpec(
                    "timeout", (int, float), default=0.0,
                    doc="seconds to long-poll when no event is pending "
                        "(0 = return immediately; server-capped)",
                    validate=_check_non_negative,
                    normalize=lambda value, ctx: float(value),
                ),
                ArgSpec(
                    "community", (int, str), default=None,
                    doc="only deliver events touching this community "
                        "(None = any change)",
                    normalize=_resolve_community,
                ),
            ),
            handler=_run_dataset_subscribe,
        ),
    ]


def build_default_registry() -> OperationRegistry:
    """Every operation of GMine Protocol v2: dataset, session + service scope."""
    dataset_specs = _build_dataset_specs()
    return OperationRegistry(
        dataset_specs
        + _build_session_specs(dataset_specs)
        + _build_service_specs()
    )


#: The shared default table; services copy nothing — specs are frozen.
DEFAULT_REGISTRY = build_default_registry()

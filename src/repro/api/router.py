"""Transport-neutral routing for GMine Protocol v2.

The :class:`ProtocolRouter` maps ``(method, path, body)`` triples onto the
service — exactly the surface the HTTP front-ends expose — and returns
``(status, payload)`` pairs of plain JSON-safe data.  Every transport
calls it: :mod:`repro.api.http` (threaded) and :mod:`repro.api.aio`
(asyncio) feed it real sockets, and the in-process transport of
:class:`~repro.api.client.GMineClient` calls :meth:`ProtocolRouter.handle`
directly and serialises the payload with the very same :func:`dumps`.
That shared path is the parity guarantee: the bytes a client sees cannot
depend on the transport.

Protocol v2 collapses **all** dispatch onto the operation registry: the
session URLs below are thin wire-compatibility aliases that construct a
registry request (``session.create``, ``session.step``, …) and route it
through the very same :meth:`query` path as dataset operations — there is
no session dispatch outside the registry.  The ``/v1/stream`` route adds
resumable cursor streaming for ops that declare a
:class:`~repro.api.registry.StreamSpec`.

Routes::

    POST   /v1/query                 one Request envelope -> one Response
    POST   /v1/stream                one Request envelope -> chunked Responses
                                     (cursor + next_cursor per chunk)
    POST   /v1/batch                 {"requests": [...]} -> {"responses": [...]}
    GET    /v1/ops                   the registry's op table (schemas included)
    GET    /v1/stats                 cache / backend / compute / session stats
    GET    /v1/datasets              the dataset table (kind, fingerprint, paths)
    POST   /v1/datasets/<name>/reload  hot-reload a dataset from its file
    POST   /v1/datasets/<name>/apply   alias of op dataset.apply (edit script)
    POST   /v1/subscribe             alias of op dataset.subscribe (long-poll
                                     change feed: events after ``since``)
    GET    /v1/sessions              alias of op session.list
    POST   /v1/sessions              alias of session.create / session.restore
    GET    /v1/sessions/<id>         alias of session.describe
    POST   /v1/sessions/<id>/resume  alias of session.resume
    POST   /v1/sessions/<id>/step    alias of session.step
    DELETE /v1/sessions/<id>         alias of session.close
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import (
    GMineError,
    InvalidArgumentError,
    ProtocolError,
    StaleCursorError,
)
from .ops import encode_result
from .wire import (
    PROTOCOL,
    Request,
    Response,
    ResultCursor,
    WireError,
    error_code_for,
    http_status_for,
    request_digest,
)

JsonDict = Dict[str, Any]
Handled = Tuple[int, JsonDict]
HandledStream = Tuple[int, Iterable[JsonDict]]

#: Items per streamed chunk when the request names no ``chunk_size``.
DEFAULT_STREAM_CHUNK = 500


def dumps(payload: Mapping[str, Any]) -> bytes:
    """The canonical protocol serialisation (every transport uses this).

    Keys are sorted and separators fixed so the same payload always yields
    the same bytes, whatever dict-construction order produced it.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    ).encode("utf-8")


def error_payload(error: BaseException) -> Handled:
    """Flatten any exception into a structured ``(status, envelope)`` pair.

    Shared by the router and both HTTP front-ends (which use it for
    transport-level failures like auth and rate-limit rejections), so
    every failure path emits the same canonical envelope shape.
    """
    code = error_code_for(error)
    return (
        http_status_for(code),
        {
            "protocol": PROTOCOL,
            "ok": False,
            "error": WireError.from_exception(error).to_dict(),
        },
    )


def _not_found(path: str) -> Handled:
    return (
        404,
        {
            "protocol": PROTOCOL,
            "ok": False,
            "error": {
                "code": "PROTOCOL_ERROR",
                "type": "ProtocolError",
                "message": f"no route for {path!r}",
            },
        },
    )


class ProtocolRouter:
    """Bind a :class:`GMineService` to the protocol surface."""

    def __init__(self, service) -> None:
        self.service = service

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Handled:
        """Route one call; never raises — failures become error envelopes."""
        method = method.upper()
        parts = [part for part in path.split("/") if part]
        try:
            # Health endpoints live outside /v1: probes (and load
            # balancers) must reach them without protocol knowledge, and
            # front-ends exempt them from admission control.
            if parts == ["healthz"] and method == "GET":
                return self.healthz()
            if parts == ["readyz"] and method == "GET":
                return self.readyz()
            if parts[:1] != ["v1"]:
                return _not_found(path)
            tail = parts[1:]
            if tail == ["query"] and method == "POST":
                return self.query(body or {})
            if tail == ["batch"] and method == "POST":
                return self.batch(body or {})
            if tail == ["ops"] and method == "GET":
                return self.ops()
            if tail == ["stats"] and method == "GET":
                return self.stats()
            if tail == ["datasets"] and method == "GET":
                return self.datasets()
            if (
                len(tail) == 3
                and tail[0] == "datasets"
                and tail[2] == "reload"
                and method == "POST"
            ):
                return self.reload_dataset(tail[1])
            if (
                len(tail) == 3
                and tail[0] == "datasets"
                and tail[2] == "apply"
                and method == "POST"
            ):
                return self.apply_dataset(tail[1], body or {})
            if tail == ["subscribe"] and method == "POST":
                return self.subscribe(body or {})
            if tail == ["sessions"]:
                if method == "GET":
                    return self.list_sessions()
                if method == "POST":
                    return self.create_session(body or {})
            if len(tail) == 2 and tail[0] == "sessions":
                if method == "GET":
                    return self.session_state(tail[1])
                if method == "DELETE":
                    return self.close_session(tail[1])
            if len(tail) == 3 and tail[0] == "sessions" and method == "POST":
                if tail[2] == "resume":
                    return self.resume_session(tail[1])
                if tail[2] == "step":
                    return self.session_step(tail[1], body or {})
            return _not_found(path)
        except Exception as error:  # noqa: BLE001 — server boundary: every
            # failure, taxonomy or not, must leave as a structured envelope
            # (error_code_for maps unknown types to INTERNAL) rather than a
            # dropped connection or a raw traceback.
            return error_payload(error)

    def handle_stream(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> HandledStream:
        """Route one possibly-streaming call; returns ``(status, payloads)``.

        ``/v1/stream`` yields one payload per chunk; every other route
        yields exactly the single payload :meth:`handle` would return, so
        a front-end may funnel its whole surface through this entry point.
        """
        parts = [part for part in path.split("/") if part]
        if parts == ["v1", "stream"] and method.upper() == "POST":
            try:
                return self.stream(body or {})
            except Exception as error:  # noqa: BLE001 — same boundary as handle()
                status, payload = error_payload(error)
                return status, [payload]
        status, payload = self.handle(method, path, body)
        return status, [payload]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, body: Mapping[str, Any]) -> Handled:
        response = self._run_query(body)
        return response.status, response.to_dict()

    def batch(self, body: Mapping[str, Any]) -> Handled:
        """Route a request list through :meth:`GMineService.batch`.

        The service's batch machinery — identical-request dedup and the
        worker pool — serves the remote surface too; a malformed envelope
        becomes a failure Response in place, never sinking its neighbours.
        Session-scoped requests ride along like any other: an expired
        session inside the batch yields a ``SESSION_EXPIRED`` envelope for
        that entry alone.
        """
        requests = body.get("requests")
        if not isinstance(requests, (list, tuple)):
            raise ProtocolError(
                "batch body must be {'requests': [...]}, got "
                f"{dict(body)!r}"
            )
        parsed: list = []  # Request for well-formed entries, Response otherwise
        for item in requests:
            try:
                parsed.append(Request.from_dict(item))
            except Exception as error:  # noqa: BLE001 — isolate, don't sink
                parsed.append(Response.failure(error))
        well_formed = [entry for entry in parsed if isinstance(entry, Request)]
        results = iter(
            self.service.batch(
                [
                    {
                        "op": entry.op,
                        "args": entry.args,
                        "dataset": entry.dataset,
                        "deadline_ms": entry.deadline_ms,
                    }
                    for entry in well_formed
                ]
            )
            if well_formed
            else []
        )
        responses = [
            entry if isinstance(entry, Response)
            else self._result_to_response(entry, next(results))
            for entry in parsed
        ]
        # The batch call itself succeeds even when members fail: isolation
        # is per-request, mirroring GMineService.batch.
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "responses": [response.to_dict() for response in responses],
        }

    def _run_query(self, payload: Mapping[str, Any]) -> Response:
        try:
            request = Request.from_dict(payload)
        except GMineError as error:
            return Response.failure(error)
        result = self.service.execute(
            {
                "op": request.op,
                "args": request.args,
                "dataset": request.dataset,
                "deadline_ms": request.deadline_ms,
            }
        )
        return self._result_to_response(request, result)

    def _result_to_response(self, request: Request, result) -> Response:
        """Flatten one service ``QueryResult`` into a wire envelope."""
        if not result.ok:
            return Response(
                ok=False,
                op=request.op,
                id=request.id,
                error=WireError(
                    code=result.code or "INTERNAL",
                    message=result.error,
                    type=result.error_type,
                    details=result.error_details,
                ),
            )
        spec = self.service.registry.get(request.op)
        try:
            encoded, page_meta = encode_result(spec, result.value, request.page)
        except GMineError as error:
            return Response.failure(error, op=request.op, request_id=request.id)
        return Response(
            ok=True,
            op=request.op,
            result=encoded,
            cached=result.cached,
            degraded=getattr(result, "degraded", False),
            page=page_meta,
            id=request.id,
        )

    # ------------------------------------------------------------------ #
    # streaming cursors
    # ------------------------------------------------------------------ #
    def stream(self, body: Mapping[str, Any]) -> HandledStream:
        """Serve one streamable request as resumable cursor chunks.

        The full result is computed (or served from the shared cache)
        exactly as ``/v1/query`` would, encoded with the pagination knob
        widened to the complete vector, and the encoded stream field is
        sliced into ``chunk_size`` pages.  Each chunk envelope carries
        ``cursor`` (its own position) and ``next_cursor`` (the resumption
        token); reassembling every chunk reproduces the one-shot payload
        byte for byte.  A resumed cursor must match the original request
        (digest) and the dataset's **current** fingerprint — a content-
        changing hot-reload between pages surfaces as ``CURSOR_EXPIRED``
        rather than a silently inconsistent vector.
        """
        request = Request.from_dict(body)
        spec = self.service.registry.get(request.op)
        if spec.stream is None:
            streamable = sorted(s.name for s in self.service.registry if s.stream)
            raise ProtocolError(
                f"operation {request.op!r} does not stream; "
                f"streamable operations: {streamable}"
            )
        # Partition-scoped ops pin the community's Merkle sub-fingerprint
        # rather than the root, so a cursor keeps streaming across edits
        # that did not touch its community; a touched community (or any
        # change, for root-scoped ops) expires the cursor below.
        fingerprint = self.service.stream_fingerprint(
            request.dataset, request.op, request.args
        )
        digest = request_digest(request)
        offset = 0
        chunk_size = request.chunk_size
        if request.cursor is not None:
            cursor = ResultCursor.from_token(request.cursor)
            if cursor.op != request.op or cursor.request_digest != digest:
                raise ProtocolError(
                    "stream cursor does not belong to this request; resume "
                    "with the same op, dataset, args and page it was issued for"
                )
            if cursor.fingerprint != fingerprint:
                raise StaleCursorError(
                    f"stream cursor was issued under dataset fingerprint "
                    f"{cursor.fingerprint[:12]}… but "
                    f"{request.dataset or 'the dataset'} now has "
                    f"{fingerprint[:12]}… (hot-reloaded?); restart the stream"
                )
            offset = cursor.offset
            chunk_size = chunk_size if chunk_size is not None else cursor.chunk_size
        if chunk_size is None:
            chunk_size = DEFAULT_STREAM_CHUNK

        result = self.service.execute(
            {
                "op": request.op,
                "args": request.args,
                "dataset": request.dataset,
                "deadline_ms": request.deadline_ms,
            }
        )
        if not result.ok:
            response = self._result_to_response(request, result)
            return response.status, [response.to_dict()]
        if result.fingerprint is not None and result.fingerprint != fingerprint:
            # The dataset was swapped between the fingerprint read above
            # and the dispatch: the payload belongs to the *new* snapshot.
            # A resumed cursor pinned the old content — expire it rather
            # than mix versions; a fresh stream simply stamps its cursors
            # with the snapshot that actually produced the bytes.
            if request.cursor is not None:
                raise StaleCursorError(
                    f"dataset content changed while this page was being "
                    f"computed ({fingerprint[:12]}… -> "
                    f"{result.fingerprint[:12]}…); restart the stream"
                )
            fingerprint = result.fingerprint
        page = dict(request.page) if request.page else {}
        page.setdefault(spec.stream.page_key, spec.stream.total(result.value))
        payload, _ = encode_result(spec, result.value, page)
        items = payload[spec.stream.field]
        if offset > len(items):
            raise InvalidArgumentError(
                f"stream cursor offset {offset} is past the end of the "
                f"{len(items)}-item stream"
            )
        return 200, self._stream_chunks(
            request, spec, payload, items, offset, chunk_size,
            fingerprint, digest, cached=result.cached,
        )

    def _stream_chunks(
        self,
        request: Request,
        spec,
        payload: JsonDict,
        items: List[Any],
        offset: int,
        chunk_size: int,
        fingerprint: str,
        digest: str,
        cached: bool,
    ) -> Iterator[JsonDict]:
        """Yield chunk envelopes over an already-encoded payload.

        Pure slicing — the heavy dispatch happened before the generator was
        handed out, so iteration cannot fail mid-stream.
        """
        field = spec.stream.field
        total = len(items)
        position = offset
        base = ResultCursor(
            op=request.op,
            fingerprint=fingerprint,
            request_digest=digest,
            offset=0,
            chunk_size=chunk_size,
        )
        while True:
            window = items[position : position + chunk_size]
            next_position = position + len(window)
            exhausted = next_position >= total
            chunk = dict(payload)
            chunk[field] = window
            yield Response(
                ok=True,
                op=request.op,
                result=chunk,
                cached=cached,
                page={
                    "field": field,
                    "offset": position,
                    "count": len(window),
                    "total": total,
                },
                id=request.id,
                cursor=base.advanced(position).to_token(),
                next_cursor=(
                    None if exhausted else base.advanced(next_position).to_token()
                ),
            ).to_dict()
            if exhausted:
                return
            position = next_position

    # ------------------------------------------------------------------ #
    # registry + stats
    # ------------------------------------------------------------------ #
    def ops(self) -> Handled:
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "ops": self.service.registry.describe(),
        }

    def stats(self) -> Handled:
        return 200, {"protocol": PROTOCOL, "ok": True, "stats": self.service.stats()}

    # ------------------------------------------------------------------ #
    # health probes
    # ------------------------------------------------------------------ #
    def healthz(self) -> Handled:
        """Liveness: 200 whenever the service object answers at all."""
        health = self.service.health()
        return 200, {"protocol": PROTOCOL, "ok": True, "health": health}

    def readyz(self) -> Handled:
        """Readiness: 503 while no dataset is loaded or a breaker is open."""
        health = self.service.health()
        status = 200 if health.get("ready") else 503
        return status, {
            "protocol": PROTOCOL,
            "ok": bool(health.get("ready")),
            "health": health,
        }

    # ------------------------------------------------------------------ #
    # dataset lifecycle
    # ------------------------------------------------------------------ #
    def datasets(self) -> Handled:
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "datasets": self.service.describe_datasets(),
        }

    def reload_dataset(self, name: str) -> Handled:
        report = self.service.reload_dataset(name)
        payload: JsonDict = {"protocol": PROTOCOL, "ok": True}
        payload.update(report)
        return 200, payload

    def apply_dataset(self, name: str, body: Mapping[str, Any]) -> Handled:
        """Alias of op ``dataset.apply``: edit a mutable dataset in place.

        Body: ``{"script": [...], "refresh_rwr": bool}`` — validation,
        canonicalization and dispatch all happen in the registry, exactly
        as a ``POST /v1/query`` for ``dataset.apply`` would.
        """
        args: JsonDict = {"dataset": name}
        if body.get("script") is not None:
            args["script"] = body.get("script")
        if body.get("refresh_rwr") is not None:
            args["refresh_rwr"] = body.get("refresh_rwr")
        return self._registry_call("dataset.apply", args)

    def subscribe(self, body: Mapping[str, Any]) -> Handled:
        """Alias of op ``dataset.subscribe``: long-poll the change feed.

        Body: ``{"dataset": ..., "since": N, "timeout": seconds,
        "community": ...}``.  Blocks (bounded server-side) until an event
        after ``since`` arrives; both front-ends run router handlers off
        the accept loop, so the wait never stalls other requests.
        """
        args = {
            key: body.get(key)
            for key in ("dataset", "since", "timeout", "community")
            if body.get(key) is not None
        }
        return self._registry_call("dataset.subscribe", args)

    # ------------------------------------------------------------------ #
    # sessions: wire-compatible aliases over the registry's session ops
    # ------------------------------------------------------------------ #
    def _registry_call(self, op: str, args: Mapping[str, Any]) -> Handled:
        """Run one registry op and flatten its result to the legacy shape.

        The legacy session URLs predate Protocol v2; they keep their wire
        shape (result keys at the top level of the envelope) but all
        validation, canonicalization and dispatch happen in the registry —
        exactly the same path a ``POST /v1/query`` for the op takes.
        """
        response = self._run_query({"op": op, "args": dict(args)})
        if not response.ok:
            error = response.error or WireError("INTERNAL", "")
            return response.status, {
                "protocol": PROTOCOL,
                "ok": False,
                "error": error.to_dict(),
            }
        payload: JsonDict = {"protocol": PROTOCOL, "ok": True}
        payload.update(response.result)
        return 200, payload

    def list_sessions(self) -> Handled:
        return self._registry_call("session.list", {})

    def create_session(self, body: Mapping[str, Any]) -> Handled:
        if body.get("state") is not None:
            return self._registry_call(
                "session.restore",
                {
                    key: body.get(key)
                    for key in ("state", "dataset")
                    if body.get(key) is not None
                },
            )
        return self._registry_call(
            "session.create",
            {
                key: body.get(key)
                for key in ("dataset", "ttl", "focus", "name")
                if body.get(key) is not None
            },
        )

    def resume_session(self, session_id: str) -> Handled:
        return self._registry_call("session.resume", {"session_id": session_id})

    def session_state(self, session_id: str) -> Handled:
        return self._registry_call("session.describe", {"session_id": session_id})

    def close_session(self, session_id: str) -> Handled:
        return self._registry_call("session.close", {"session_id": session_id})

    def session_step(self, session_id: str, body: Mapping[str, Any]) -> Handled:
        args: JsonDict = {"session_id": session_id}
        if body.get("action") is not None:
            args["action"] = body.get("action")
        if body.get("args") is not None:
            args["args"] = body.get("args")
        return self._registry_call("session.step", args)

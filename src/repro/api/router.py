"""Transport-neutral routing for GMine Protocol v1.

The :class:`ProtocolRouter` maps ``(method, path, body)`` triples onto the
service — exactly the surface the HTTP front-end exposes — and returns
``(status, payload)`` pairs of plain JSON-safe data.  Both transports call
it: :mod:`repro.api.http` feeds it real sockets, and the in-process
transport of :class:`~repro.api.client.GMineClient` calls
:meth:`ProtocolRouter.handle` directly and serialises the payload with the
very same :func:`dumps`.  That shared path is the parity guarantee: the
bytes a client sees cannot depend on the transport.

Routes::

    POST   /v1/query                 one Request envelope -> one Response
    POST   /v1/batch                 {"requests": [...]} -> {"responses": [...]}
    GET    /v1/ops                   the registry's op table (schemas included)
    GET    /v1/stats                 cache / backend / compute / session stats
    GET    /v1/datasets              the dataset table (kind, fingerprint, paths)
    POST   /v1/datasets/<name>/reload  hot-reload a dataset from its file
    GET    /v1/sessions              ids of live sessions
    POST   /v1/sessions              create (or restore) a session
    GET    /v1/sessions/<id>         serialised session state
    POST   /v1/sessions/<id>/resume  touch a session's TTL
    POST   /v1/sessions/<id>/step    apply one exploration step
    DELETE /v1/sessions/<id>         close a session
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import GMineError, InvalidArgumentError, ProtocolError
from .ops import encode_result
from .wire import PROTOCOL, Request, Response, WireError, error_code_for, http_status_for

JsonDict = Dict[str, Any]
Handled = Tuple[int, JsonDict]


def dumps(payload: Mapping[str, Any]) -> bytes:
    """The canonical protocol serialisation (both transports use this).

    Keys are sorted and separators fixed so the same payload always yields
    the same bytes, whatever dict-construction order produced it.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    ).encode("utf-8")


def _error_payload(error: BaseException) -> Handled:
    code = error_code_for(error)
    return (
        http_status_for(code),
        {
            "protocol": PROTOCOL,
            "ok": False,
            "error": WireError.from_exception(error).to_dict(),
        },
    )


def _not_found(path: str) -> Handled:
    return (
        404,
        {
            "protocol": PROTOCOL,
            "ok": False,
            "error": {
                "code": "PROTOCOL_ERROR",
                "type": "ProtocolError",
                "message": f"no route for {path!r}",
            },
        },
    )


class ProtocolRouter:
    """Bind a :class:`GMineService` to the protocol surface."""

    def __init__(self, service) -> None:
        self.service = service

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Handled:
        """Route one call; never raises — failures become error envelopes."""
        method = method.upper()
        parts = [part for part in path.split("/") if part]
        try:
            if parts[:1] != ["v1"]:
                return _not_found(path)
            tail = parts[1:]
            if tail == ["query"] and method == "POST":
                return self.query(body or {})
            if tail == ["batch"] and method == "POST":
                return self.batch(body or {})
            if tail == ["ops"] and method == "GET":
                return self.ops()
            if tail == ["stats"] and method == "GET":
                return self.stats()
            if tail == ["datasets"] and method == "GET":
                return self.datasets()
            if (
                len(tail) == 3
                and tail[0] == "datasets"
                and tail[2] == "reload"
                and method == "POST"
            ):
                return self.reload_dataset(tail[1])
            if tail == ["sessions"]:
                if method == "GET":
                    return self.list_sessions()
                if method == "POST":
                    return self.create_session(body or {})
            if len(tail) == 2 and tail[0] == "sessions":
                if method == "GET":
                    return self.session_state(tail[1])
                if method == "DELETE":
                    return self.close_session(tail[1])
            if len(tail) == 3 and tail[0] == "sessions" and method == "POST":
                if tail[2] == "resume":
                    return self.resume_session(tail[1])
                if tail[2] == "step":
                    return self.session_step(tail[1], body or {})
            return _not_found(path)
        except Exception as error:  # noqa: BLE001 — server boundary: every
            # failure, taxonomy or not, must leave as a structured envelope
            # (error_code_for maps unknown types to INTERNAL) rather than a
            # dropped connection or a raw traceback.
            return _error_payload(error)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, body: Mapping[str, Any]) -> Handled:
        response = self._run_query(body)
        return response.status, response.to_dict()

    def batch(self, body: Mapping[str, Any]) -> Handled:
        """Route a request list through :meth:`GMineService.batch`.

        The service's batch machinery — identical-request dedup and the
        worker pool — serves the remote surface too; a malformed envelope
        becomes a failure Response in place, never sinking its neighbours.
        """
        requests = body.get("requests")
        if not isinstance(requests, (list, tuple)):
            raise ProtocolError(
                "batch body must be {'requests': [...]}, got "
                f"{dict(body)!r}"
            )
        parsed: list = []  # Request for well-formed entries, Response otherwise
        for item in requests:
            try:
                parsed.append(Request.from_dict(item))
            except Exception as error:  # noqa: BLE001 — isolate, don't sink
                parsed.append(Response.failure(error))
        well_formed = [entry for entry in parsed if isinstance(entry, Request)]
        results = iter(
            self.service.batch(
                [
                    {"op": entry.op, "args": entry.args, "dataset": entry.dataset}
                    for entry in well_formed
                ]
            )
            if well_formed
            else []
        )
        responses = [
            entry if isinstance(entry, Response)
            else self._result_to_response(entry, next(results))
            for entry in parsed
        ]
        # The batch call itself succeeds even when members fail: isolation
        # is per-request, mirroring GMineService.batch.
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "responses": [response.to_dict() for response in responses],
        }

    def _run_query(self, payload: Mapping[str, Any]) -> Response:
        try:
            request = Request.from_dict(payload)
        except GMineError as error:
            return Response.failure(error)
        result = self.service.execute(
            {"op": request.op, "args": request.args, "dataset": request.dataset}
        )
        return self._result_to_response(request, result)

    def _result_to_response(self, request: Request, result) -> Response:
        """Flatten one service ``QueryResult`` into a wire envelope."""
        if not result.ok:
            return Response(
                ok=False,
                op=request.op,
                id=request.id,
                error=WireError(
                    code=result.code or "INTERNAL",
                    message=result.error,
                    type=result.error_type,
                ),
            )
        spec = self.service.registry.get(request.op)
        try:
            encoded, page_meta = encode_result(spec, result.value, request.page)
        except GMineError as error:
            return Response.failure(error, op=request.op, request_id=request.id)
        return Response(
            ok=True,
            op=request.op,
            result=encoded,
            cached=result.cached,
            page=page_meta,
            id=request.id,
        )

    # ------------------------------------------------------------------ #
    # registry + stats
    # ------------------------------------------------------------------ #
    def ops(self) -> Handled:
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "ops": self.service.registry.describe(),
        }

    def stats(self) -> Handled:
        return 200, {"protocol": PROTOCOL, "ok": True, "stats": self.service.stats()}

    # ------------------------------------------------------------------ #
    # dataset lifecycle
    # ------------------------------------------------------------------ #
    def datasets(self) -> Handled:
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "datasets": self.service.describe_datasets(),
        }

    def reload_dataset(self, name: str) -> Handled:
        report = self.service.reload_dataset(name)
        payload: JsonDict = {"protocol": PROTOCOL, "ok": True}
        payload.update(report)
        return 200, payload

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def list_sessions(self) -> Handled:
        return 200, {
            "protocol": PROTOCOL,
            "ok": True,
            "sessions": self.service.sessions.active_ids(),
        }

    def create_session(self, body: Mapping[str, Any]) -> Handled:
        state = body.get("state")
        if state is not None:
            session = self.service.restore_session(
                dict(state), dataset=body.get("dataset")
            )
        else:
            ttl = body.get("ttl")
            if ttl is not None and not isinstance(ttl, (int, float)):
                raise InvalidArgumentError(f"ttl must be a number, got {ttl!r}")
            session = self.service.open_session(
                dataset=body.get("dataset"),
                ttl=ttl,
                focus=body.get("focus"),
                name=str(body.get("name", "session")),
            )
        return 200, self._session_payload(session)

    def resume_session(self, session_id: str) -> Handled:
        session = self.service.resume_session(session_id)
        return 200, self._session_payload(session)

    def session_state(self, session_id: str) -> Handled:
        session = self.service.resume_session(session_id)
        payload = self._session_payload(session)
        payload["state"] = session.state_dict()
        return 200, payload

    def close_session(self, session_id: str) -> Handled:
        self.service.close_session(session_id)
        return 200, {"protocol": PROTOCOL, "ok": True, "closed": session_id}

    def session_step(self, session_id: str, body: Mapping[str, Any]) -> Handled:
        session = self.service.resume_session(session_id)
        action = body.get("action")
        if not action or not isinstance(action, str):
            raise InvalidArgumentError(
                f"step body must carry an 'action', got {dict(body)!r}"
            )
        arguments = body.get("args", {})
        if not isinstance(arguments, Mapping):
            raise InvalidArgumentError(
                f"step args must be an object, got {arguments!r}"
            )
        value = session.recording.apply_step(action, dict(arguments))
        payload = self._session_payload(session)
        payload["action"] = action
        payload["result"] = self._encode_step(action, value)
        return 200, payload

    def _session_payload(self, session) -> JsonDict:
        return {
            "protocol": PROTOCOL,
            "ok": True,
            "session": {
                "session_id": session.session_id,
                "dataset": session.dataset,
                "focus": session.engine.focus.label,
                "steps": len(session.recording.steps),
                "touches": session.touches,
                "ttl": session.ttl,
            },
        }

    @staticmethod
    def _encode_step(action: str, value: Any) -> Any:
        """Flatten one step result to JSON-safe primitives."""
        if value is None:
            return None
        if hasattr(value, "visible_nodes"):  # TomahawkContext
            return {
                "focus": value.focus.label,
                "children": [node.label for node in value.children],
                "siblings": [node.label for node in value.siblings],
                "ancestors": [node.label for node in value.ancestors],
                "size": value.size,
            }
        if hasattr(value, "as_dict"):  # SubgraphMetrics
            return value.as_dict()
        if hasattr(value, "leaf_label"):  # LabelQueryResult
            return {
                "vertex": value.vertex,
                "leaf": value.leaf_label,
                "path": value.path_labels,
            }
        if hasattr(value, "edges") and hasattr(value, "community_a"):
            return {
                "community_a": value.community_a,
                "community_b": value.community_b,
                "num_edges": len(value.edges),
                "edges": sorted(([u, v, w] for u, v, w in value.edges), key=repr),
            }
        if hasattr(value, "community_label"):  # Bookmark
            return {"name": value.name, "community": value.community_label}
        return str(value)

"""GMine Protocol v2: the single public protocol layer of the service.

This package owns everything between a caller and the mining engine:

* :mod:`~repro.api.registry` — typed operation registry; every op is an
  :class:`OpSpec` (argument schema, cacheability, cost class, scope,
  streaming declaration) and validation / canonicalization / cache-keying
  all derive from the spec.  Session-scoped ops are first-class rows in
  the same table as dataset ops;
* :mod:`~repro.api.ops` — the default op table binding specs to compute
  handlers and wire encoders (with top-k / offset+limit pagination),
  including the session lifecycle and the session-context mining variants;
* :mod:`~repro.api.wire` — versioned ``Request``/``Response`` envelopes
  (wire-compatible ``protocol: "gmine/1"``), resumable
  :class:`ResultCursor` stream tokens, and the structured error taxonomy
  mapped from :mod:`repro.errors`;
* :mod:`~repro.api.router` — transport-neutral routing shared by every
  front-end, with one canonical JSON serialisation and the chunked
  ``/v1/stream`` surface;
* :mod:`~repro.api.http` — the stdlib threaded HTTP front-end
  (``gmine serve --http PORT``) plus the shared :class:`FrontendPolicy`
  (bearer auth + token-bucket rate limiting);
* :mod:`~repro.api.aio` — the asyncio HTTP front-end
  (``gmine serve --http PORT --asyncio``), same router, same bytes;
* :mod:`~repro.api.client` — :class:`GMineClient`, one client API over
  the in-process or HTTP transports, with a streaming iterator,
  byte-identical payloads guaranteed by construction.

None of these modules import the service package — the service imports
*them* — so the protocol layer stays importable for docs, schema tooling
and client-only deployments.
"""

from .aio import GMineAsyncHTTPServer, serve_aio
from .client import GMineClient, HTTPTransport, InProcessTransport
from .http import FrontendPolicy, GMineHTTPServer, TokenBucket, serve_http
from .ops import DEFAULT_REGISTRY, OpContext, build_default_registry, encode_result
from .plans import KERNELS, ComputePlan, plan_for, run_plan
from .registry import (
    REQUIRED,
    ArgSpec,
    CanonicalizationContext,
    OperationRegistry,
    OpSpec,
    StreamSpec,
)
from .router import DEFAULT_STREAM_CHUNK, ProtocolRouter, dumps, error_payload
from .wire import (
    PROTOCOL,
    Request,
    Response,
    ResultCursor,
    WireError,
    error_code_for,
    exception_for_code,
    http_status_for,
    request_digest,
)

__all__ = [
    "ArgSpec",
    "CanonicalizationContext",
    "ComputePlan",
    "DEFAULT_REGISTRY",
    "DEFAULT_STREAM_CHUNK",
    "FrontendPolicy",
    "KERNELS",
    "GMineAsyncHTTPServer",
    "GMineClient",
    "GMineHTTPServer",
    "HTTPTransport",
    "InProcessTransport",
    "OpContext",
    "OperationRegistry",
    "OpSpec",
    "PROTOCOL",
    "ProtocolRouter",
    "REQUIRED",
    "Request",
    "Response",
    "ResultCursor",
    "StreamSpec",
    "TokenBucket",
    "WireError",
    "build_default_registry",
    "dumps",
    "encode_result",
    "error_code_for",
    "error_payload",
    "exception_for_code",
    "http_status_for",
    "plan_for",
    "request_digest",
    "run_plan",
    "serve_aio",
    "serve_http",
]

"""GMine Protocol v1: the single public protocol layer of the service.

This package owns everything between a caller and the mining engine:

* :mod:`~repro.api.registry` — typed operation registry; every op is an
  :class:`OpSpec` (argument schema, cacheability, cost class, scope) and
  validation / canonicalization / cache-keying all derive from the spec;
* :mod:`~repro.api.ops` — the default op table binding specs to compute
  handlers and wire encoders (with top-k / offset+limit pagination);
* :mod:`~repro.api.wire` — versioned ``Request``/``Response`` envelopes
  (``protocol: "gmine/1"``) and the structured error taxonomy mapped from
  :mod:`repro.errors`;
* :mod:`~repro.api.router` — transport-neutral routing shared by every
  front-end, with one canonical JSON serialisation;
* :mod:`~repro.api.http` — the stdlib HTTP front-end
  (``gmine serve --http PORT``);
* :mod:`~repro.api.client` — :class:`GMineClient`, one client API over
  either the in-process or the HTTP transport, byte-identical payloads
  guaranteed by construction.

None of these modules import the service package — the service imports
*them* — so the protocol layer stays importable for docs, schema tooling
and client-only deployments.
"""

from .client import GMineClient, HTTPTransport, InProcessTransport
from .http import GMineHTTPServer, serve_http
from .ops import DEFAULT_REGISTRY, OpContext, build_default_registry, encode_result
from .plans import KERNELS, ComputePlan, plan_for, run_plan
from .registry import (
    REQUIRED,
    ArgSpec,
    CanonicalizationContext,
    OperationRegistry,
    OpSpec,
)
from .router import ProtocolRouter, dumps
from .wire import (
    PROTOCOL,
    Request,
    Response,
    WireError,
    error_code_for,
    exception_for_code,
    http_status_for,
)

__all__ = [
    "ArgSpec",
    "CanonicalizationContext",
    "ComputePlan",
    "DEFAULT_REGISTRY",
    "KERNELS",
    "GMineClient",
    "GMineHTTPServer",
    "HTTPTransport",
    "InProcessTransport",
    "OpContext",
    "OperationRegistry",
    "OpSpec",
    "PROTOCOL",
    "ProtocolRouter",
    "REQUIRED",
    "Request",
    "Response",
    "WireError",
    "build_default_registry",
    "dumps",
    "encode_result",
    "error_code_for",
    "exception_for_code",
    "http_status_for",
    "plan_for",
    "run_plan",
    "serve_http",
]

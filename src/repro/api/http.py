"""Stdlib-only HTTP front-end for GMine Protocol v1.

``gmine serve --http PORT`` binds a :class:`ProtocolRouter` to a
:class:`ThreadingHTTPServer`; every request body is parsed as JSON, routed,
and the payload is serialised with the router's canonical
:func:`~repro.api.router.dumps` — the same bytes the in-process transport
produces.  Threading matters: the service underneath is already
thread-safe (locked cache, single-flight dedup, locked sessions), so one
OS thread per connection composes directly with the existing concurrency
story.

:class:`GMineHTTPServer` wraps the lifecycle for embedding (tests start it
on port 0 in a background thread); :func:`serve_http` is the blocking CLI
entry point.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import ProtocolError
from .router import ProtocolRouter, dumps

#: Largest accepted request body; protects the demo server from abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _ProtocolRequestHandler(BaseHTTPRequestHandler):
    """Thin JSON adapter between one socket and the shared router."""

    server_version = "gmine/1"
    protocol_version = "HTTP/1.1"

    # The router lives on the server object (one per service).
    def _router(self) -> ProtocolRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        try:
            body = self._read_body()
        except ProtocolError as error:
            self._send(400, dumps({
                "protocol": "gmine/1",
                "ok": False,
                "error": {
                    "code": "PROTOCOL_ERROR",
                    "type": "ProtocolError",
                    "message": str(error),
                },
            }))
            return
        path = self.path.split("?", 1)[0]
        status, payload = self._router().handle(method, path, body)
        self._send(status, dumps(payload))

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}") from error
        if parsed is not None and not isinstance(parsed, dict):
            raise ProtocolError("request body must be a JSON object")
        return parsed

    def _send(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class GMineHTTPServer:
    """Embeddable HTTP front-end over one :class:`GMineService`.

    ``start()`` serves from a daemon thread (tests bind port 0 and read the
    chosen port from :attr:`address`); ``serve_forever()`` blocks (CLI).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8080) -> None:
        self.router = ProtocolRouter(service)
        self._httpd = ThreadingHTTPServer((host, port), _ProtocolRequestHandler)
        self._httpd.router = self.router  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GMineHTTPServer":
        """Serve from a background daemon thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="gmine-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the listener down and join the background thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "GMineHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_http(service, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Blocking CLI entry point: serve until KeyboardInterrupt."""
    server = GMineHTTPServer(service, host=host, port=port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()

"""Stdlib-only threaded HTTP front-end for the GMine Protocol.

``gmine serve --http PORT`` binds a :class:`ProtocolRouter` to a
:class:`ThreadingHTTPServer`; every request body is parsed as JSON, routed,
and the payload is serialised with the router's canonical
:func:`~repro.api.router.dumps` — the same bytes the in-process transport
produces.  Threading matters: the service underneath is already
thread-safe (locked cache, single-flight dedup, locked sessions), so one
OS thread per connection composes directly with the existing concurrency
story.

Protocol v2 additions:

* ``POST /v1/stream`` answers with ``Transfer-Encoding: chunked`` NDJSON —
  one canonical envelope per line, each carrying ``cursor``/``next_cursor``
  — produced by the router's shared streaming path, so the chunk bytes
  are identical across the threaded and asyncio front-ends;
* an optional :class:`FrontendPolicy` guards every route with a bearer-token
  check (``AUTH_REQUIRED``/401) and a token-bucket rate limit
  (``RATE_LIMITED``/429), both surfaced as ordinary taxonomy envelopes.
  The policy lives at the transport layer on purpose: in-process callers
  already hold the service object and need no gate.

:class:`GMineHTTPServer` wraps the lifecycle for embedding (tests start it
on port 0 in a background thread); :func:`serve_http` is the blocking CLI
entry point.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import (
    AuthRequiredError,
    GMineError,
    OverloadedError,
    ProtocolError,
    RateLimitedError,
)
from .router import ProtocolRouter, dumps, error_payload

#: Paths exempt from auth/rate-limit/admission: probes must always answer.
HEALTH_PATHS = ("/healthz", "/readyz")


def retry_after_of(payload: Mapping) -> Optional[float]:
    """Extract a ``retry_after`` hint from an error envelope, if any.

    Both front-ends surface it as an HTTP ``Retry-After`` header so plain
    HTTP clients can back off without parsing the body.
    """
    error = payload.get("error")
    if isinstance(error, Mapping):
        details = error.get("details")
        if isinstance(details, Mapping):
            value = details.get("retry_after")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
    return None

#: Largest accepted request body; protects the demo server from abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Content type of streamed responses: one canonical envelope per line.
STREAM_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"


def parse_json_body(raw: bytes) -> Optional[dict]:
    """Decode one request body: JSON object, ``None`` when empty.

    Shared by both front-ends so a malformed body produces the identical
    ``PROTOCOL_ERROR`` wording on the threaded and asyncio servers.
    """
    if not raw:
        return None
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from error
    if parsed is not None and not isinstance(parsed, dict):
        raise ProtocolError("request body must be a JSON object")
    return parsed


def chunked_ndjson_frames(payloads: Iterable[Mapping]) -> Iterator[bytes]:
    """HTTP chunked-transfer frames: one canonical NDJSON line per payload.

    The single source of the stream framing — both front-ends write
    exactly these bytes, which is what keeps streamed responses
    byte-identical across them.
    """
    for payload in payloads:
        line = dumps(payload) + b"\n"
        yield f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n"
    yield b"0\r\n\r\n"


class TokenBucket:
    """Thread-safe token bucket: ``rate`` requests/s with burst ``rate``.

    Tokens refill continuously on the injected monotonic clock; a request
    costs one token, and an empty bucket means the caller is over rate.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate limit must be positive, got {rate!r}")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(1.0, self.rate)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class FrontendPolicy:
    """Transport-level guard rails shared by both HTTP front-ends.

    ``auth_token`` demands ``Authorization: Bearer <token>`` on every
    request; ``rate_limit`` caps the request rate (requests per second,
    token bucket with burst = rate).  Violations raise the taxonomy's
    :class:`~repro.errors.AuthRequiredError` /
    :class:`~repro.errors.RateLimitedError`, which the front-ends flatten
    into the stable ``AUTH_REQUIRED`` (401) / ``RATE_LIMITED`` (429) wire
    envelopes — structured failures, never dropped connections.
    """

    def __init__(
        self,
        auth_token: Optional[str] = None,
        rate_limit: Optional[float] = None,
        max_inflight: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight!r}")
        self.auth_token = auth_token
        self.bucket = None if rate_limit is None else TokenBucket(rate_limit, clock=clock)
        self.max_inflight = max_inflight
        self.shed = 0
        self._inflight = 0
        self._admission = threading.Lock()

    def check(self, headers: Mapping[str, str]) -> None:
        """Validate one request's headers (keys must be lower-cased)."""
        if self.auth_token is not None:
            supplied = headers.get("authorization", "")
            expected = f"Bearer {self.auth_token}"
            # constant-time: the token is a secret, so the comparison must
            # not leak a matching prefix through response timing
            if not hmac.compare_digest(
                supplied.encode("utf-8"), expected.encode("utf-8")
            ):
                raise AuthRequiredError(
                    "missing or invalid bearer token; send "
                    "'Authorization: Bearer <token>'"
                )
        if self.bucket is not None and not self.bucket.try_acquire():
            raise RateLimitedError(
                f"request rate limit exceeded "
                f"({self.bucket.rate:g} requests/s); retry later"
            )

    def try_enter(self) -> bool:
        """Claim an in-flight slot; ``False`` sheds the request (503)."""
        if self.max_inflight is None:
            return True
        with self._admission:
            if self._inflight >= self.max_inflight:
                self.shed += 1
                return False
            self._inflight += 1
            return True

    def leave(self) -> None:
        """Release the slot claimed by a successful :meth:`try_enter`."""
        if self.max_inflight is None:
            return
        with self._admission:
            self._inflight = max(0, self._inflight - 1)

    def overloaded(self) -> OverloadedError:
        """The typed 503 a shed request is answered with."""
        return OverloadedError(
            f"server at capacity ({self.max_inflight} requests in flight); "
            "retry shortly",
            retry_after=1.0,
        )

    def describe(self) -> Mapping[str, object]:
        """JSON-safe summary (for serve banners and smoke output)."""
        with self._admission:
            shed, inflight = self.shed, self._inflight
        return {
            "auth": self.auth_token is not None,
            "rate_limit": None if self.bucket is None else self.bucket.rate,
            "max_inflight": self.max_inflight,
            "inflight": inflight,
            "shed": shed,
        }


class _ProtocolRequestHandler(BaseHTTPRequestHandler):
    """Thin JSON adapter between one socket and the shared router."""

    server_version = "gmine/1"
    protocol_version = "HTTP/1.1"

    # The router lives on the server object (one per service).
    def _router(self) -> ProtocolRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        # Read (drain) the body before any early reply: answering a
        # keep-alive POST while its body still sits in the socket would
        # corrupt the framing of the next request on the connection.
        try:
            body = self._read_body()
        except ProtocolError as error:
            self._send(400, dumps({
                "protocol": "gmine/1",
                "ok": False,
                "error": {
                    "code": "PROTOCOL_ERROR",
                    "type": "ProtocolError",
                    "message": str(error),
                },
            }))
            self.close_connection = True  # oversized body was left unread
            return
        path = self.path.split("?", 1)[0]
        policy = getattr(self.server, "policy", None)
        # Health probes bypass the policy: a load balancer must be able to
        # read liveness/readiness from a saturated or locked-down server.
        if policy is not None and path.rstrip("/") not in HEALTH_PATHS:
            try:
                policy.check(
                    {name.lower(): value for name, value in self.headers.items()}
                )
            except GMineError as error:
                status, payload = error_payload(error)
                self._send(status, dumps(payload))
                return
            if not policy.try_enter():
                error = policy.overloaded()
                status, payload = error_payload(error)
                self._send(status, dumps(payload), retry_after=error.retry_after)
                return
            try:
                self._route(method, path, body)
            finally:
                policy.leave()
            return
        self._route(method, path, body)

    def _route(self, method: str, path: str, body: Optional[dict]) -> None:
        if path.rstrip("/") == "/v1/stream":
            status, payloads = self._router().handle_stream(method, path, body)
            self._send_stream(status, payloads)
            return
        status, payload = self._router().handle(method, path, body)
        self._send(status, dumps(payload), retry_after=retry_after_of(payload))

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body too large ({length} bytes)")
        return parse_json_body(self.rfile.read(length))

    def _send(
        self, status: int, body: bytes, retry_after: Optional[float] = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Whole seconds, at least 1: the header is integer-valued.
            self.send_header("Retry-After", str(max(1, int(retry_after + 0.999))))
        self.end_headers()
        self.wfile.write(body)

    def _send_stream(self, status: int, payloads) -> None:
        """Write NDJSON chunks under ``Transfer-Encoding: chunked``.

        One HTTP chunk per protocol envelope, each a canonical ``dumps``
        line — so a client reading line-by-line recovers exactly the
        payload bytes the in-process transport yields.
        """
        self.send_response(status)
        self.send_header("Content-Type", STREAM_CONTENT_TYPE)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for frame in chunked_ndjson_frames(payloads):
            self.wfile.write(frame)


class GMineHTTPServer:
    """Embeddable threaded HTTP front-end over one :class:`GMineService`.

    ``start()`` serves from a daemon thread (tests bind port 0 and read the
    chosen port from :attr:`address`); ``serve_forever()`` blocks (CLI).
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 8080,
        policy: Optional[FrontendPolicy] = None,
    ) -> None:
        self.router = ProtocolRouter(service)
        self.policy = policy
        self._httpd = ThreadingHTTPServer((host, port), _ProtocolRequestHandler)
        self._httpd.router = self.router  # type: ignore[attr-defined]
        self._httpd.policy = policy  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GMineHTTPServer":
        """Serve from a background daemon thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="gmine-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the listener down and join the background thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "GMineHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    policy: Optional[FrontendPolicy] = None,
) -> None:
    """Blocking CLI entry point: serve until KeyboardInterrupt."""
    server = GMineHTTPServer(service, host=host, port=port, policy=policy)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()

"""Typed operation registry: the declarative heart of the GMine Protocol.

Every operation the service exposes is declared once as an :class:`OpSpec`
— its name, an ordered argument schema (:class:`ArgSpec` with types,
defaults, validators and normalizers), a cacheability flag, a cost class,
and a scope.  Protocol v2 makes the ``session`` scope a first-class
citizen (session lifecycle and session-context mining ops live in the same
table as dataset ops) and adds a streaming declaration
(:class:`StreamSpec`) for ops whose payloads chunk into resumable cursor
pages.  Everything the old hand-rolled dispatch did ad hoc now *derives*
from the spec:

* **validation** — unknown arguments, missing required arguments, wrong
  types and out-of-range values all raise
  :class:`~repro.errors.InvalidArgumentError` before any work happens;
* **canonicalization** — defaults are filled and normalizers applied in
  declared field order, so equivalent spellings of a request collapse onto
  one canonical form;
* **cache keys** — :meth:`OpSpec.cache_key` walks the canonical mapping in
  *spec field order* (never relying on caller dict ordering), so permuted
  kwargs hit the same cache entry by construction;
* **documentation** — ``gmine ops --describe`` and the README's API table
  are generated from :meth:`OperationRegistry.describe`.

The registry itself is transport-neutral and engine-neutral: specs carry a
``handler`` (how to compute the value, bound by :mod:`repro.api.ops`) and an
``encoder`` (how to flatten the value onto the wire), but the registry never
imports the service or any transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, List, Mapping, Optional, Sequence, Tuple, Type

from ..errors import InvalidArgumentError, UnknownOperationError


class _Required:
    """Sentinel marking an argument with no default (must be supplied)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


REQUIRED = _Required()

#: Cost classes an operation may declare (used by clients and schedulers
#: to decide what is safe to fire interactively vs. what should be batched).
COST_CLASSES = ("cheap", "expensive")

#: Scopes: ``dataset`` ops run against a registered dataset; ``session``
#: ops act on one user's live exploration state; ``service`` ops act on
#: service-level machinery (the dataset write path, change feeds) and
#: dispatch exactly like session ops — uncached, in the parent, with the
#: owning service as their context.
SCOPES = ("dataset", "session", "service")


#: Merge strategies a sharded execution tier may declare per op.
MERGE_KINDS = ("route", "scatter")


@dataclass(frozen=True)
class MergeSpec:
    """How a partition-sharded backend combines this op across shards.

    ``kind`` picks the strategy:

    * ``"route"`` — the op is a pure function of one community's induced
      content, so a plan scoped to a shard-owned partition routes
      point-to-point to that shard and the answer comes back whole (zero
      merge cost).  Cross-shard scopes run at the parent, which owns the
      cross-shard edge table.
    * ``"scatter"`` — the op's kernel is a fixed-point iteration over the
      whole graph whose per-step operator (a sparse matvec) splits exactly
      along shard row slices; the parent drives the iteration, shards
      compute their row blocks, and the gathered update is bit-identical
      to the monolithic step by construction.

    Ops without a ``MergeSpec`` never leave the parent under a sharded
    backend.  The spec is declarative only — the registry never imports
    the shard subsystem.
    """

    kind: str
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in MERGE_KINDS:
            raise ValueError(
                f"merge kind must be one of {MERGE_KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class StreamSpec:
    """How a streamable op's encoded payload chunks into cursor pages.

    ``field`` names the payload key holding the (deterministically
    ordered) vector; ``page_key`` is the pagination knob that, set to the
    full length, makes the encoder emit the complete vector (``top_k``
    for ranked score payloads, ``limit`` for edge lists); ``total`` maps
    the *rich* result value to that full length.  Streaming slices the
    encoded field — never the rich value — so reassembling every chunk
    reproduces the one-shot payload byte for byte.
    """

    field: str
    page_key: str
    total: Callable[[Any], int]


@dataclass(frozen=True)
class ArgSpec:
    """Schema for one operation argument.

    Parameters
    ----------
    name:
        Wire name of the argument.
    types:
        Accepted python types (``None`` is always accepted when the default
        is ``None``); empty tuple accepts anything.
    default:
        Value used when the caller omits the argument; :data:`REQUIRED`
        makes omission an error.
    doc:
        One-line description (surfaces in ``gmine ops --describe``).
    choices:
        Optional closed set of accepted values.
    validate:
        Optional callable ``value -> None`` raising ``ValueError`` (or
        returning an error string) for domain violations.
    normalize:
        Optional callable ``(value, ctx) -> value`` applied after
        validation; this is where source lists are sorted/deduplicated and
        community ids resolve to labels.
    allow_none:
        Accept an explicit ``None`` even though the default is not ``None``
        (arguments whose default is ``None`` always accept it).
    """

    name: str
    types: Tuple[Type, ...] = ()
    default: Any = REQUIRED
    doc: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    validate: Optional[Callable[[Any], Any]] = None
    normalize: Optional[Callable[[Any, "CanonicalizationContext"], Any]] = None
    allow_none: bool = False

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly schema row for this argument."""
        row: Dict[str, Any] = {
            "name": self.name,
            "type": "/".join(t.__name__ for t in self.types) or "any",
            "required": self.required,
            "doc": self.doc,
        }
        if not self.required:
            row["default"] = self.default
        if self.choices is not None:
            row["choices"] = list(self.choices)
        return row


class CanonicalizationContext:
    """What canonicalization may consult: how to resolve community refs.

    The registry is engine-neutral; the service builds a context per
    dataset whose ``resolve_community`` maps tree-node ids to labels so
    both spellings share one cache entry.  The default context is inert
    (values pass through), which is what schema-only callers (tests, docs,
    the client) use.
    """

    def resolve_community(self, value: Any) -> Any:
        return value

    @property
    def tree(self) -> Any:
        """The dataset's G-Tree, when one is attached (None otherwise).

        Ops whose canonical form folds tree navigation into the argument
        payload (``query.path``) consult this during ``finalize``.
        """
        return None


#: Inert context used when no dataset is attached.
NULL_CONTEXT = CanonicalizationContext()


@dataclass(frozen=True)
class OpSpec:
    """Declaration of one protocol operation.

    ``finalize`` runs after per-argument canonicalization with the ordered
    canonical dict and may restructure it (collapse tuning knobs into a
    signature, order a symmetric pair); it must return a dict whose key
    order is deterministic, because cache keys are derived from that order.
    """

    name: str
    args: Tuple[ArgSpec, ...] = ()
    doc: str = ""
    cacheable: bool = True
    cost: str = "expensive"
    scope: str = "dataset"
    finalize: Optional[
        Callable[[Dict[str, Any], CanonicalizationContext], Dict[str, Any]]
    ] = None
    handler: Optional[Callable[..., Any]] = None
    encoder: Optional[Callable[..., Any]] = None
    #: Pure ``canonical args -> ComputePlan`` stage (:mod:`repro.api.plans`).
    #: Ops with a planner can execute on any backend — including a process
    #: pool, because the plan is picklable and closes over nothing; ops
    #: without one always run in the parent through ``handler``.
    planner: Optional[Callable[[Mapping[str, Any]], Any]] = None
    #: Streaming declaration (:class:`StreamSpec`): present on ops whose
    #: encoded payload carries a large deterministic vector that the
    #: ``/v1/stream`` route may chunk into resumable cursor pages.
    stream: Optional[StreamSpec] = None
    #: Name of the canonical argument that scopes this op to one community
    #: — set **only** when the op's result is a pure function of that
    #: community's induced content.  The service then keys cache entries
    #: (and stream cursors) by the partition's Merkle *sub-fingerprint*
    #: instead of the dataset root, so entries for untouched communities
    #: survive ``dataset.apply`` edits elsewhere in the graph.  ``None``
    #: keys by the root fingerprint, which changes on every edit.
    partition_arg: Optional[str] = None
    #: Sharded-merge declaration (:class:`MergeSpec`): how a
    #: partition-sharded backend may distribute this op and combine the
    #: partial results.  ``None`` means the op never leaves the parent
    #: process under a sharded backend.
    merge: Optional[MergeSpec] = None

    def __post_init__(self) -> None:
        if self.cost not in COST_CLASSES:
            raise ValueError(f"op {self.name!r}: cost must be one of {COST_CLASSES}")
        if self.scope not in SCOPES:
            raise ValueError(f"op {self.name!r}: scope must be one of {SCOPES}")
        seen = set()
        for spec in self.args:
            if spec.name in seen:
                raise ValueError(f"op {self.name!r}: duplicate argument {spec.name!r}")
            seen.add(spec.name)

    @property
    def arg_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.args)

    # ------------------------------------------------------------------ #
    # validation + canonicalization
    # ------------------------------------------------------------------ #
    def canonicalize(
        self,
        args: Mapping[str, Any],
        ctx: CanonicalizationContext = NULL_CONTEXT,
    ) -> Dict[str, Any]:
        """Validate ``args`` against the schema and return the canonical form.

        The result's key order is the declared field order (post
        ``finalize``), independent of the order the caller supplied —
        that order is what :meth:`cache_key` serialises.
        """
        unknown = sorted(set(args) - set(self.arg_names))
        if unknown:
            raise InvalidArgumentError(
                f"operation {self.name!r} got unknown argument(s) "
                f"{', '.join(map(repr, unknown))}; accepts {list(self.arg_names)}"
            )
        canonical: Dict[str, Any] = {}
        for spec in self.args:
            if spec.name in args:
                value = args[spec.name]
            elif spec.required:
                raise InvalidArgumentError(
                    f"operation {self.name!r} requires argument {spec.name!r}"
                )
            else:
                value = spec.default
            canonical[spec.name] = self._check(spec, value, ctx)
        if self.finalize is not None:
            canonical = self.finalize(canonical, ctx)
        return canonical

    def _check(self, spec: ArgSpec, value: Any, ctx: CanonicalizationContext) -> Any:
        if value is None and (spec.default is None or spec.allow_none):
            # None stands for "the default scope / unset knob" only where
            # the spec says so; normalizers may still refine it.
            pass
        elif spec.types and not isinstance(value, spec.types):
            # bool is an int subclass; never let True slip into an int slot
            # unless bool is explicitly accepted.
            accepted = "/".join(t.__name__ for t in spec.types)
            if isinstance(value, bool) and bool not in spec.types:
                raise InvalidArgumentError(
                    f"{self.name}.{spec.name} must be {accepted}, got bool"
                )
            raise InvalidArgumentError(
                f"{self.name}.{spec.name} must be {accepted}, "
                f"got {type(value).__name__}: {value!r}"
            )
        if isinstance(value, bool) and spec.types and bool not in spec.types:
            raise InvalidArgumentError(
                f"{self.name}.{spec.name} must be "
                f"{'/'.join(t.__name__ for t in spec.types)}, got bool"
            )
        if spec.choices is not None and value not in spec.choices:
            raise InvalidArgumentError(
                f"{self.name}.{spec.name} must be one of {list(spec.choices)}, "
                f"got {value!r}"
            )
        if spec.validate is not None and value is not None:
            try:
                problem = spec.validate(value)
            except (TypeError, ValueError) as error:
                raise InvalidArgumentError(
                    f"{self.name}.{spec.name}: {error}"
                ) from error
            if problem:
                raise InvalidArgumentError(f"{self.name}.{spec.name}: {problem}")
        if spec.normalize is not None:
            value = spec.normalize(value, ctx)
        return value

    # ------------------------------------------------------------------ #
    # cache keying
    # ------------------------------------------------------------------ #
    def cache_fields(self, canonical: Mapping[str, Any]) -> Tuple:
        """Flatten canonical args into a hashable tuple in *spec* order.

        The canonical dict's own insertion order is what we walk (it was
        produced by :meth:`canonicalize`, hence deterministic); nested
        containers are normalised recursively.
        """
        return tuple(
            (name, _hashable(canonical[name])) for name in canonical
        )

    def cache_key(self, fingerprint: str, canonical: Mapping[str, Any]) -> Tuple:
        """The shared-cache key: ``(fingerprint, op, spec-ordered fields)``."""
        return (fingerprint, self.name, self.cache_fields(canonical))

    # ------------------------------------------------------------------ #
    # execution planning
    # ------------------------------------------------------------------ #
    @property
    def plannable(self) -> bool:
        """Whether this op compiles to a picklable, backend-portable plan."""
        return self.planner is not None

    def plan(self, canonical: Mapping[str, Any]) -> Any:
        """Compile canonical args into a :class:`~repro.api.plans.ComputePlan`.

        Raises for ops without a planner; callers gate on :attr:`plannable`.
        """
        if self.planner is None:
            raise ValueError(f"operation {self.name!r} declares no planner")
        return self.planner(canonical)

    @property
    def streamable(self) -> bool:
        """Whether ``/v1/stream`` may serve this op as cursor pages."""
        return self.stream is not None

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly description row (drives docs and ``gmine ops``)."""
        row = {
            "name": self.name,
            "doc": self.doc,
            "cacheable": self.cacheable,
            "cost": self.cost,
            "scope": self.scope,
            "plannable": self.plannable,
            # Every plannable op executes through run_plan, whose kernels
            # all consume the venue's cached PreparedGraph at widest scope
            # — so plan-ability and prepared-acceleration coincide.
            "prepared": self.plannable,
            "streamable": self.streamable,
            # Partition-scoped ops cache under the community's Merkle
            # sub-fingerprint; their entries survive edits elsewhere.
            "partition_scoped": self.partition_arg is not None,
            "args": [spec.describe() for spec in self.args],
        }
        if self.stream is not None:
            row["stream"] = {
                "field": self.stream.field,
                "page_key": self.stream.page_key,
            }
        # Merge flag: how (whether) a sharded backend distributes this op.
        row["merge"] = None if self.merge is None else self.merge.kind
        return row


def _hashable(value: Any) -> Hashable:
    """Recursively freeze a canonical value into a hashable form."""
    if isinstance(value, Mapping):
        return ("{}",) + tuple(
            (str(key), _hashable(value[key])) for key in value
        )
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_hashable(item) for item in value), key=repr))
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    return repr(value)


class OperationRegistry:
    """Name -> :class:`OpSpec` lookup with schema-driven helpers."""

    def __init__(self, specs: Sequence[OpSpec] = ()) -> None:
        self._specs: Dict[str, OpSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: OpSpec) -> OpSpec:
        if spec.name in self._specs:
            raise ValueError(f"operation {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> OpSpec:
        """Resolve an op name; unknown names raise the service taxonomy error."""
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownOperationError(
                f"unknown operation {name!r}; expected one of {self.names()}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[OpSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def canonicalize(
        self,
        name: str,
        args: Mapping[str, Any],
        ctx: CanonicalizationContext = NULL_CONTEXT,
    ) -> Dict[str, Any]:
        return self.get(name).canonicalize(args, ctx)

    def cache_key(
        self, fingerprint: str, name: str, canonical: Mapping[str, Any]
    ) -> Tuple:
        return self.get(name).cache_key(fingerprint, canonical)

    def describe(self) -> List[Dict[str, Any]]:
        """The full op table (drives ``gmine ops --describe`` and the README)."""
        return [spec.describe() for spec in self]

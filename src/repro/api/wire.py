"""GMine Protocol v1 wire envelopes and the structured error taxonomy.

A request is one JSON object::

    {"protocol": "gmine/1", "op": "rwr", "dataset": "dblp",
     "args": {"sources": [1, 2]}, "page": {"top_k": 20}, "id": "r-1"}

and a response mirrors it::

    {"protocol": "gmine/1", "id": "r-1", "ok": true, "op": "rwr",
     "cached": false, "result": {...}, "page": {"top_k": 20, "total": 412}}

    {"protocol": "gmine/1", "id": "r-1", "ok": false,
     "error": {"code": "SESSION_EXPIRED", "type": "SessionExpiredError",
               "message": "..."}}

Every failure carries a **stable machine-readable code** mapped from the
exception hierarchy in :mod:`repro.errors`; :func:`error_code_for` walks an
exception's MRO to the nearest declared ancestor, and
:func:`exception_for_code` inverts the mapping so clients (and
``QueryResult.unwrap``) re-raise *typed* exceptions rather than strings.
Both transports — in-process and HTTP — speak exactly these envelopes,
which is what makes the byte-identical parity guarantee testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from .. import errors
from ..errors import GMineError, ProtocolError

PROTOCOL = "gmine/1"

#: Exception class -> stable wire code.  Order matters only for docs; the
#: lookup walks each exception's MRO, so subclasses inherit their nearest
#: ancestor's code unless declared explicitly.
ERROR_CODES: Tuple[Tuple[Type[BaseException], str], ...] = (
    (errors.SessionNotFoundError, "SESSION_NOT_FOUND"),
    (errors.SessionExpiredError, "SESSION_EXPIRED"),
    (errors.UnknownOperationError, "UNKNOWN_OPERATION"),
    (errors.DatasetNotFoundError, "DATASET_NOT_FOUND"),
    (errors.InvalidArgumentError, "INVALID_ARGUMENT"),
    (errors.ProtocolError, "PROTOCOL_ERROR"),
    (errors.NavigationError, "NAVIGATION_ERROR"),
    (errors.ConvergenceError, "NOT_CONVERGED"),
    (errors.ExtractionError, "EXTRACTION_FAILED"),
    (errors.MiningError, "MINING_ERROR"),
    (errors.CorruptStoreError, "CORRUPT_STORE"),
    (errors.StorageError, "STORAGE_ERROR"),
    (errors.GraphError, "GRAPH_ERROR"),
    (errors.PartitionError, "PARTITION_ERROR"),
    (errors.GTreeError, "GTREE_ERROR"),
    (errors.DatasetError, "DATASET_ERROR"),
    (errors.ServiceError, "SERVICE_ERROR"),
    (errors.GMineError, "GMINE_ERROR"),
    (TypeError, "INVALID_ARGUMENT"),
    (ValueError, "INVALID_ARGUMENT"),
    (KeyError, "INVALID_ARGUMENT"),
)

#: Fallback for exceptions outside the taxonomy.
INTERNAL_ERROR = "INTERNAL"

_CLASS_BY_CODE: Dict[str, Type[BaseException]] = {}
for _cls, _code in ERROR_CODES:
    # first declaration wins: the most specific class represents its code
    _CLASS_BY_CODE.setdefault(_code, _cls)

#: Wire code -> HTTP status used by the front-end (and mirrored by the
#: in-process transport so parity holds for failures too).
HTTP_STATUS: Dict[str, int] = {
    "SESSION_NOT_FOUND": 404,
    "SESSION_EXPIRED": 410,
    "UNKNOWN_OPERATION": 404,
    "DATASET_NOT_FOUND": 404,
    "INVALID_ARGUMENT": 400,
    "PROTOCOL_ERROR": 400,
    "NAVIGATION_ERROR": 404,
    "NOT_CONVERGED": 422,
    "EXTRACTION_FAILED": 422,
    "MINING_ERROR": 422,
    "CORRUPT_STORE": 500,
    "STORAGE_ERROR": 500,
    "GRAPH_ERROR": 422,
    "PARTITION_ERROR": 422,
    "GTREE_ERROR": 422,
    "DATASET_ERROR": 422,
    "SERVICE_ERROR": 500,
    "GMINE_ERROR": 500,
    INTERNAL_ERROR: 500,
}


def error_code_for(error: BaseException) -> str:
    """The stable wire code for an exception (nearest declared ancestor)."""
    for klass in type(error).__mro__:
        for declared, code in ERROR_CODES:
            if klass is declared:
                return code
    return INTERNAL_ERROR


def exception_for_code(code: str, message: str) -> BaseException:
    """Rebuild a typed exception from a wire error (client-side re-raise)."""
    klass = _CLASS_BY_CODE.get(code, errors.ServiceError)
    if not issubclass(klass, GMineError):
        # stdlib types in the taxonomy still come back as library errors so
        # one `except GMineError` catches every protocol failure.
        klass = errors.InvalidArgumentError
    return klass(message)


def http_status_for(code: str) -> int:
    return HTTP_STATUS.get(code, 500)


# --------------------------------------------------------------------------- #
# envelopes
# --------------------------------------------------------------------------- #
@dataclass
class Request:
    """One protocol request envelope (JSON-round-trippable)."""

    op: str
    args: Dict[str, Any] = field(default_factory=dict)
    dataset: Optional[str] = None
    page: Optional[Dict[str, Any]] = None
    id: Optional[str] = None
    protocol: str = PROTOCOL

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "protocol": self.protocol,
            "op": self.op,
            "args": dict(self.args),
        }
        if self.dataset is not None:
            payload["dataset"] = self.dataset
        if self.page is not None:
            payload["page"] = dict(self.page)
        if self.id is not None:
            payload["id"] = self.id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Request":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"request must be a JSON object, got {payload!r}")
        protocol = payload.get("protocol", PROTOCOL)
        if protocol != PROTOCOL:
            raise ProtocolError(
                f"unsupported protocol {protocol!r}; this server speaks {PROTOCOL!r}"
            )
        op = payload.get("op", payload.get("operation"))
        if not op or not isinstance(op, str):
            raise ProtocolError(f"request has no operation: {dict(payload)!r}")
        args = payload.get("args", {})
        if not isinstance(args, Mapping):
            raise ProtocolError(f"request args must be an object, got {args!r}")
        page = payload.get("page")
        if page is not None and not isinstance(page, Mapping):
            raise ProtocolError(f"request page must be an object, got {page!r}")
        request_id = payload.get("id")
        return cls(
            op=op,
            args=dict(args),
            dataset=payload.get("dataset"),
            page=None if page is None else dict(page),
            id=None if request_id is None else str(request_id),
            protocol=protocol,
        )


@dataclass
class WireError:
    """Structured failure: stable code + original exception type + message."""

    code: str
    message: str
    type: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "type": self.type, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WireError":
        return cls(
            code=str(payload.get("code", INTERNAL_ERROR)),
            message=str(payload.get("message", "")),
            type=str(payload.get("type", "")),
        )

    @classmethod
    def from_exception(cls, error: BaseException) -> "WireError":
        return cls(
            code=error_code_for(error),
            message=str(error),
            type=type(error).__name__,
        )

    def raise_(self) -> None:
        raise exception_for_code(self.code, self.message)


@dataclass
class Response:
    """One protocol response envelope (JSON-round-trippable)."""

    ok: bool
    op: str = ""
    result: Any = None
    error: Optional[WireError] = None
    cached: bool = False
    page: Optional[Dict[str, Any]] = None
    id: Optional[str] = None
    protocol: str = PROTOCOL

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"protocol": self.protocol, "ok": self.ok}
        if self.id is not None:
            payload["id"] = self.id
        if self.op:
            payload["op"] = self.op
        if self.ok:
            payload["cached"] = self.cached
            payload["result"] = self.result
            if self.page is not None:
                payload["page"] = dict(self.page)
        else:
            payload["error"] = (self.error or WireError(INTERNAL_ERROR, "")).to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Response":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"response must be a JSON object, got {payload!r}")
        error = payload.get("error")
        page = payload.get("page")
        request_id = payload.get("id")
        return cls(
            ok=bool(payload.get("ok")),
            op=str(payload.get("op", "")),
            result=payload.get("result"),
            error=None if error is None else WireError.from_dict(error),
            cached=bool(payload.get("cached", False)),
            page=None if page is None else dict(page),
            id=None if request_id is None else str(request_id),
            protocol=str(payload.get("protocol", PROTOCOL)),
        )

    @classmethod
    def failure(
        cls, error: BaseException, op: str = "", request_id: Optional[str] = None
    ) -> "Response":
        return cls(
            ok=False, op=op, error=WireError.from_exception(error), id=request_id
        )

    def unwrap(self) -> Any:
        """Return the result payload, re-raising a typed taxonomy error."""
        if not self.ok:
            (self.error or WireError(INTERNAL_ERROR, "request failed")).raise_()
        return self.result

    @property
    def status(self) -> int:
        """The HTTP status this envelope travels under."""
        if self.ok:
            return 200
        return http_status_for((self.error or WireError(INTERNAL_ERROR, "")).code)

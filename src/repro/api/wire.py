"""GMine Protocol v2 wire envelopes and the structured error taxonomy.

The envelopes stay wire-compatible with protocol ``gmine/1``.  A request
is one JSON object::

    {"protocol": "gmine/1", "op": "rwr", "dataset": "dblp",
     "args": {"sources": [1, 2]}, "page": {"top_k": 20}, "id": "r-1"}

and a response mirrors it::

    {"protocol": "gmine/1", "id": "r-1", "ok": true, "op": "rwr",
     "cached": false, "result": {...}, "page": {"top_k": 20, "total": 412}}

    {"protocol": "gmine/1", "id": "r-1", "ok": false,
     "error": {"code": "SESSION_EXPIRED", "type": "SessionExpiredError",
               "message": "..."}}

Protocol v2 adds **streaming result cursors** on top of the same
envelopes: a streamed request may carry ``chunk_size`` and a ``cursor``
token, and each response chunk carries ``cursor`` (its own position) and
``next_cursor`` (``null`` once the stream is exhausted).  A
:class:`ResultCursor` token is stable and resumable: it pins the
operation, the dataset fingerprint it was issued under, a digest of the
request, and the next offset — so a client can reconnect, replay the same
request with the token, and continue exactly where it stopped; if the
dataset was hot-reloaded in between, the fingerprint mismatch surfaces as
a structured ``CURSOR_EXPIRED`` error instead of a silently torn vector.

Every failure carries a **stable machine-readable code** mapped from the
exception hierarchy in :mod:`repro.errors`; :func:`error_code_for` walks an
exception's MRO to the nearest declared ancestor, and
:func:`exception_for_code` inverts the mapping so clients (and
``QueryResult.unwrap``) re-raise *typed* exceptions rather than strings.
All transports — in-process, threaded HTTP, and asyncio HTTP — speak
exactly these envelopes, which is what makes the byte-identical parity
guarantee testable.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from .. import errors
from ..errors import GMineError, ProtocolError

PROTOCOL = "gmine/1"

#: Exception class -> stable wire code.  Order matters only for docs; the
#: lookup walks each exception's MRO, so subclasses inherit their nearest
#: ancestor's code unless declared explicitly.
ERROR_CODES: Tuple[Tuple[Type[BaseException], str], ...] = (
    (errors.SessionNotFoundError, "SESSION_NOT_FOUND"),
    (errors.SessionExpiredError, "SESSION_EXPIRED"),
    (errors.UnknownOperationError, "UNKNOWN_OPERATION"),
    (errors.DatasetNotFoundError, "DATASET_NOT_FOUND"),
    (errors.QueryParseError, "QUERY_PARSE_ERROR"),
    (errors.InvalidArgumentError, "INVALID_ARGUMENT"),
    (errors.StaleCursorError, "CURSOR_EXPIRED"),
    (errors.AuthRequiredError, "AUTH_REQUIRED"),
    (errors.RateLimitedError, "RATE_LIMITED"),
    (errors.DeadlineExceededError, "DEADLINE_EXCEEDED"),
    (errors.OverloadedError, "OVERLOADED"),
    (errors.ProtocolError, "PROTOCOL_ERROR"),
    (errors.NavigationError, "NAVIGATION_ERROR"),
    (errors.ConvergenceError, "NOT_CONVERGED"),
    (errors.ExtractionError, "EXTRACTION_FAILED"),
    (errors.MiningError, "MINING_ERROR"),
    (errors.CorruptStoreError, "CORRUPT_STORE"),
    (errors.StorageError, "STORAGE_ERROR"),
    (errors.GraphError, "GRAPH_ERROR"),
    (errors.PartitionError, "PARTITION_ERROR"),
    (errors.GTreeError, "GTREE_ERROR"),
    (errors.DatasetError, "DATASET_ERROR"),
    (errors.ServiceError, "SERVICE_ERROR"),
    (errors.GMineError, "GMINE_ERROR"),
    (TypeError, "INVALID_ARGUMENT"),
    (ValueError, "INVALID_ARGUMENT"),
    (KeyError, "INVALID_ARGUMENT"),
)

#: Fallback for exceptions outside the taxonomy.
INTERNAL_ERROR = "INTERNAL"

_CLASS_BY_CODE: Dict[str, Type[BaseException]] = {}
for _cls, _code in ERROR_CODES:
    # first declaration wins: the most specific class represents its code
    _CLASS_BY_CODE.setdefault(_code, _cls)

#: Wire code -> HTTP status used by the front-end (and mirrored by the
#: in-process transport so parity holds for failures too).
HTTP_STATUS: Dict[str, int] = {
    "SESSION_NOT_FOUND": 404,
    "SESSION_EXPIRED": 410,
    "UNKNOWN_OPERATION": 404,
    "DATASET_NOT_FOUND": 404,
    "QUERY_PARSE_ERROR": 400,
    "INVALID_ARGUMENT": 400,
    "CURSOR_EXPIRED": 410,
    "AUTH_REQUIRED": 401,
    "RATE_LIMITED": 429,
    "DEADLINE_EXCEEDED": 504,
    "OVERLOADED": 503,
    "PROTOCOL_ERROR": 400,
    "NAVIGATION_ERROR": 404,
    "NOT_CONVERGED": 422,
    "EXTRACTION_FAILED": 422,
    "MINING_ERROR": 422,
    "CORRUPT_STORE": 500,
    "STORAGE_ERROR": 500,
    "GRAPH_ERROR": 422,
    "PARTITION_ERROR": 422,
    "GTREE_ERROR": 422,
    "DATASET_ERROR": 422,
    "SERVICE_ERROR": 500,
    "GMINE_ERROR": 500,
    INTERNAL_ERROR: 500,
}


def error_code_for(error: BaseException) -> str:
    """The stable wire code for an exception (nearest declared ancestor)."""
    for klass in type(error).__mro__:
        for declared, code in ERROR_CODES:
            if klass is declared:
                return code
    return INTERNAL_ERROR


def exception_for_code(code: str, message: str) -> BaseException:
    """Rebuild a typed exception from a wire error (client-side re-raise)."""
    klass = _CLASS_BY_CODE.get(code, errors.ServiceError)
    if not issubclass(klass, GMineError):
        # stdlib types in the taxonomy still come back as library errors so
        # one `except GMineError` catches every protocol failure.
        klass = errors.InvalidArgumentError
    return klass(message)


def http_status_for(code: str) -> int:
    return HTTP_STATUS.get(code, 500)


# --------------------------------------------------------------------------- #
# streaming cursors
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResultCursor:
    """One resumable position inside a streamed result.

    The token is opaque to clients but carries everything the server needs
    to resume statelessly: the operation, the dataset **fingerprint** the
    stream was issued under (a hot-reload in between turns resumption into
    a structured ``CURSOR_EXPIRED`` failure instead of a torn vector), a
    digest of the full request (so a token cannot be replayed against a
    different query), the next item offset, and the chunk size.  Offsets
    index the *encoded* stream field, whose order is deterministic — the
    same property the cache and the parity suites already rely on — which
    is what makes pages stable across connections and processes.
    """

    op: str
    fingerprint: str
    request_digest: str
    offset: int
    chunk_size: int

    def to_token(self) -> str:
        payload = json.dumps(
            {
                "op": self.op,
                "fp": self.fingerprint,
                "rq": self.request_digest,
                "of": self.offset,
                "ck": self.chunk_size,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii").rstrip("=")

    @classmethod
    def from_token(cls, token: str) -> "ResultCursor":
        try:
            padded = token + "=" * (-len(token) % 4)
            payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
            return cls(
                op=str(payload["op"]),
                fingerprint=str(payload["fp"]),
                request_digest=str(payload["rq"]),
                offset=int(payload["of"]),
                chunk_size=int(payload["ck"]),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise ProtocolError(f"malformed stream cursor {token!r}") from error

    def advanced(self, offset: int) -> "ResultCursor":
        """The same stream position family, moved to ``offset``."""
        return ResultCursor(
            op=self.op,
            fingerprint=self.fingerprint,
            request_digest=self.request_digest,
            offset=offset,
            chunk_size=self.chunk_size,
        )


def request_digest(request: "Request") -> str:
    """A short stable digest tying a cursor to one exact request.

    Hashes the raw ``(op, dataset, args, page)`` quadruple under the
    canonical serialisation; resuming a stream therefore requires
    repeating the request verbatim (same spelling), which keeps the token
    cheap while still rejecting replays against other queries.
    """
    basis = json.dumps(
        {
            "op": request.op,
            "dataset": request.dataset,
            "args": request.args,
            "page": request.page,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# envelopes
# --------------------------------------------------------------------------- #
@dataclass
class Request:
    """One protocol request envelope (JSON-round-trippable).

    ``chunk_size`` and ``cursor`` only matter on the streaming route:
    ``chunk_size`` asks for pages of that many items, and ``cursor``
    resumes a previously issued stream at its ``next_cursor`` token.
    ``deadline_ms`` is the request's total latency budget: the server
    fast-rejects work it predicts cannot finish in budget and abandons
    in-flight plans past it (``DEADLINE_EXCEEDED``).  All three are
    additive — omitted when unset, so v1 payload bytes are untouched.
    """

    op: str
    args: Dict[str, Any] = field(default_factory=dict)
    dataset: Optional[str] = None
    page: Optional[Dict[str, Any]] = None
    id: Optional[str] = None
    chunk_size: Optional[int] = None
    cursor: Optional[str] = None
    deadline_ms: Optional[float] = None
    protocol: str = PROTOCOL

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "protocol": self.protocol,
            "op": self.op,
            "args": dict(self.args),
        }
        if self.dataset is not None:
            payload["dataset"] = self.dataset
        if self.page is not None:
            payload["page"] = dict(self.page)
        if self.id is not None:
            payload["id"] = self.id
        if self.chunk_size is not None:
            payload["chunk_size"] = self.chunk_size
        if self.cursor is not None:
            payload["cursor"] = self.cursor
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Request":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"request must be a JSON object, got {payload!r}")
        protocol = payload.get("protocol", PROTOCOL)
        if protocol != PROTOCOL:
            raise ProtocolError(
                f"unsupported protocol {protocol!r}; this server speaks {PROTOCOL!r}"
            )
        op = payload.get("op", payload.get("operation"))
        if not op or not isinstance(op, str):
            raise ProtocolError(f"request has no operation: {dict(payload)!r}")
        args = payload.get("args", {})
        if not isinstance(args, Mapping):
            raise ProtocolError(f"request args must be an object, got {args!r}")
        page = payload.get("page")
        if page is not None and not isinstance(page, Mapping):
            raise ProtocolError(f"request page must be an object, got {page!r}")
        chunk_size = payload.get("chunk_size")
        if chunk_size is not None and (
            not isinstance(chunk_size, int)
            or isinstance(chunk_size, bool)
            or chunk_size < 1
        ):
            raise ProtocolError(
                f"request chunk_size must be a positive integer, got {chunk_size!r}"
            )
        cursor = payload.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise ProtocolError(f"request cursor must be a string, got {cursor!r}")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
            or deadline_ms <= 0
        ):
            raise ProtocolError(
                f"request deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        request_id = payload.get("id")
        return cls(
            op=op,
            args=dict(args),
            dataset=payload.get("dataset"),
            page=None if page is None else dict(page),
            id=None if request_id is None else str(request_id),
            chunk_size=chunk_size,
            cursor=cursor,
            deadline_ms=deadline_ms,
            protocol=protocol,
        )


@dataclass
class WireError:
    """Structured failure: stable code + original exception type + message."""

    code: str
    message: str
    type: str = ""
    details: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {"code": self.code, "type": self.type, "message": self.message}
        if self.details is not None:
            payload["details"] = dict(self.details)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WireError":
        details = payload.get("details")
        return cls(
            code=str(payload.get("code", INTERNAL_ERROR)),
            message=str(payload.get("message", "")),
            type=str(payload.get("type", "")),
            details=None if details is None else dict(details),
        )

    @classmethod
    def from_exception(cls, error: BaseException) -> "WireError":
        wire_details = getattr(error, "wire_details", None)
        return cls(
            code=error_code_for(error),
            message=str(error),
            type=type(error).__name__,
            details=wire_details() if callable(wire_details) else None,
        )

    def raise_(self) -> None:
        error = exception_for_code(self.code, self.message)
        if self.details is not None and "retry_after" in self.details:
            # OVERLOADED/RATE_LIMITED hints survive the round-trip so client
            # retry loops can honor the server's backoff suggestion.
            error.retry_after = self.details["retry_after"]
        raise error


@dataclass
class Response:
    """One protocol response envelope (JSON-round-trippable).

    ``cursor``/``next_cursor`` are only present on streamed chunks:
    ``cursor`` names the position this chunk was served from, and
    ``next_cursor`` is the resumption token for the rest of the stream
    (``None`` once exhausted).  One-shot responses never carry either key,
    so v1 payload bytes are untouched.  ``degraded`` is stamped (only when
    true, same additivity rule) on successes served from an expired cache
    entry because the backend failed — the resilience layer's stale-serve
    path.
    """

    ok: bool
    op: str = ""
    result: Any = None
    error: Optional[WireError] = None
    cached: bool = False
    degraded: bool = False
    page: Optional[Dict[str, Any]] = None
    id: Optional[str] = None
    cursor: Optional[str] = None
    next_cursor: Optional[str] = None
    protocol: str = PROTOCOL

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"protocol": self.protocol, "ok": self.ok}
        if self.id is not None:
            payload["id"] = self.id
        if self.op:
            payload["op"] = self.op
        if self.ok:
            payload["cached"] = self.cached
            if self.degraded:
                payload["degraded"] = True
            payload["result"] = self.result
            if self.page is not None:
                payload["page"] = dict(self.page)
            if self.cursor is not None:
                payload["cursor"] = self.cursor
                payload["next_cursor"] = self.next_cursor
        else:
            payload["error"] = (self.error or WireError(INTERNAL_ERROR, "")).to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Response":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"response must be a JSON object, got {payload!r}")
        error = payload.get("error")
        page = payload.get("page")
        request_id = payload.get("id")
        cursor = payload.get("cursor")
        next_cursor = payload.get("next_cursor")
        return cls(
            ok=bool(payload.get("ok")),
            op=str(payload.get("op", "")),
            result=payload.get("result"),
            error=None if error is None else WireError.from_dict(error),
            cached=bool(payload.get("cached", False)),
            degraded=bool(payload.get("degraded", False)),
            page=None if page is None else dict(page),
            id=None if request_id is None else str(request_id),
            cursor=None if cursor is None else str(cursor),
            next_cursor=None if next_cursor is None else str(next_cursor),
            protocol=str(payload.get("protocol", PROTOCOL)),
        )

    @classmethod
    def failure(
        cls, error: BaseException, op: str = "", request_id: Optional[str] = None
    ) -> "Response":
        return cls(
            ok=False, op=op, error=WireError.from_exception(error), id=request_id
        )

    def unwrap(self) -> Any:
        """Return the result payload, re-raising a typed taxonomy error."""
        if not self.ok:
            (self.error or WireError(INTERNAL_ERROR, "request failed")).raise_()
        return self.result

    @property
    def status(self) -> int:
        """The HTTP status this envelope travels under."""
        if self.ok:
            return 200
        return http_status_for((self.error or WireError(INTERNAL_ERROR, "")).code)

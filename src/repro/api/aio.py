"""Asyncio HTTP front-end for the GMine Protocol (``--asyncio``).

The threaded front-end (:mod:`repro.api.http`) spends one OS thread per
connection; this module serves the *same* protocol from a single event
loop — the deployment shape native-DBMS front-ends favour for heavy
interactive traffic, where thousands of mostly-idle exploration sessions
each fire small queries.

The design constraint is parity, not novelty: the server owns **no
protocol logic**.  Every request is parsed into the same ``(method, path,
body)`` triple, policy-checked by the same
:class:`~repro.api.http.FrontendPolicy`, routed through the same
:class:`~repro.api.router.ProtocolRouter`, and serialised with the same
canonical :func:`~repro.api.router.dumps` as the threaded front-end and
the in-process transport — so response bytes are identical across all
three by construction, and the parity suites assert it.  Compute runs in
the loop's default thread-pool executor (the service and its execution
backends are already thread-safe), keeping the loop free to multiplex
connections; streamed results go out as the same chunked NDJSON the
threaded server emits.

HTTP support is deliberately minimal but real: HTTP/1.1 with keep-alive,
``Content-Length`` bodies in, ``Content-Length`` or chunked
``Transfer-Encoding`` out.  Stdlib only.

:class:`GMineAsyncHTTPServer` mirrors :class:`~repro.api.http.GMineHTTPServer`
for embedding (background thread running the loop, port-0 friendly);
:func:`serve_aio` is the blocking CLI entry point behind
``gmine serve --http PORT --asyncio``.
"""

from __future__ import annotations

import asyncio
import threading
from http.client import responses as _STATUS_PHRASES
from typing import Dict, Optional, Tuple

from ..errors import GMineError, ProtocolError
from .http import (
    HEALTH_PATHS,
    MAX_BODY_BYTES,
    STREAM_CONTENT_TYPE,
    FrontendPolicy,
    chunked_ndjson_frames,
    parse_json_body,
    retry_after_of,
)
from .router import ProtocolRouter, dumps, error_payload

#: Hard cap on one request head (request line + headers).
_MAX_HEADER_BYTES = 64 * 1024


def _head(status: int, headers: Dict[str, str]) -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class GMineAsyncHTTPServer:
    """Asyncio front-end over one :class:`GMineService`.

    ``start()`` runs the event loop in a background daemon thread (tests
    bind port 0 and read the chosen port from :attr:`address`);
    ``serve_forever()`` blocks the calling thread (CLI mode).  The
    interface mirrors :class:`~repro.api.http.GMineHTTPServer`, so callers
    can treat the two front-ends interchangeably.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 8080,
        policy: Optional[FrontendPolicy] = None,
    ) -> None:
        self.router = ProtocolRouter(service)
        self.policy = policy
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GMineAsyncHTTPServer":
        """Serve from a background daemon thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="gmine-aio", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        self.start()
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    def stop(self) -> None:
        """Shut the listener down and join the loop thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout=10)
        self._thread = None
        self._started.clear()
        self._address = None

    def __enter__(self) -> "GMineAsyncHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._started.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.run_until_complete(loop.shutdown_default_executor())
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            asyncio.set_event_loop(None)
            loop.close()
            self._loop = None

    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop.wait()

    # ------------------------------------------------------------------ #
    # one connection (HTTP/1.1 with keep-alive)
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await self._read_request(reader, writer)
                if parsed is None:
                    break
                keep_alive = await self._respond(writer, *parsed)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(self, reader, writer):
        """Parse one request; returns (method, path, headers, body) or None.

        ``None`` means the peer closed the connection cleanly between
        requests.  A malformed head is answered with a 400 envelope and
        the connection is closed (we cannot trust further framing).
        """
        try:
            # readline() re-raises an over-limit line as ValueError, so it
            # must sit inside the try to become a 400 envelope rather than
            # an unhandled task exception.
            request_line = await reader.readline()
            if not request_line or not request_line.strip():
                return None
            if len(request_line) > _MAX_HEADER_BYTES:
                raise ProtocolError("request line too long")
            method, target, _version = request_line.decode("ascii").split(None, 2)
            headers: Dict[str, str] = {}
            header_bytes = 0
            while True:
                line = await reader.readline()
                header_bytes += len(line)
                if header_bytes > _MAX_HEADER_BYTES:
                    raise ProtocolError("request headers too long")
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            if length > MAX_BODY_BYTES:
                raise ProtocolError(f"request body too large ({length} bytes)")
            body = await reader.readexactly(length) if length else b""
        except (ValueError, UnicodeDecodeError, ProtocolError) as error:
            status, payload = error_payload(
                error if isinstance(error, ProtocolError)
                else ProtocolError(f"malformed HTTP request: {error}")
            )
            await self._write_payload(writer, status, dumps(payload), close=True)
            return None
        return method.upper(), target, headers, body

    async def _respond(self, writer, method, target, headers, body_bytes) -> bool:
        keep_alive = headers.get("connection", "").lower() != "close"
        path = target.split("?", 1)[0]
        # Health probes bypass the policy, same as the threaded front-end.
        guarded = self.policy is not None and path.rstrip("/") not in HEALTH_PATHS
        if guarded:
            try:
                self.policy.check(headers)
            except GMineError as error:
                status, payload = error_payload(error)
                await self._write_payload(
                    writer, status, dumps(payload), close=not keep_alive
                )
                return keep_alive
        try:
            body = parse_json_body(body_bytes)
        except ProtocolError as error:
            status, payload = error_payload(error)
            await self._write_payload(
                writer, status, dumps(payload), close=not keep_alive
            )
            return keep_alive
        if guarded and not self.policy.try_enter():
            error = self.policy.overloaded()
            status, payload = error_payload(error)
            await self._write_payload(
                writer, status, dumps(payload), close=not keep_alive,
                retry_after=error.retry_after,
            )
            return keep_alive
        try:
            loop = asyncio.get_running_loop()
            if path.rstrip("/") == "/v1/stream":
                # The blocking part of a stream (dispatch + encode) happens
                # inside handle_stream; the returned generator only slices.
                status, payloads = await loop.run_in_executor(
                    None, self.router.handle_stream, method, path, body
                )
                await self._write_stream(writer, status, payloads)
                return keep_alive
            status, payload = await loop.run_in_executor(
                None, self.router.handle, method, path, body
            )
            await self._write_payload(
                writer, status, dumps(payload), close=not keep_alive,
                retry_after=retry_after_of(payload),
            )
            return keep_alive
        finally:
            if guarded:
                self.policy.leave()

    async def _write_payload(
        self,
        writer,
        status,
        body: bytes,
        close: bool,
        retry_after: Optional[float] = None,
    ) -> None:
        headers = {
            "Content-Type": "application/json; charset=utf-8",
            "Content-Length": str(len(body)),
        }
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        if close:
            headers["Connection"] = "close"
        writer.write(_head(status, headers) + body)
        await writer.drain()

    async def _write_stream(self, writer, status, payloads) -> None:
        """Emit chunked NDJSON — the exact frames the threaded server sends."""
        writer.write(_head(status, {
            "Content-Type": STREAM_CONTENT_TYPE,
            "Transfer-Encoding": "chunked",
        }))
        for frame in chunked_ndjson_frames(payloads):
            writer.write(frame)
            await writer.drain()


def serve_aio(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    policy: Optional[FrontendPolicy] = None,
) -> None:
    """Blocking CLI entry point: serve the asyncio front-end until interrupted."""
    server = GMineAsyncHTTPServer(service, host=host, port=port, policy=policy)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()

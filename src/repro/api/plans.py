"""Picklable compute plans: *what* an operation computes, detached from *where*.

Execution engine v2 splits every expensive operation into two halves:

* a **plan** — a pure, picklable description of the kernel invocation
  (:class:`ComputePlan`): the canonical arguments plus the scope to
  materialise.  Plans close over nothing — no service, no engine, no open
  file handles — which is exactly what lets a
  :class:`~repro.service.executors.ProcessBackend` ship them to a worker
  process over ``pickle``;
* a **kernel** — a pure entry point in :mod:`repro.mining` (RWR steady
  states, the metric suite, connection-subgraph extraction) run against the
  materialised scope.  Kernels are looked up by name in :data:`KERNELS`
  (never by pickled function object, so spawn-based workers resolve them by
  import), and their rich results (``RWRResult``, ``SubgraphMetrics``,
  ``ExtractionResult``) travel back to the parent, where the wire **encode**
  step is applied — encoding never happens in a worker.

:func:`run_plan` is the single execution path every backend uses: the
inline and thread backends resolve the scope against the live dataset in
the parent, the process backend resolves it against a store the worker
pre-loaded by ``(path, fingerprint)``.  One code path, three venues —
byte-identical results by construction.

The optional ``resolve_prepared`` hook supplies each venue's cached
:class:`~repro.graph.matrix.PreparedGraph` — the parent resolves it off
the :class:`~repro.service.datasets.DatasetHandle`, process workers off
their warm context — so widest-scope kernels skip the O(E)
graph-to-matrix conversion entirely.  A prepared view never changes a
result (bit-parity is the prepared layer's contract), it only skips work,
which is why it is *not* part of the plan: plans stay pure descriptions
of what to compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import ServiceError
from ..mining.connection_subgraph import extract_connection_subgraph
from ..mining.metrics_suite import compute_subgraph_metrics
from ..mining.rwr import steady_state_rwr
from ..query.evaluate import evaluate_path

#: Scope resolver signature: a community reference (``None`` = widest
#: scope) to a materialised subgraph.  The parent backs this with the live
#: engine; process workers back it with their pre-loaded store.
ScopeResolver = Callable[[Any], Any]

#: Prepared resolver signature: ``(scope, materialised subgraph)`` to the
#: venue's cached :class:`~repro.graph.matrix.PreparedGraph`, or ``None``
#: when the scope has no prepared view (community subgraphs, datasets
#: without a full graph).
PreparedResolver = Callable[[Any, Any], Any]


def prepared_applies(scope: Any, subgraph: Any, graph: Any) -> bool:
    """Whether a venue's cached prepared view may serve this kernel run.

    The single source of truth for the gating rule — shared by the
    parent's :meth:`~repro.service.datasets.DatasetHandle.prepared_provider`
    and the process worker's provider, so the two venues can never drift
    on *when* the prepared path applies: only at widest scope (``scope is
    None``), and only when the kernel is really about to run on the
    venue's full graph object (community subgraphs are fresh per request
    and convert cold).
    """
    return scope is None and graph is not None and subgraph is graph


@dataclass(frozen=True)
class ComputePlan:
    """One kernel invocation, fully described by picklable values.

    ``args`` holds the canonical argument mapping flattened to an ordered
    tuple of ``(name, value)`` pairs (canonical values are primitives,
    lists and nested signature dicts — all picklable); ``scope`` is the
    community to materialise before the kernel runs (``None`` = widest
    scope: the full graph when one is attached, the root subgraph
    otherwise).
    """

    operation: str
    kernel: str
    scope: Any
    args: Tuple[Tuple[str, Any], ...]

    @property
    def arg_dict(self) -> Dict[str, Any]:
        """The canonical arguments as a plain dict."""
        return dict(self.args)


def _freeze_args(canonical: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Flatten a canonical mapping into a deterministic picklable tuple."""
    return tuple((name, canonical[name]) for name in canonical)


def plan_for(operation: str, kernel: str, canonical: Mapping[str, Any]) -> ComputePlan:
    """Build the plan for one canonicalized request (scope = ``community``)."""
    return ComputePlan(
        operation=operation,
        kernel=kernel,
        scope=canonical.get("community"),
        args=_freeze_args(canonical),
    )


# --------------------------------------------------------------------------- #
# kernels: pure mining entry points keyed by name
# --------------------------------------------------------------------------- #
def _kernel_metrics(subgraph, args: Mapping[str, Any], prepared=None):
    signature = dict(args["metrics"])
    return compute_subgraph_metrics(
        subgraph,
        hop_sample_size=signature["hop_sample_size"],
        pagerank_damping=signature["pagerank_damping"],
        top_k=signature["top_k"],
        seed=signature["seed"],
        prepared=prepared,
    )


def _kernel_rwr(subgraph, args: Mapping[str, Any], prepared=None):
    return steady_state_rwr(
        subgraph,
        args["sources"],
        restart_probability=args["restart_probability"],
        solver=args["solver"],
        prepared=prepared,
    )


def _kernel_connection_subgraph(subgraph, args: Mapping[str, Any], prepared=None):
    return extract_connection_subgraph(
        subgraph,
        args["sources"],
        budget=args["budget"],
        restart_probability=args["restart_probability"],
        prepared=prepared,
    )


#: Kernel name -> pure ``(subgraph, canonical args, prepared) -> rich
#: result``.  ``prepared`` is the venue's cached
#: :class:`~repro.graph.matrix.PreparedGraph` for the materialised scope
#: (``None`` = convert cold); it never changes the result, only the cost.
def _kernel_path(subgraph, args: Mapping[str, Any], prepared=None):
    return evaluate_path(subgraph, args["plan"], prepared=prepared)


KERNELS: Dict[str, Callable[..., Any]] = {
    "metrics": _kernel_metrics,
    "rwr": _kernel_rwr,
    "connection_subgraph": _kernel_connection_subgraph,
    "path": _kernel_path,
}


def run_plan(
    plan: ComputePlan,
    resolve_scope: ScopeResolver,
    resolve_prepared: Optional[PreparedResolver] = None,
) -> Any:
    """Execute one plan: materialise its scope, run its kernel.

    This is the only way plans execute, in the parent or in a worker; the
    venue differs solely in what ``resolve_scope`` (and, when given,
    ``resolve_prepared``) is backed by.
    """
    try:
        kernel = KERNELS[plan.kernel]
    except KeyError:
        raise ServiceError(
            f"plan for {plan.operation!r} names unknown kernel {plan.kernel!r}"
        ) from None
    subgraph = resolve_scope(plan.scope)
    prepared = None
    if resolve_prepared is not None:
        prepared = resolve_prepared(plan.scope, subgraph)
    return kernel(subgraph, plan.arg_dict, prepared)

"""`GMineClient`: one client API, two transports.

The client mirrors the service surface — queries, batches, streams, op
discovery, stats, and session lifecycle — over either transport:

* **in-process**: ``GMineClient.in_process(service)`` routes through the
  same :class:`~repro.api.router.ProtocolRouter` the HTTP servers use and
  serialises payloads with the same canonical ``dumps``, so the bytes are
  identical to what a socket would carry;
* **HTTP**: ``GMineClient.http(url)`` speaks to a running
  ``gmine serve --http`` front-end — threaded or asyncio, the wire is the
  same — via :mod:`urllib` (stdlib only).  ``auth_token=`` attaches the
  bearer token a :class:`~repro.api.http.FrontendPolicy` demands.

Protocol v2 adds the **streaming iterator API**: :meth:`GMineClient.stream`
yields one :class:`~repro.api.wire.Response` per cursor chunk, and
:meth:`GMineClient.stream_result` reassembles the chunks into the exact
payload a one-shot query for the full vector returns — byte-identical by
construction, which the streaming parity suite asserts.

Examples and tests take a client, not a service, and therefore run
unchanged against every deployment.  Failures come back as
:class:`~repro.api.wire.Response` envelopes whose ``unwrap()`` raises the
typed exception for the structured error code (``SESSION_EXPIRED`` raises
:class:`~repro.errors.SessionExpiredError`, and so on).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ProtocolError
from .ops import DEFAULT_REGISTRY
from .router import ProtocolRouter, dumps
from .wire import PROTOCOL, Request, Response, WireError, exception_for_code

#: A transport exchange: HTTP status, parsed payload, canonical raw bytes.
Exchange = Tuple[int, Dict[str, Any], bytes]

#: Envelope error codes a retry may reasonably turn into a success:
#: transient server-side pushback, not request defects.
RETRYABLE_CODES = frozenset({"OVERLOADED", "RATE_LIMITED"})

#: Extra socket headroom past a request's deadline: the server needs a
#: moment to notice the expiry and serialise the DEADLINE_EXCEEDED
#: envelope; the client should receive that envelope, not a socket error.
HTTP_TIMEOUT_GRACE = 5.0


def _is_idempotent(op: str) -> bool:
    """Whether ``op`` is safe to retry: the registry's cacheable flag.

    Cacheable ops are pure functions of (dataset fingerprint, args) —
    re-running one can only repeat the same answer.  Mutating ops
    (``session.step``, ``dataset.apply``) and unknown ops never retry:
    the first attempt may have landed before the failure was reported.
    """
    try:
        return bool(DEFAULT_REGISTRY.get(op).cacheable)
    except Exception:  # noqa: BLE001 — unknown op: assume not idempotent
        return False


def _jsonify_sets(value: Any) -> Any:
    """JSON fallback for request bodies: sets become sorted lists.

    The registry accepts set/frozenset sources (their order is
    canonicalized away server-side anyway), so both transports must carry
    them; anything else non-JSON is a caller bug and fails loudly instead
    of being silently stringified.
    """
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    raise TypeError(
        f"request payload value {value!r} ({type(value).__name__}) "
        "is not JSON-serializable"
    )


def _encode_request_body(body: Mapping[str, Any]) -> bytes:
    try:
        return json.dumps(body, default=_jsonify_sets).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"request is not JSON-serializable: {error}") from error


class InProcessTransport:
    """Route through the shared router without touching a socket."""

    name = "in-process"

    def __init__(self, service) -> None:
        self.router = ProtocolRouter(service)

    def call(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]],
        timeout: Optional[float] = None,
    ) -> Exchange:
        # ``timeout`` is a socket-level knob; in-process there is no socket
        # — the envelope's ``deadline_ms`` is what bounds the work.
        status, payload = self.router.handle(method, path, body)
        raw = dumps(payload)
        # Round-trip through JSON so in-process callers can never observe
        # richer types than a remote caller would (tuples, numpy scalars…).
        return status, json.loads(raw.decode("utf-8")), raw

    def stream(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]],
        timeout: Optional[float] = None,
    ) -> Iterator[Exchange]:
        """Yield one exchange per streamed chunk (shared router path)."""
        status, payloads = self.router.handle_stream(method, path, body)
        for payload in payloads:
            raw = dumps(payload)
            yield status, json.loads(raw.decode("utf-8")), raw

    def close(self) -> None:
        pass


class HTTPTransport:
    """Speak to a running ``gmine serve --http`` front-end (stdlib only)."""

    name = "http"

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        auth_token: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.auth_token = auth_token

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.auth_token is not None:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        return headers

    def call(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]],
        timeout: Optional[float] = None,
    ) -> Exchange:
        data = None if body is None else _encode_request_body(body)
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=self._headers(),
        )
        socket_timeout = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request, timeout=socket_timeout) as reply:
                raw = reply.read()
                status = reply.status
        except urllib.error.HTTPError as error:
            # Structured failures (404 unknown session, 410 expired, …)
            # still carry a protocol envelope in the body.
            raw = error.read()
            status = error.code
        except urllib.error.URLError as error:
            raise ProtocolError(
                f"cannot reach GMine server at {self.base_url}: {error.reason}"
            ) from error
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                f"server returned non-protocol payload (status {status})"
            ) from error
        return status, payload, raw

    def stream(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]],
        timeout: Optional[float] = None,
    ) -> Iterator[Exchange]:
        """Yield one exchange per NDJSON line of a chunked stream response.

        ``urllib`` decodes the chunked transfer encoding transparently;
        each line is one canonical envelope, yielded with its exact bytes
        (sans the line feed) so parity against the in-process transport is
        byte-for-byte.  Closing the generator early closes the socket.
        """
        data = None if body is None else _encode_request_body(body)
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=self._headers(),
        )
        try:
            reply = urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as error:
            reply = error  # error bodies stream exactly like success bodies
        except urllib.error.URLError as error:
            raise ProtocolError(
                f"cannot reach GMine server at {self.base_url}: {error.reason}"
            ) from error
        status = reply.status if hasattr(reply, "status") else reply.code
        try:
            while True:
                line = reply.readline()
                if not line:
                    break
                raw = line.rstrip(b"\n")
                if not raw:
                    continue
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise ProtocolError(
                        f"server streamed a non-protocol line (status {status})"
                    ) from error
                yield status, payload, raw
        finally:
            reply.close()

    def close(self) -> None:
        pass


class GMineClient:
    """Transport-agnostic GMine Protocol v2 client.

    ``retry`` opts into client-side retries: pass a
    :class:`repro.service.resilience.RetryPolicy` (or anything with its
    ``attempts``/``pause(attempt, retry_after)`` shape).  Only idempotent
    (registry-cacheable) operations ever retry, and only on transient
    pushback — ``OVERLOADED``/``RATE_LIMITED`` envelopes (honouring the
    server's ``retry_after`` hint) and transport-level
    :class:`~repro.errors.ProtocolError` failures.
    """

    def __init__(
        self,
        transport: Union[InProcessTransport, HTTPTransport],
        retry: Optional[Any] = None,
    ) -> None:
        self.transport = transport
        self.retry = retry

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def in_process(cls, service, retry: Optional[Any] = None) -> "GMineClient":
        """A client bound directly to a live service object."""
        return cls(InProcessTransport(service), retry=retry)

    @classmethod
    def http(
        cls,
        url: str,
        timeout: float = 30.0,
        auth_token: Optional[str] = None,
        retry: Optional[Any] = None,
    ) -> "GMineClient":
        """A client speaking to ``gmine serve --http`` at ``url``.

        ``auth_token`` attaches ``Authorization: Bearer <token>`` to every
        request, matching a server started with ``--auth-token``.
        """
        return cls(
            HTTPTransport(url, timeout=timeout, auth_token=auth_token),
            retry=retry,
        )

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "GMineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        op: str,
        dataset: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
        page: Optional[Mapping[str, Any]] = None,
        request_id: Optional[str] = None,
        timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> Response:
        """Run one operation; keyword arguments merge into ``args``.

        ``timeout`` (seconds) stamps the envelope's ``deadline_ms`` — the
        server fast-rejects or abandons work past the budget with a
        ``DEADLINE_EXCEEDED`` envelope — and, over HTTP, bounds the socket
        wait at ``timeout`` plus a small grace so that envelope arrives
        instead of a raw socket error.
        """
        merged = dict(args or {})
        merged.update(kwargs)
        request = Request(
            op=op,
            args=merged,
            dataset=dataset,
            page=None if page is None else dict(page),
            id=request_id,
            deadline_ms=None if timeout is None else float(timeout) * 1000.0,
        )
        body = request.to_dict()
        call_timeout = None if timeout is None else float(timeout) + HTTP_TIMEOUT_GRACE

        attempts = 1
        if self.retry is not None and _is_idempotent(op):
            attempts = max(1, int(self.retry.attempts))
        for attempt in range(attempts):
            final = attempt >= attempts - 1
            try:
                _, payload, _ = self.transport.call(
                    "POST", "/v1/query", body, timeout=call_timeout
                )
            except ProtocolError:
                # Transport failure (unreachable server, torn connection):
                # idempotent requests may simply try again.
                if final:
                    raise
                self.retry.pause(attempt, None)
                continue
            response = Response.from_dict(payload)
            error = response.error
            if error is not None and error.code in RETRYABLE_CODES and not final:
                retry_after = None
                if isinstance(error.details, Mapping):
                    retry_after = error.details.get("retry_after")
                self.retry.pause(attempt, retry_after)
                continue
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    def query_raw(
        self,
        op: str,
        dataset: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
        page: Optional[Mapping[str, Any]] = None,
    ) -> bytes:
        """The canonical wire bytes for one query (parity testing hook)."""
        request = Request(op=op, args=dict(args or {}), dataset=dataset,
                          page=None if page is None else dict(page))
        _, _, raw = self.transport.call("POST", "/v1/query", request.to_dict())
        return raw

    def call(
        self,
        op: str,
        dataset: Optional[str] = None,
        page: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
        **args: Any,
    ) -> Any:
        """Run one operation and unwrap its payload (raises typed errors)."""
        return self.query(
            op, dataset=dataset, args=args, page=page, timeout=timeout
        ).unwrap()

    # ------------------------------------------------------------------ #
    # streaming cursors
    # ------------------------------------------------------------------ #
    def stream(
        self,
        op: str,
        dataset: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
        page: Optional[Mapping[str, Any]] = None,
        chunk_size: Optional[int] = None,
        cursor: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Iterator[Response]:
        """Iterate the cursor chunks of one streamable operation.

        Each yielded :class:`Response` carries a slice of the result's
        stream field plus ``cursor``/``next_cursor``; pass a previous
        chunk's ``next_cursor`` as ``cursor`` (with the *same* request)
        to resume after a disconnect.  Check ``response.ok`` (or call
        ``unwrap()``) — a failed stream yields exactly one error envelope.
        """
        request = Request(
            op=op,
            args=dict(args or {}),
            dataset=dataset,
            page=None if page is None else dict(page),
            id=request_id,
            chunk_size=chunk_size,
            cursor=cursor,
        )
        for _status, payload, _raw in self.transport.stream(
            "POST", "/v1/stream", request.to_dict()
        ):
            yield Response.from_dict(payload)

    def stream_raw(
        self,
        op: str,
        dataset: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
        page: Optional[Mapping[str, Any]] = None,
        chunk_size: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> List[bytes]:
        """The canonical wire bytes of every chunk (parity testing hook)."""
        request = Request(op=op, args=dict(args or {}), dataset=dataset,
                          page=None if page is None else dict(page),
                          chunk_size=chunk_size, cursor=cursor)
        return [
            raw
            for _status, _payload, raw in self.transport.stream(
                "POST", "/v1/stream", request.to_dict()
            )
        ]

    def stream_result(
        self,
        op: str,
        dataset: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
        page: Optional[Mapping[str, Any]] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Stream one operation and reassemble the full result payload.

        The returned dict is byte-identical (under the canonical
        serialisation) to the ``result`` of a one-shot query whose
        pagination covers the whole vector — chunking is pure transport,
        never a different answer.  Raises the typed taxonomy error if the
        stream fails.
        """
        chunks = list(
            self.stream(op, dataset=dataset, args=args, page=page,
                        chunk_size=chunk_size)
        )
        first = chunks[0]
        if not first.ok:
            first.unwrap()
        field = first.page["field"]
        merged = dict(first.result)
        merged[field] = [
            item for response in chunks for item in response.result[field]
        ]
        return merged

    def batch(
        self, requests: Sequence[Union[Request, Mapping[str, Any]]]
    ) -> List[Response]:
        """Run many operations; per-request failures come back in place."""
        body = {
            "protocol": PROTOCOL,
            "requests": [
                item.to_dict() if isinstance(item, Request) else dict(item)
                for item in requests
            ],
        }
        status, payload, _ = self.transport.call("POST", "/v1/batch", body)
        self._check_envelope(status, payload)
        return [Response.from_dict(entry) for entry in payload.get("responses", [])]

    # ------------------------------------------------------------------ #
    # discovery + stats
    # ------------------------------------------------------------------ #
    def ops(self) -> List[Dict[str, Any]]:
        """The registry's op table: names, schemas, cost classes."""
        status, payload, _ = self.transport.call("GET", "/v1/ops", None)
        self._check_envelope(status, payload)
        return payload["ops"]

    def stats(self) -> Dict[str, Any]:
        """Cache / backend / compute / session statistics of the service."""
        status, payload, _ = self.transport.call("GET", "/v1/stats", None)
        self._check_envelope(status, payload)
        return payload["stats"]

    def datasets(self) -> List[Dict[str, Any]]:
        """The dataset table: name, kind, fingerprint, backing paths."""
        status, payload, _ = self.transport.call("GET", "/v1/datasets", None)
        self._check_envelope(status, payload)
        return payload["datasets"]

    def reload_dataset(self, name: str) -> Dict[str, Any]:
        """Hot-reload one dataset from its backing file; returns the report."""
        status, payload, _ = self.transport.call(
            "POST", f"/v1/datasets/{name}/reload", None
        )
        self._check_envelope(status, payload)
        return {
            key: value
            for key, value in payload.items()
            if key not in ("protocol", "ok")
        }

    def apply_dataset(
        self,
        name: str,
        script: Sequence[Dict[str, Any]],
        refresh_rwr: bool = False,
    ) -> Dict[str, Any]:
        """Apply an edit script to a mutable dataset; returns the change report.

        The report carries the new and previous root fingerprints, the
        touched communities with their new sub-fingerprints, and how many
        cache entries the edit invalidated — everything a client needs to
        refresh its own derived state selectively.
        """
        body: Dict[str, Any] = {"script": list(script)}
        if refresh_rwr:
            body["refresh_rwr"] = True
        status, payload, _ = self.transport.call(
            "POST", f"/v1/datasets/{name}/apply", body
        )
        self._check_envelope(status, payload)
        return {
            key: value
            for key, value in payload.items()
            if key not in ("protocol", "ok")
        }

    def subscribe(
        self,
        dataset: Optional[str] = None,
        since: int = 0,
        timeout: float = 0.0,
        community: Optional[Union[int, str]] = None,
    ) -> Dict[str, Any]:
        """Long-poll the dataset's change feed for events after ``since``.

        Returns ``{"events": [...], "next_since": N, "fingerprint": ...,
        "lagged": bool}``; pass ``next_since`` back in to resume the poll
        loop without missing or re-reading an event.  ``community``
        filters to events touching that community.
        """
        body: Dict[str, Any] = {"since": int(since), "timeout": timeout}
        if dataset is not None:
            body["dataset"] = dataset
        if community is not None:
            body["community"] = community
        status, payload, _ = self.transport.call("POST", "/v1/subscribe", body)
        self._check_envelope(status, payload)
        return {
            key: value
            for key, value in payload.items()
            if key not in ("protocol", "ok")
        }

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def create_session(
        self,
        dataset: Optional[str] = None,
        focus: Optional[str] = None,
        name: str = "session",
        ttl: Optional[float] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"name": name}
        if dataset is not None:
            body["dataset"] = dataset
        if focus is not None:
            body["focus"] = focus
        if ttl is not None:
            body["ttl"] = ttl
        status, payload, _ = self.transport.call("POST", "/v1/sessions", body)
        self._check_envelope(status, payload)
        return payload["session"]

    def restore_session(
        self, state: Mapping[str, Any], dataset: Optional[str] = None
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"state": dict(state)}
        if dataset is not None:
            body["dataset"] = dataset
        status, payload, _ = self.transport.call("POST", "/v1/sessions", body)
        self._check_envelope(status, payload)
        return payload["session"]

    def sessions(self) -> List[str]:
        status, payload, _ = self.transport.call("GET", "/v1/sessions", None)
        self._check_envelope(status, payload)
        return payload["sessions"]

    def resume_session(self, session_id: str) -> Dict[str, Any]:
        status, payload, _ = self.transport.call(
            "POST", f"/v1/sessions/{session_id}/resume", None
        )
        self._check_envelope(status, payload)
        return payload["session"]

    def session_state(self, session_id: str) -> Dict[str, Any]:
        status, payload, _ = self.transport.call(
            "GET", f"/v1/sessions/{session_id}", None
        )
        self._check_envelope(status, payload)
        return payload["state"]

    def session_step(
        self, session_id: str, action: str, **args: Any
    ) -> Dict[str, Any]:
        """Apply one exploration step; returns {'session', 'action', 'result'}."""
        status, payload, _ = self.transport.call(
            "POST",
            f"/v1/sessions/{session_id}/step",
            {"action": action, "args": args},
        )
        self._check_envelope(status, payload)
        return payload

    def close_session(self, session_id: str) -> None:
        status, payload, _ = self.transport.call(
            "DELETE", f"/v1/sessions/{session_id}", None
        )
        self._check_envelope(status, payload)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_envelope(status: int, payload: Mapping[str, Any]) -> None:
        """Raise the typed taxonomy exception for a failed envelope."""
        if payload.get("ok"):
            return
        error = payload.get("error")
        if isinstance(error, Mapping):
            WireError.from_dict(error).raise_()
        raise exception_for_code(
            "PROTOCOL_ERROR", f"request failed with HTTP status {status}"
        )

"""Command-line interface for the GMine reproduction.

Subcommands mirror the workflow of the original demo:

* ``gmine generate`` — create a synthetic DBLP-like dataset and save it,
* ``gmine build`` — build a G-Tree from a graph file and persist it,
* ``gmine stats`` — summarise a graph or a stored G-Tree,
* ``gmine query`` — label query against a stored G-Tree, **or** a one-shot
  GMine Protocol call: ``gmine query <store|dataset> <op> --args '{...}'``
  runs any registered operation through :class:`~repro.api.client.GMineClient`
  (in-process over a store, or remote with ``--url``),
* ``gmine ops`` — list the protocol's operation registry, dataset and
  session scopes alike (``--describe`` dumps the full schema table),
* ``gmine extract`` — run connection-subgraph extraction,
* ``gmine render`` — render a Tomahawk view or a subgraph to SVG,
* ``gmine serve`` — execute a batch of query requests through the
  multi-session service, or with ``--http PORT`` expose the service as the
  GMine Protocol HTTP front-end (``--asyncio`` for the event-loop server;
  ``--auth-token``/``--rate-limit`` for transport guard rails;
  ``--backend auto`` to pick the execution venue per op),
* ``gmine session`` — create/resume serialisable exploration sessions
  (``gmine session create``, ``gmine session resume``).

Every subcommand works on files so the pieces can be chained in shell
scripts; see ``examples/`` for the Python-API equivalents.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .api import (
    DEFAULT_REGISTRY,
    FrontendPolicy,
    GMineAsyncHTTPServer,
    GMineClient,
    GMineHTTPServer,
)
from .core.builder import GTreeBuildOptions, GTreeBuilder
from .core.engine import GMineEngine
from .data.dblp import DBLPConfig, generate_dblp
from .errors import CLIError, GMineError
from .graph.io import load_graph_auto, write_edge_list, write_json
from .mining.connection_subgraph import ExtractionResult, extract_connection_subgraph, extraction_summary
from .mining.metrics_suite import SubgraphMetrics, compute_subgraph_metrics
from .mining.rwr import RWRResult
from .service import GMineService, QueryResult
from .storage.gtree_store import GTreeStore, save_gtree
from .viz.render import render_subgraph, render_tomahawk_view
from .viz.svg import write_svg


def _load_graph(path: str):
    """Load a graph from ``.json`` or edge-list format based on the suffix."""
    file_path = Path(path)
    if not file_path.exists():
        raise CLIError(f"graph file does not exist: {path}")
    return load_graph_auto(file_path)


def _print_json(payload) -> None:
    json.dump(payload, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #
def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic DBLP-like dataset and write it to disk."""
    config = DBLPConfig(
        num_authors=args.authors,
        num_communities=args.communities,
        sub_communities_per_community=args.sub_communities,
        seed=args.seed,
    )
    dataset = generate_dblp(config)
    output = Path(args.output)
    if output.suffix == ".json":
        write_json(dataset.graph, output)
    else:
        write_edge_list(dataset.graph, output)
    _print_json(
        {
            "authors": dataset.num_authors,
            "collaborations": dataset.num_collaborations,
            "output": str(output),
        }
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Build a G-Tree from a graph file and save it to a single-file store."""
    graph = _load_graph(args.graph)
    options = GTreeBuildOptions(fanout=args.fanout, levels=args.levels, seed=args.seed)
    tree = GTreeBuilder(options).build(graph)
    save_gtree(tree, args.output)
    summary = tree.summary()
    summary["store"] = str(args.output)
    _print_json(summary)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarise a graph file or a G-Tree store."""
    path = Path(args.path)
    if path.suffix == ".gtree":
        with GTreeStore(path) as store:
            _print_json(store.tree.summary())
        return 0
    graph = _load_graph(args.path)
    metrics = compute_subgraph_metrics(graph, hop_sample_size=args.hop_sample)
    _print_json(metrics.as_dict())
    return 0


def _parse_page(args: argparse.Namespace):
    """Collect --top-k/--offset/--limit into one protocol page block."""
    page = {}
    if getattr(args, "top_k", None) is not None:
        page["top_k"] = args.top_k
    if getattr(args, "offset", None) is not None:
        page["offset"] = args.offset
    if getattr(args, "limit", None) is not None:
        page["limit"] = args.limit
    return page or None


def cmd_query(args: argparse.Namespace) -> int:
    """Label query against a store, or a one-shot protocol operation.

    ``gmine query <store.gtree> <op> --args '{...}'`` runs any registered
    operation in-process over the store; ``gmine query <dataset> <op>
    --url http://host:port`` runs it against a live ``gmine serve --http``
    front-end.  Without an ``<op>`` positional this is the original label
    query (``--store``/``--value``).
    """
    if getattr(args, "op", None):
        return _cmd_query_protocol(args)
    if not args.store or args.value is None:
        raise CLIError(
            "label-query mode needs --store and --value "
            "(or pass <store> <op> positionals for a protocol call)"
        )
    with GTreeStore(args.store) as store:
        engine = GMineEngine.from_store(store)
        attribute = None if args.by_id else args.attribute
        value = int(args.value) if args.by_id and args.value.isdigit() else args.value
        result = engine.label_query(value, attribute=attribute)
        _print_json(
            {
                "vertex": result.vertex,
                "leaf": result.leaf_label,
                "path": result.path_labels,
            }
        )
    return 0


def _cmd_query_protocol(args: argparse.Namespace) -> int:
    """One-shot protocol call: any registered op without writing python."""
    try:
        op_args = json.loads(args.op_args)
    except json.JSONDecodeError as error:
        raise CLIError(f"--args is not valid JSON: {error}")
    if not isinstance(op_args, dict):
        raise CLIError(f"--args must be a JSON object, got: {args.op_args!r}")
    page = _parse_page(args)

    if args.url:
        # remote mode: the target positional names the server-side dataset
        dataset = None if args.target in (None, "-") else args.target
        client = GMineClient.http(args.url, auth_token=args.auth_token)
        response = client.query(args.op, dataset=dataset, args=op_args, page=page)
        _print_json(response.to_dict())
        return 0 if response.ok else 3

    if not args.target:
        raise CLIError("protocol mode needs a <store> positional or --url")
    store_path = Path(args.target)
    if not store_path.exists():
        raise CLIError(
            f"store does not exist: {args.target} (use --url for a remote dataset)"
        )
    service = GMineService(
        cache_capacity=getattr(args, "cache_capacity", 512),
        max_workers=getattr(args, "workers", 4),
    )
    graph = _load_graph(args.graph) if getattr(args, "graph", None) else None
    with service:
        service.register_store(store_path, graph=graph)
        client = GMineClient.in_process(service)
        response = client.query(args.op, args=op_args, page=page)
        _print_json(response.to_dict())
    return 0 if response.ok else 3


def cmd_path(args: argparse.Namespace) -> int:
    """Run a GPath traversal query (the ``query.path`` op).

    ``gmine path <store.gtree> 'community(s0)/members/nodes'`` runs the
    query in-process over a store; ``gmine path <dataset> '...' --url
    http://host:port`` sends it to a running server.  ``--parse-only``
    checks and canonicalizes the query without needing any dataset.
    """
    from .query import parse, unparse

    if args.parse_only:
        # In parse-only mode the single positional is the query itself.
        text = args.path_query or args.target
        if not text:
            raise CLIError("--parse-only needs a query text")
        query = parse(text)
        _print_json({
            "path": text,
            "canonical": unparse(query),
            "steps": len(query.steps),
        })
        return 0
    if not args.path_query:
        raise CLIError("path mode needs <target> and <query> positionals")
    page = _parse_page(args)
    op_args = {"path": args.path_query}
    if args.url:
        dataset = None if args.target in (None, "-") else args.target
        client = GMineClient.http(args.url, auth_token=args.auth_token)
        response = client.query(
            "query.path", dataset=dataset, args=op_args, page=page
        )
        _print_json(response.to_dict())
        return 0 if response.ok else 3
    if not args.target:
        raise CLIError("path mode needs a <store> positional or --url")
    store_path = Path(args.target)
    if not store_path.exists():
        raise CLIError(
            f"store does not exist: {args.target} (use --url for a remote dataset)"
        )
    graph = _load_graph(args.graph) if args.graph else None
    with GMineService() as service:
        service.register_store(store_path, graph=graph)
        client = GMineClient.in_process(service)
        response = client.query("query.path", args=op_args, page=page)
        _print_json(response.to_dict())
    return 0 if response.ok else 3


def cmd_ingest(args: argparse.Namespace) -> int:
    """Load a user graph file into a service via ``dataset.ingest``.

    With ``--url`` the file path is sent to a running server (which must
    be able to read it); otherwise an in-process service ingests it and
    reports the registered dataset — pair with ``--store`` to persist
    the built G-Tree for later ``gmine serve``/``gmine path`` runs.
    """
    op_args = {
        "path": args.graph,
        "name": args.name,
        "fanout": args.fanout,
        "levels": args.levels,
        "seed": args.seed,
        "store": args.store,
    }
    if args.url:
        client = GMineClient.http(args.url, auth_token=args.auth_token)
        response = client.query("dataset.ingest", args=op_args)
        _print_json(response.to_dict())
        return 0 if response.ok else 3
    if not Path(args.graph).exists():
        raise CLIError(f"graph file does not exist: {args.graph}")
    with GMineService() as service:
        client = GMineClient.in_process(service)
        response = client.query("dataset.ingest", args=op_args)
        _print_json(response.to_dict())
    return 0 if response.ok else 3


def cmd_ops(args: argparse.Namespace) -> int:
    """Dump the Protocol v2 operation registry (names or full schemas)."""
    if args.url:
        table = GMineClient.http(args.url, auth_token=args.auth_token).ops()
    else:
        table = DEFAULT_REGISTRY.describe()
    if args.describe:
        _print_json({"protocol": "gmine/1", "ops": table})
    else:
        _print_json(
            {
                "protocol": "gmine/1",
                "ops": [
                    {
                        "name": op["name"],
                        "scope": op["scope"],
                        "cost": op["cost"],
                        "streamable": op.get("streamable", False),
                        "doc": op["doc"],
                    }
                    for op in table
                ],
            }
        )
    return 0


def cmd_apply(args: argparse.Namespace) -> int:
    """Apply an edit script to a mutable dataset on a running server."""
    if args.script_file:
        try:
            script = json.loads(Path(args.script_file).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise CLIError(f"cannot read edit script {args.script_file}: {error}")
    else:
        try:
            script = json.loads(args.script)
        except json.JSONDecodeError as error:
            raise CLIError(f"--script is not valid JSON: {error}")
    if isinstance(script, dict):
        script = [script]
    if not isinstance(script, list):
        raise CLIError("edit script must be a JSON list of edit records")
    client = GMineClient.http(args.url, auth_token=args.auth_token)
    report = client.apply_dataset(
        args.dataset, script, refresh_rwr=args.refresh_rwr
    )
    _print_json(report)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Long-poll a dataset's change feed, printing each event as JSON."""
    client = GMineClient.http(args.url, auth_token=args.auth_token)
    since = args.since
    polls = 0
    while True:
        reply = client.subscribe(
            dataset=args.dataset,
            since=since,
            timeout=args.timeout,
            community=args.community,
        )
        for event in reply["events"]:
            _print_json(event)
        since = reply["next_since"]
        polls += 1
        if not args.follow:
            if not reply["events"]:
                _print_json(
                    {
                        "dataset": reply["dataset"],
                        "fingerprint": reply["fingerprint"],
                        "next_since": since,
                        "events": 0,
                        "lagged": reply["lagged"],
                    }
                )
            return 0
        if args.max_polls is not None and polls >= args.max_polls:
            return 0


def cmd_extract(args: argparse.Namespace) -> int:
    """Run multi-source connection-subgraph extraction on a graph file."""
    graph = _load_graph(args.graph)
    sources: List = []
    for token in args.sources:
        sources.append(int(token) if token.isdigit() else token)
    result = extract_connection_subgraph(
        graph,
        sources,
        budget=args.budget,
        restart_probability=args.restart,
    )
    summary = extraction_summary(result, graph)
    if args.output:
        write_json(result.subgraph, args.output)
        summary["output"] = args.output
    if args.svg:
        scene = render_subgraph(
            result.subgraph,
            highlight=result.sources,
            node_scores=result.goodness,
            title="connection subgraph",
        )
        write_svg(scene, args.svg)
        summary["svg"] = args.svg
    _print_json(summary)
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    """Render a stored G-Tree focus view (or a raw graph) to SVG."""
    path = Path(args.path)
    if path.suffix == ".gtree":
        with GTreeStore(path) as store:
            engine = GMineEngine.from_store(store)
            context = (
                engine.focus_community(args.focus) if args.focus else engine.focus_root()
            )
            scene = render_tomahawk_view(store.tree, context)
            output = write_svg(scene, args.output)
    else:
        graph = _load_graph(args.path)
        scene = render_subgraph(graph, title=path.stem)
        output = write_svg(scene, args.output)
    _print_json({"svg": str(output), "items": scene.visual_item_count()})
    return 0


def _summarise_result(result: QueryResult) -> dict:
    """Flatten one service result to JSON-friendly primitives."""
    summary = {
        "operation": result.request.operation,
        "args": result.request.args,
        "ok": result.ok,
        "cached": result.cached,
    }
    if not result.ok:
        summary["error"] = f"{result.error_type}: {result.error}"
        summary["code"] = result.code
        return summary
    value = result.value
    if isinstance(value, SubgraphMetrics):
        summary["value"] = value.as_dict()
    elif isinstance(value, RWRResult):
        summary["value"] = {
            "iterations": value.iterations,
            "converged": value.converged,
            "top": [[str(node), round(score, 6)] for node, score in value.top(5)],
        }
    elif isinstance(value, ExtractionResult):
        summary["value"] = {
            "nodes": value.num_nodes,
            "sources": [str(source) for source in value.sources],
        }
    elif isinstance(value, list):
        summary["value"] = {"count": len(value)}
    else:
        summary["value"] = str(value)
    return summary


def _seed_cost_model(service: GMineService) -> None:
    """Prime an empty measured-cost model from checked-in benchmark reports.

    A fresh ``--backend auto`` service has no latency observations yet, so
    the first requests would fall back to the static venue rule.  When the
    repo's ``benchmarks/BENCH_exec.json`` / ``BENCH_kernels.json`` are
    reachable from the working directory, use them as priors; real
    observations replace the seeds as traffic arrives.
    """
    from .service.executors import AutoBackend

    backend = service.backend
    if not isinstance(backend, AutoBackend):
        return
    model = backend.cost_model
    if model is None or len(model) > 0:
        return
    bench_dir = Path("benchmarks")
    exec_path = bench_dir / "BENCH_exec.json"
    kernels_path = bench_dir / "BENCH_kernels.json"
    if exec_path.exists() or kernels_path.exists():
        model.seed_from_bench(
            exec_path if exec_path.exists() else None,
            kernels_path if kernels_path.exists() else None,
        )
        model.save()


def _open_service(args: argparse.Namespace) -> GMineService:
    """Build a service over the store (and optional graph) named in ``args``."""
    shm_mode = getattr(args, "shm", "auto")
    service = GMineService(
        cache_capacity=getattr(args, "cache_capacity", 512),
        cache_ttl=getattr(args, "cache_ttl", None),
        max_workers=getattr(args, "workers", 4),
        backend=getattr(args, "backend", None) or "inline",
        cache_path=getattr(args, "cache_path", None),
        shared_prepared=None if shm_mode == "auto" else shm_mode == "on",
        cost_model_path=getattr(args, "cost_model", None),
    )
    _seed_cost_model(service)
    graph_path = getattr(args, "graph", None)
    graph = _load_graph(graph_path) if graph_path else None
    if getattr(args, "mutable", False):
        # Serve the store's content as an in-memory tree with the full
        # graph attached — the combination dataset.apply requires (the
        # store pager itself is read-only).
        if graph is None:
            service.close()
            raise CLIError("--mutable needs --graph (edits repair connectivity)")
        from .storage.gtree_store import load_gtree_fully

        service.register_tree(load_gtree_fully(args.store), graph=graph)
    else:
        service.register_store(args.store, graph=graph, graph_path=graph_path)
    return service


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a batch of requests through the service, or serve it over HTTP."""
    if args.http is not None:
        policy = None
        if (
            args.auth_token is not None
            or args.rate_limit is not None
            or args.max_inflight is not None
        ):
            policy = FrontendPolicy(
                auth_token=args.auth_token,
                rate_limit=args.rate_limit,
                max_inflight=args.max_inflight,
            )
        server_class = GMineAsyncHTTPServer if args.use_asyncio else GMineHTTPServer
        with _open_service(args) as service:
            server = server_class(
                service, host=args.host, port=args.http, policy=policy
            )
            if args.use_asyncio:
                server.start()  # bind now so the banner shows the real port
            host, port = server.address
            front_end = "asyncio" if args.use_asyncio else "threaded"
            guards = "" if policy is None else f", policy={dict(policy.describe())}"
            print(
                f"gmine/1 serving {service.datasets()} on http://{host}:{port} "
                f"({front_end} front-end, backend={service.backend.name}{guards}; "
                f"POST /v1/query, /v1/stream, /v1/batch; GET /v1/ops)",
                file=sys.stderr,
            )
            # Route SIGTERM (docker stop, systemd) through the same
            # graceful path as Ctrl-C: the service close below unlinks
            # shared prepared-graph segments and persists the cost model,
            # neither of which happens on an abrupt exit.
            import signal

            def _terminate(signum, frame):
                raise KeyboardInterrupt

            previous_sigterm = signal.signal(signal.SIGTERM, _terminate)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                signal.signal(signal.SIGTERM, previous_sigterm)
                server.stop()
        return 0
    if not args.requests:
        raise CLIError("serve needs --requests FILE (batch mode) or --http PORT")
    requests_path = Path(args.requests)
    if not requests_path.exists():
        raise CLIError(f"requests file does not exist: {args.requests}")
    payload = json.loads(requests_path.read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise CLIError("requests file must hold a JSON list of request objects")
    with _open_service(args) as service:
        results = service.batch(payload)
        _print_json(
            {
                "results": [_summarise_result(result) for result in results],
                "stats": service.stats(),
            }
        )
    return 0 if all(result.ok for result in results) else 3


def cmd_session_create(args: argparse.Namespace) -> int:
    """Create a service session over a store and persist its state to JSON."""
    with _open_service(args) as service:
        session = service.open_session(focus=args.focus, name=args.name)
        state = session.state_dict()
        Path(args.state).write_text(
            json.dumps(state, indent=2, default=str), encoding="utf-8"
        )
        _print_json(
            {
                "session_id": session.session_id,
                "focus": session.engine.focus.label,
                "state": str(args.state),
            }
        )
    return 0


def cmd_session_resume(args: argparse.Namespace) -> int:
    """Restore a persisted session, apply optional actions, re-save its state."""
    state_path = Path(args.state)
    if not state_path.exists():
        raise CLIError(f"session state file does not exist: {args.state}")
    payload = json.loads(state_path.read_text(encoding="utf-8"))
    with _open_service(args) as service:
        session = service.restore_session(payload, dataset=service.datasets()[0])
        output = {
            "session_id": session.session_id,
            "resumed_focus": session.engine.focus.label,
        }
        if args.focus:
            session.recording.focus(args.focus)
        if args.drill_down is not None:
            session.recording.drill_down(args.drill_down)
        if args.drill_up:
            session.recording.drill_up()
        if args.metrics:
            metrics = session.recording.community_metrics()
            output["metrics"] = metrics.as_dict()
            output["cache"] = service.cache.stats.as_dict()
        output["focus"] = session.engine.focus.label
        output["steps"] = len(session.recording.steps)
        state_path.write_text(
            json.dumps(session.state_dict(), indent=2, default=str),
            encoding="utf-8",
        )
        _print_json(output)
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="gmine",
        description="GMine reproduction: scalable, interactive graph visualization and mining",
    )
    subparsers = parser.add_subparsers(dest="command")

    generate = subparsers.add_parser("generate", help="generate a synthetic DBLP-like dataset")
    generate.add_argument("--authors", type=int, default=3000)
    generate.add_argument("--communities", type=int, default=5)
    generate.add_argument("--sub-communities", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help=".json or edge-list output path")
    generate.set_defaults(func=cmd_generate)

    build = subparsers.add_parser("build", help="build and store a G-Tree")
    build.add_argument("--graph", required=True, help="input graph (.json or edge list)")
    build.add_argument("--fanout", type=int, default=5)
    build.add_argument("--levels", type=int, default=5)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--output", required=True, help="output .gtree store path")
    build.set_defaults(func=cmd_build)

    stats = subparsers.add_parser("stats", help="summarise a graph or G-Tree store")
    stats.add_argument("path", help="graph file or .gtree store")
    stats.add_argument("--hop-sample", type=int, default=64)
    stats.set_defaults(func=cmd_stats)

    query = subparsers.add_parser(
        "query",
        help="label query against a store, or a one-shot protocol operation",
        description=(
            "Label-query mode: gmine query --store S --value V.  Protocol "
            "mode: gmine query <store.gtree> <op> --args '{...}', or "
            "gmine query <dataset> <op> --url http://host:port for a "
            "running gmine serve --http front-end."
        ),
    )
    query.add_argument(
        "target", nargs="?",
        help="protocol mode: .gtree store path (or dataset name with --url)",
    )
    query.add_argument(
        "op", nargs="?",
        help="protocol mode: registered operation name (see gmine ops)",
    )
    query.add_argument(
        "--args", dest="op_args", default="{}",
        help='protocol mode: operation arguments as a JSON object',
    )
    query.add_argument("--url", help="protocol mode: remote gmine/1 server URL")
    query.add_argument("--auth-token", default=None, dest="auth_token",
                       help="protocol mode: bearer token for a server "
                            "started with --auth-token")
    query.add_argument("--graph", help="protocol mode: optional full graph file")
    query.add_argument("--top-k", type=int, default=None, dest="top_k",
                       help="protocol mode: top-k pagination for score payloads")
    query.add_argument("--offset", type=int, default=None,
                       help="protocol mode: pagination offset for list payloads")
    query.add_argument("--limit", type=int, default=None,
                       help="protocol mode: pagination limit for list payloads")
    query.add_argument("--store", help="label-query mode: .gtree store")
    query.add_argument("--value", help="label-query mode: attribute value")
    query.add_argument("--attribute", default="name")
    query.add_argument("--by-id", action="store_true", help="treat value as a vertex id")
    query.set_defaults(func=cmd_query)

    path_cmd = subparsers.add_parser(
        "path",
        help="run a GPath traversal query (query.path)",
        description=(
            "gmine path <store.gtree> 'community(s0)/members/"
            "rwr(sources=[3])/top(10)' runs a declarative traversal over "
            "the G-Tree; --url targets a running server, --parse-only "
            "checks the query offline."
        ),
    )
    path_cmd.add_argument(
        "target", nargs="?",
        help=".gtree store path (or dataset name with --url)",
    )
    path_cmd.add_argument(
        "path_query", nargs="?",
        help="the GPath query text (see the README grammar table)",
    )
    path_cmd.add_argument("--url", help="remote gmine/1 server URL")
    path_cmd.add_argument("--auth-token", default=None, dest="auth_token",
                          help="bearer token for a server started with "
                               "--auth-token")
    path_cmd.add_argument("--graph", help="optional full graph file")
    path_cmd.add_argument("--offset", type=int, default=None,
                          help="pagination offset for node/score payloads")
    path_cmd.add_argument("--limit", type=int, default=None,
                          help="pagination limit for node/score payloads")
    path_cmd.add_argument(
        "--parse-only", action="store_true", dest="parse_only",
        help="parse + canonicalize the query without executing it",
    )
    path_cmd.set_defaults(func=cmd_path)

    ingest = subparsers.add_parser(
        "ingest",
        help="load a CSV/edge-list/JSON graph as a live dataset",
        description=(
            "gmine ingest --graph edges.csv --name mygraph builds the "
            "G-Tree partition hierarchy through dataset.ingest and "
            "registers the dataset; --url targets a running server, "
            "--store persists the built tree."
        ),
    )
    ingest.add_argument("--graph", required=True,
                        help="graph file (.csv, .json, or edge list)")
    ingest.add_argument("--name", required=True, help="dataset name to register")
    ingest.add_argument("--fanout", type=int, default=5)
    ingest.add_argument("--levels", type=int, default=5)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--store", default=None,
                        help="persist the built G-Tree to this .gtree file")
    ingest.add_argument("--url", help="remote gmine/1 server URL")
    ingest.add_argument("--auth-token", default=None, dest="auth_token",
                        help="bearer token for a server started with "
                             "--auth-token")
    ingest.set_defaults(func=cmd_ingest)

    ops = subparsers.add_parser(
        "ops", help="list the gmine/1 operation registry"
    )
    ops.add_argument(
        "--describe", action="store_true",
        help="dump the full schema table (args, types, defaults, cost classes, "
             "scopes, streaming markers)",
    )
    ops.add_argument("--url", help="read the table from a remote gmine/1 server")
    ops.add_argument("--auth-token", default=None, dest="auth_token",
                     help="bearer token for a remote server started with --auth-token")
    ops.set_defaults(func=cmd_ops)

    apply_cmd = subparsers.add_parser(
        "apply",
        help="apply an edit script to a mutable dataset on a running server",
        description=(
            "gmine apply <dataset> --url http://host:port --script "
            "'[{\"action\": \"remove_edge\", \"u\": 1, \"v\": 2}]' routes "
            "the script through dataset.apply; partition-scoped cache "
            "entries for untouched communities survive the edit."
        ),
    )
    apply_cmd.add_argument("dataset", help="server-side dataset name")
    apply_cmd.add_argument("--url", required=True, help="remote gmine/1 server URL")
    apply_cmd.add_argument("--script", default=None,
                           help="edit script as inline JSON (list of records)")
    apply_cmd.add_argument("--script-file", default=None, dest="script_file",
                           help="read the edit script from a JSON file instead")
    apply_cmd.add_argument("--refresh-rwr", action="store_true", dest="refresh_rwr",
                           help="warm-refresh remembered RWR steady states whose "
                                "community the edit touched")
    apply_cmd.add_argument("--auth-token", default=None, dest="auth_token",
                           help="bearer token for a server started with --auth-token")
    apply_cmd.set_defaults(func=cmd_apply)

    watch = subparsers.add_parser(
        "watch",
        help="long-poll a dataset's change feed on a running server",
        description=(
            "gmine watch <dataset> --url http://host:port prints change "
            "events (new root fingerprint, changed partitions) as JSON; "
            "--follow keeps polling from each reply's next_since."
        ),
    )
    watch.add_argument("dataset", help="server-side dataset name")
    watch.add_argument("--url", required=True, help="remote gmine/1 server URL")
    watch.add_argument("--since", type=int, default=0,
                       help="only events after this sequence number")
    watch.add_argument("--timeout", type=float, default=0.0,
                       help="seconds to wait for an event per poll")
    watch.add_argument("--community", default=None,
                       help="only events touching this community label")
    watch.add_argument("--follow", action="store_true",
                       help="keep polling after each reply")
    watch.add_argument("--max-polls", type=int, default=None, dest="max_polls",
                       help="with --follow: stop after this many polls")
    watch.add_argument("--auth-token", default=None, dest="auth_token",
                       help="bearer token for a server started with --auth-token")
    watch.set_defaults(func=cmd_watch)

    extract = subparsers.add_parser("extract", help="connection subgraph extraction")
    extract.add_argument("--graph", required=True)
    extract.add_argument("--sources", nargs="+", required=True)
    extract.add_argument("--budget", type=int, default=30)
    extract.add_argument("--restart", type=float, default=0.15)
    extract.add_argument("--output", help="write the extracted subgraph as JSON")
    extract.add_argument("--svg", help="render the extracted subgraph to SVG")
    extract.set_defaults(func=cmd_extract)

    render = subparsers.add_parser("render", help="render a view to SVG")
    render.add_argument("path", help="graph file or .gtree store")
    render.add_argument("--focus", help="community label to focus (stores only)")
    render.add_argument("--output", required=True, help="output .svg path")
    render.set_defaults(func=cmd_render)

    serve = subparsers.add_parser(
        "serve",
        help="run a request batch through the service, or serve it over HTTP",
    )
    serve.add_argument("--store", required=True, help=".gtree store to serve")
    serve.add_argument("--graph", help="optional full graph (enables inspect_edge)")
    serve.add_argument(
        "--mutable", action="store_true",
        help="load the store into memory with the full graph attached so "
             "dataset.apply can edit it in place (requires --graph)",
    )
    serve.add_argument(
        "--requests",
        help='JSON list of requests: [{"op": "metrics", "args": {...}}, ...]',
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve the gmine/1 HTTP front-end on PORT instead of a batch file",
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    serve.add_argument(
        "--asyncio", action="store_true", dest="use_asyncio",
        help="serve the HTTP front-end from an asyncio event loop instead of "
             "one thread per connection (same router, byte-identical wire)",
    )
    serve.add_argument(
        "--auth-token", default=None, dest="auth_token", metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on every HTTP request "
             "(401 AUTH_REQUIRED otherwise)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, dest="rate_limit", metavar="N",
        help="cap the HTTP request rate at N requests/s via a token bucket "
             "(429 RATE_LIMITED beyond it)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, dest="max_inflight", metavar="N",
        help="shed load beyond N concurrently served HTTP requests "
             "(503 OVERLOADED with Retry-After; /healthz and /readyz are exempt)",
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--backend", default="inline",
        metavar="{inline,thread,process,auto,sharded}[:N]",
        help="execution backend for expensive mining kernels "
             "(process = warm multi-core worker pool; auto = pick per op from "
             "cost class + cpu count; sharded = split each dataset along its "
             "G-Tree communities over N single-shard worker processes; "
             "N overrides --workers)",
    )
    serve.add_argument(
        "--cache-path", default=None, dest="cache_path", metavar="FILE",
        help="persist the result cache to a SQLite file shared across "
             "processes and restarts (default: in-memory LRU)",
    )
    serve.add_argument("--cache-capacity", type=int, default=512, dest="cache_capacity")
    serve.add_argument("--cache-ttl", type=float, default=None, dest="cache_ttl")
    serve.add_argument(
        "--shm", choices=("auto", "on", "off"), default="auto",
        help="publish prepared-graph CSR buffers into shared-memory segments "
             "process workers attach zero-copy (auto = on for process/auto "
             "backends where the platform supports it)",
    )
    serve.add_argument(
        "--cost-model", default=None, dest="cost_model", metavar="FILE",
        help="JSON file persisting the auto backend's measured per-(op, venue) "
             "latency model; seeded from benchmarks/BENCH_*.json when new "
             "(default: <cache-path>.cost.json, else in-memory)",
    )
    serve.set_defaults(func=cmd_serve)

    session = subparsers.add_parser(
        "session", help="create/resume serialisable exploration sessions"
    )
    session_commands = session.add_subparsers(dest="session_command")

    session_create = session_commands.add_parser(
        "create", help="open a session over a store and save its state"
    )
    session_create.add_argument("--store", required=True)
    session_create.add_argument("--graph", help="optional full graph file")
    session_create.add_argument("--state", required=True, help="output state .json")
    session_create.add_argument("--focus", help="community label to focus first")
    session_create.add_argument("--name", default="cli-session")
    session_create.set_defaults(func=cmd_session_create)

    session_resume = session_commands.add_parser(
        "resume", help="restore a saved session, apply actions, re-save"
    )
    session_resume.add_argument("--store", required=True)
    session_resume.add_argument("--graph", help="optional full graph file")
    session_resume.add_argument("--state", required=True, help="state .json to resume")
    session_resume.add_argument("--focus", help="focus a community after resuming")
    session_resume.add_argument("--drill-down", type=int, default=None, dest="drill_down")
    session_resume.add_argument("--drill-up", action="store_true", dest="drill_up")
    session_resume.add_argument(
        "--metrics", action="store_true",
        help="compute (cached) metrics for the final focus",
    )
    session_resume.set_defaults(func=cmd_session_resume)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None) or not hasattr(args, "func"):
        parser.print_help()
        return 1
    try:
        return args.func(args)
    except GMineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

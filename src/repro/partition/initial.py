"""Initial bisection of the coarsest graph.

At the bottom of the multilevel V-cycle the coarse graph is small (about a
hundred super-vertices), so we can afford several attempts with different
strategies and keep the best cut:

* **greedy graph growing (GGP)** — grow one side breadth-first from a random
  seed, preferring the frontier vertex whose move gains the most internal
  edge weight, until half the total vertex weight is absorbed.
* **spectral bisection** — sign (actually median) split of the Fiedler
  vector of the combinatorial Laplacian; robust when the graph is well
  connected.

Both return an assignment into parts {0, 1} respecting the balance target.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Optional

import numpy as np
from scipy.sparse.linalg import eigsh

from ..graph.graph import Graph, NodeId
from ..graph.matrix import combinatorial_laplacian
from .metrics import edge_cut


def greedy_graph_growing(
    graph: Graph,
    vertex_weights: Dict[NodeId, float],
    rng: random.Random,
    target_fraction: float = 0.5,
) -> Dict[NodeId, int]:
    """Return a 2-way assignment grown greedily from a random seed vertex."""
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    total_weight = sum(vertex_weights[node] for node in nodes)
    target = total_weight * target_fraction
    assignment = {node: 1 for node in nodes}
    seed_node = rng.choice(nodes)
    grown_weight = 0.0
    # Max-heap keyed by gain: moving v to part 0 gains (edges to part 0) -
    # (edges to part 1); we lazily re-push with updated gains.
    counter = 0
    heap: list = []

    def push(node: NodeId, gain: float) -> None:
        nonlocal counter
        counter += 1
        heapq.heappush(heap, (-gain, counter, node))

    push(seed_node, 0.0)
    in_part0 = set()
    while heap and grown_weight < target:
        _, _, node = heapq.heappop(heap)
        if node in in_part0:
            continue
        in_part0.add(node)
        assignment[node] = 0
        grown_weight += vertex_weights[node]
        for neighbor in graph.neighbors(node):
            if neighbor in in_part0:
                continue
            gain = 0.0
            for nb2 in graph.neighbors(neighbor):
                w = graph.edge_weight(neighbor, nb2)
                gain += w if nb2 in in_part0 else -w
            push(neighbor, gain)
    # If the graph is disconnected the frontier can dry up early; top up with
    # arbitrary vertices until the balance target is met.
    if grown_weight < target:
        for node in nodes:
            if grown_weight >= target:
                break
            if node not in in_part0:
                in_part0.add(node)
                assignment[node] = 0
                grown_weight += vertex_weights[node]
    return assignment


def spectral_bisection(
    graph: Graph,
    vertex_weights: Dict[NodeId, float],
) -> Optional[Dict[NodeId, int]]:
    """Return a 2-way assignment from the Fiedler vector, or None on failure.

    Vertices are sorted by their Fiedler-vector entry and the split point is
    chosen so each side holds half the total vertex weight — a weighted
    median split, which keeps the result balanced even with heavy
    super-vertices.
    """
    n = graph.num_nodes
    if n < 4:
        return None
    try:
        laplacian, index = combinatorial_laplacian(graph)
        # Smallest two eigenpairs; the second is the Fiedler vector.
        values, vectors = eigsh(laplacian.asfptype(), k=2, sigma=-1e-6, which="LM")
        order = np.argsort(values)
        fiedler = vectors[:, order[1]]
    except Exception:
        return None
    ranked = sorted(range(n), key=lambda i: fiedler[i])
    total = sum(vertex_weights[index.node_at(i)] for i in ranked)
    assignment: Dict[NodeId, int] = {}
    running = 0.0
    for i in ranked:
        node = index.node_at(i)
        part = 0 if running < total / 2.0 else 1
        assignment[node] = part
        running += vertex_weights[node]
    return assignment


def best_initial_bisection(
    graph: Graph,
    vertex_weights: Dict[NodeId, float],
    seed: Optional[int] = None,
    attempts: int = 4,
    use_spectral: bool = True,
    target_fraction: float = 0.5,
) -> Dict[NodeId, int]:
    """Run several strategies and return the assignment with the smallest cut."""
    rng = random.Random(seed if seed is not None else 0)
    candidates = []
    for _ in range(max(1, attempts)):
        candidates.append(
            greedy_graph_growing(graph, vertex_weights, rng, target_fraction)
        )
    if use_spectral and abs(target_fraction - 0.5) < 1e-9:
        spectral = spectral_bisection(graph, vertex_weights)
        if spectral is not None:
            candidates.append(spectral)
    return min(candidates, key=lambda assignment: edge_cut(graph, assignment))

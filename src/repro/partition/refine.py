"""Refinement phase of the multilevel partitioner.

After a partition is projected from a coarse level to the next finer level
it is locally improved with a boundary Fiduccia–Mattheyses (FM) pass: cut-
boundary vertices are moved one at a time to the other side when that
reduces the cut without violating the balance constraint; a limited amount
of hill-climbing (negative-gain moves) is allowed and the best prefix of the
move sequence is kept, exactly as in the classic KL/FM formulation.

The implementation is deliberately dictionary-based (no bucket arrays):
Python-level constant factors dwarf the asymptotic win of gain buckets at
the graph sizes this reproduction targets, and the simple version is far
easier to verify.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph, NodeId
from .metrics import edge_cut


def _gain(graph: Graph, assignment: Dict[NodeId, int], node: NodeId) -> float:
    """Return the cut reduction obtained by moving ``node`` to the other part."""
    own = assignment[node]
    external = 0.0
    internal = 0.0
    for neighbor in graph.neighbors(node):
        weight = graph.edge_weight(node, neighbor)
        if assignment[neighbor] == own:
            internal += weight
        else:
            external += weight
    return external - internal


def fm_refine_bisection(
    graph: Graph,
    assignment: Dict[NodeId, int],
    vertex_weights: Dict[NodeId, float],
    max_passes: int = 8,
    balance_tolerance: float = 1.10,
    target_fraction: float = 0.5,
    max_negative_moves: int = 50,
) -> Dict[NodeId, int]:
    """Return an improved 2-way assignment (the input dict is not mutated).

    Parameters
    ----------
    balance_tolerance:
        Maximum allowed ratio between a side's weight and its target weight.
    target_fraction:
        Fraction of total vertex weight that part 0 should hold (0.5 for an
        even bisection; other values support non-power-of-two k-way splits).
    max_negative_moves:
        How many consecutive non-improving moves a pass may explore before
        giving up (the FM hill-climbing window).
    """
    assignment = dict(assignment)
    total_weight = sum(vertex_weights[node] for node in graph.nodes())
    target = {0: total_weight * target_fraction, 1: total_weight * (1.0 - target_fraction)}
    side_weight = {0: 0.0, 1: 0.0}
    for node in graph.nodes():
        side_weight[assignment[node]] += vertex_weights[node]

    def within_balance(side: int, delta: float) -> bool:
        limit = target[side] * balance_tolerance
        return side_weight[side] + delta <= limit or target[side] == 0

    for _ in range(max_passes):
        improved = False
        locked: set = set()
        best_cut = edge_cut(graph, assignment)
        current_cut = best_cut
        move_log: List[Tuple[NodeId, int]] = []
        best_prefix = 0
        negative_streak = 0

        boundary = [
            node
            for node in graph.nodes()
            if any(assignment[nb] != assignment[node] for nb in graph.neighbors(node))
        ]
        # Repeatedly pick the best currently-movable boundary vertex.
        while boundary:
            best_node: Optional[NodeId] = None
            best_gain = float("-inf")
            for node in boundary:
                if node in locked:
                    continue
                destination = 1 - assignment[node]
                if not within_balance(destination, vertex_weights[node]):
                    continue
                gain = _gain(graph, assignment, node)
                if gain > best_gain:
                    best_gain = gain
                    best_node = node
            if best_node is None:
                break
            source = assignment[best_node]
            destination = 1 - source
            assignment[best_node] = destination
            side_weight[source] -= vertex_weights[best_node]
            side_weight[destination] += vertex_weights[best_node]
            locked.add(best_node)
            current_cut -= best_gain
            move_log.append((best_node, source))
            if current_cut < best_cut - 1e-12:
                best_cut = current_cut
                best_prefix = len(move_log)
                negative_streak = 0
                improved = True
            else:
                negative_streak += 1
                if negative_streak > max_negative_moves:
                    break
            # The boundary changes as vertices move; recompute lazily by
            # adding the moved vertex's neighbours.
            for neighbor in graph.neighbors(best_node):
                if neighbor not in locked and neighbor not in boundary:
                    boundary.append(neighbor)

        # Roll back the moves after the best prefix.
        for node, original_side in reversed(move_log[best_prefix:]):
            moved_side = assignment[node]
            assignment[node] = original_side
            side_weight[moved_side] -= vertex_weights[node]
            side_weight[original_side] += vertex_weights[node]
        if not improved:
            break
    return assignment


def greedy_kway_refine(
    graph: Graph,
    assignment: Dict[NodeId, int],
    k: int,
    vertex_weights: Optional[Dict[NodeId, float]] = None,
    max_passes: int = 4,
    balance_tolerance: float = 1.10,
) -> Dict[NodeId, int]:
    """Greedy k-way refinement: move boundary vertices to their best part.

    Used as a final polish after recursive bisection has produced the k-way
    assignment (and by the ablation benchmark to quantify its own benefit).
    """
    assignment = dict(assignment)
    if vertex_weights is None:
        vertex_weights = {node: 1.0 for node in graph.nodes()}
    total_weight = sum(vertex_weights.values())
    limit = (total_weight / k) * balance_tolerance
    part_weight = [0.0] * k
    for node, part in assignment.items():
        part_weight[part] += vertex_weights[node]

    for _ in range(max_passes):
        moved = 0
        for node in graph.nodes():
            own = assignment[node]
            # Tally connection weight to each adjacent part.
            link: Dict[int, float] = {}
            for neighbor in graph.neighbors(node):
                part = assignment[neighbor]
                link[part] = link.get(part, 0.0) + graph.edge_weight(node, neighbor)
            own_link = link.get(own, 0.0)
            best_part = own
            best_gain = 0.0
            for part, weight in link.items():
                if part == own:
                    continue
                if part_weight[part] + vertex_weights[node] > limit:
                    continue
                gain = weight - own_link
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_part = part
            if best_part != own:
                assignment[node] = best_part
                part_weight[own] -= vertex_weights[node]
                part_weight[best_part] += vertex_weights[node]
                moved += 1
        if moved == 0:
            break
    return assignment
